#!/usr/bin/env python3
"""Counter shootout: every implementation, one workload, one table.

Run:  python examples/counter_shootout.py [n]

Drives the paper's one-shot workload (each processor increments exactly
once, sequentially) through all six counter implementations and prints
the bottleneck comparison the paper's introduction motivates — plus a
concurrent round, where the related-work structures show their
strengths.
"""

import sys

from repro import Network, TreeCounter, one_shot, run_concurrent, run_sequence
from repro.analysis import format_table
from repro.counters import (
    BitonicCountingNetwork,
    CentralCounter,
    CombiningTreeCounter,
    DiffractingTreeCounter,
    StaticTreeCounter,
)
from repro.lowerbound import lower_bound_k

FACTORIES = [
    CentralCounter,
    StaticTreeCounter,
    CombiningTreeCounter,
    BitonicCountingNetwork,
    DiffractingTreeCounter,
    TreeCounter,
]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256

    rows = []
    for factory in FACTORIES:
        network = Network()
        counter = factory(network, n)
        result = run_sequence(counter, one_shot(n))
        rows.append(
            [
                counter.name,
                result.bottleneck_load(),
                f"{result.bottleneck_load() / lower_bound_k(n):.1f}",
                f"{result.average_messages_per_op():.2f}",
                result.total_messages,
            ]
        )
    print(
        format_table(
            ["counter", "bottleneck m_b", "m_b / k(n)", "msgs/op", "total"],
            rows,
            title=(
                f"Sequential one-shot workload, n={n} "
                f"(lower bound k(n) = {lower_bound_k(n):.2f})"
            ),
        )
    )

    rows = []
    for factory in FACTORIES:
        network = Network()
        counter = factory(network, n)
        result = run_concurrent(counter, [one_shot(n)])
        rows.append(
            [counter.name, result.bottleneck_load(), result.total_messages]
        )
    print()
    print(
        format_table(
            ["counter", "bottleneck m_b", "total msgs"],
            rows,
            title=f"One fully concurrent batch of n={n} incs",
        )
    )
    print(
        "\nReading the tables: sequentially, only the paper's ww-tree stays"
        "\nnear k(n); concurrently, combining/diffracting structures shine —"
        "\nthe two regimes the paper distinguishes."
    )


if __name__ == "__main__":
    main()
