#!/usr/bin/env python3
"""Quickstart: build the paper's counter, increment, look at the load.

Run:  python examples/quickstart.py [n]

Builds a Wattenhofer–Widmayer communication-tree counter for n
processors (default 81 = 3^4, the paper's k = 3 size), lets every
processor increment once — the exact workload of the paper's lower
bound — and prints what the paper is about: the counter works, and no
processor was a bottleneck.
"""

import sys

from repro import Network, TreeCounter, one_shot, run_sequence
from repro.analysis import LoadProfile
from repro.lowerbound import lower_bound_k


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 81

    network = Network()
    counter = TreeCounter(network, n)
    print(f"n = {n} processors, tree parameter k = {counter.k} "
          f"(paper shape: {counter.k}^{counter.k + 1} = "
          f"{counter.geometry.leaf_count} leaves)")

    result = run_sequence(counter, one_shot(n))

    print(f"\nEvery processor incremented once; returned values "
          f"{result.values()[:5]} ... {result.values()[-3:]}")
    print(f"final counter value: {counter.value}")

    profile = LoadProfile.from_trace(result.trace, population=n)
    print(f"\ntotal messages:      {result.total_messages} "
          f"({result.average_messages_per_op():.1f} per inc)")
    print(f"bottleneck load m_b: {profile.bottleneck_load} messages "
          f"(processor {profile.bottleneck_processor})")
    print(f"lower bound k(n):    {lower_bound_k(n):.2f}")
    print(f"mean load:           {profile.mean_load:.2f}")
    print(f"load gini:           {profile.gini():.3f}")
    print(f"\nA central counter would have loaded its server with "
          f"{2 * (n - 1)} messages.")
    print(f"Retirements performed: {len(counter.retirements)} "
          f"(the mechanism that spreads the root's work)")


if __name__ == "__main__":
    main()
