#!/usr/bin/env python3
"""Distributed ticket lock: mutual exclusion built on the counter.

Run:  python examples/ticket_lock.py [n] [rounds]

"Counting is an essential ingredient in virtually any computation" —
the classic proof is the ticket lock: to enter a critical section, a
processor takes a ticket (one ``inc``); tickets are served in order, so
the counter's values *are* the lock's FIFO queue.  If the counter has a
bottleneck, the lock has a bottleneck — which is why the paper's O(k)
counter matters to anyone building synchronization.

This example runs a ticket-lock workload (every processor acquires the
lock once per round) over the paper's counter and over the central
counter, checks mutual exclusion and fairness, and compares the message
load the two locks put on their hottest processor.
"""

import sys

from repro import Network, TreeCounter, run_sequence
from repro.analysis import format_table
from repro.counters import CentralCounter
from repro.core import IntervalMode, TreeGeometry, TreePolicy


def acquire_all(counter_factory, n, rounds):
    """Each processor takes one ticket per round; return the analysis."""
    network = Network()
    counter = counter_factory(network, n)
    order = [pid for _ in range(rounds) for pid in range(1, n + 1)]
    result = run_sequence(counter, order)

    # Tickets are the returned values: service order = ticket order.
    tickets = {}
    for outcome in result.outcomes:
        tickets.setdefault(outcome.initiator, []).append(outcome.value)

    # Mutual exclusion: all tickets distinct (each value held once).
    all_tickets = sorted(t for ts in tickets.values() for t in ts)
    assert all_tickets == list(range(n * rounds)), "tickets collided!"

    # Fairness: within one round, no processor is starved by more than
    # the round width (every processor's i-th ticket is in round i).
    for pid, ts in tickets.items():
        for round_index, ticket in enumerate(ts):
            assert round_index * n <= ticket < (round_index + 1) * n, (
                f"processor {pid} starved: ticket {ticket} in round {round_index}"
            )

    return result


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 81
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    def tree_factory(network, n_):
        geometry = TreeGeometry.for_processors(n_)
        policy = TreePolicy(
            retire_threshold=4 * geometry.arity,
            interval_mode=IntervalMode.WRAP,  # multi-round workload
        )
        return TreeCounter(network, n_, geometry=geometry, policy=policy)

    rows = []
    for label, factory in (
        ("ticket lock on central counter", CentralCounter),
        ("ticket lock on ww-tree counter", tree_factory),
    ):
        result = acquire_all(factory, n, rounds)
        rows.append(
            [
                label,
                result.bottleneck_load(),
                f"{result.average_messages_per_op():.2f}",
                result.total_messages,
            ]
        )
    print(f"{n} processors x {rounds} rounds — mutual exclusion and "
          "FIFO fairness verified for both locks\n")
    print(
        format_table(
            ["lock", "hottest processor (msgs)", "msgs/acquire", "total msgs"],
            rows,
        )
    )
    print(
        "\nSame lock semantics, same fairness — but the central ticket "
        "dispenser is the\nlock's scalability ceiling, and the tree "
        "counter removes it.  That is the paper's\npoint applied to the "
        "most common counting consumer there is."
    )


if __name__ == "__main__":
    main()
