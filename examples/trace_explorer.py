#!/usr/bin/env python3
"""Figures 1 and 2, regenerated: one inc as a DAG and as a list.

Run:  python examples/trace_explorer.py [n] [op_index]

Runs the paper's counter, picks one operation, and prints its
communication DAG (Figure 1), its topologically sorted communication
list (Figure 2), its footprint I_p, and the Hot-Spot intersection with
the neighbouring operations.
"""

import sys

from repro import Network, TreeCounter, one_shot, run_sequence
from repro.analysis import build_dag, build_list
from repro.lowerbound import effective_footprint


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 81
    probe = int(sys.argv[2]) if len(sys.argv) > 2 else n // 2

    network = Network()
    counter = TreeCounter(network, n)
    result = run_sequence(counter, one_shot(n))
    outcome = result.outcomes[probe]

    print(f"=== operation {probe}: processor {outcome.initiator} incremented, "
          f"got value {outcome.value}, cost {outcome.messages} messages ===\n")

    dag = build_dag(result.trace, outcome.op_index, outcome.initiator)
    print("Communication DAG (Figure 1):")
    print(dag.to_ascii())
    print(f"  depth (causal hops): {dag.depth()}")
    print(f"  acyclic: {dag.is_acyclic()}")

    lst = build_list(result.trace, outcome.op_index, outcome.initiator)
    print(f"\nCommunication list (Figure 2), length {lst.length}:")
    print(f"  {lst}")

    footprint = effective_footprint(result, probe)
    print(f"\nfootprint I_p = {sorted(footprint)}")
    if probe > 0:
        previous = effective_footprint(result, probe - 1)
        print(f"I_(p-1) ∩ I_p = {sorted(previous & footprint)}  "
              "(Hot Spot Lemma: never empty)")
    if probe + 1 < len(result.outcomes):
        following = effective_footprint(result, probe + 1)
        print(f"I_p ∩ I_(p+1) = {sorted(footprint & following)}")


if __name__ == "__main__":
    main()
