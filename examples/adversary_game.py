#!/usr/bin/env python3
"""Play the paper's lower-bound adversary against a real counter.

Run:  python examples/adversary_game.py [central|tree|static] [n]

§3's proof is a game: at every step the adversary picks, among the
processors that have not incremented yet, the one whose inc produces the
longest communication list.  This script plays that game live against a
real implementation, prints the chosen order and the per-step list
lengths, recomputes the proof's weight function from the recorded
ledger, and checks the theorem's conclusion m_b ≥ ⌊k(n)⌋.
"""

import sys

from repro.lowerbound import (
    GreedyAdversary,
    am_gm_holds,
    evaluate_ledger,
    lower_bound_k,
    message_load_bound,
)

COUNTERS = {
    "central": "central",
    "tree": "ww-tree",
    "static": "static-tree",
}


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "central"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    factory = COUNTERS[which]

    print(f"Adversary vs {which} counter, n = {n} "
          f"(bound: m_b >= {message_load_bound(n)}, k(n) = {lower_bound_k(n):.2f})\n")

    run = GreedyAdversary(factory, n).run()

    print("step  chosen pid  list length L_i   q's trial l_i")
    for step in run.ledger:
        print(
            f"{step.op_index:4d}  {run.order[step.op_index]:10d}  "
            f"{step.chosen_list_length:15d}   {step.list_length:12d}"
        )

    print(f"\nlast-chosen processor q = {run.q}")
    print(f"measured bottleneck m_b = {run.bottleneck_load} "
          f"(processor {run.result.bottleneck_processor()})")
    print(f"theorem satisfied: m_b >= {message_load_bound(n)} -> "
          f"{run.bottleneck_load >= message_load_bound(n)}")

    report = evaluate_ledger(run.ledger, base=run.bottleneck_load + 1)
    print(f"\nweight function over q's lists (base = m_b + 1):")
    print("  w_1 .. w_n:", " ".join(f"{w:.4f}" for w in report.weights[:8]),
          "..." if len(report.weights) > 8 else "")
    print(f"  growth steps: {report.growth_steps}/{len(report.weights) - 1} "
          f"(the proof's engine: each op inflates q's weight)")
    print(f"  AM-GM step: sum 2^-l = {report.geometric_sum:.4f} >= "
          f"n*2^-mean(l) = {report.am_gm_floor:.4f} -> {am_gm_holds(report)}")


if __name__ == "__main__":
    main()
