#!/usr/bin/env python3
"""A distributed work queue on the paper's tree: priority scheduling.

Run:  python examples/task_scheduler.py [n] [tasks]

The paper's §2 notes its bottleneck argument covers "a priority queue";
this example builds the obvious consumer: a cluster-wide task scheduler.
Producers (random processors) submit tasks with deadlines; workers
(other random processors) pull the most urgent task.  The queue lives on
the same communication tree as the counter, so scheduling inherits the
O(k) load bound — no dedicated scheduler machine, no hot spot.
"""

import random
import sys

from repro import Network
from repro.analysis import LoadProfile, render_load_bars
from repro.core import IntervalMode, TreeGeometry, TreePolicy
from repro.datatypes import DELETE_MIN, INSERT, DistributedPriorityQueue, run_ops


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 81
    tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    rng = random.Random(2026)

    geometry = TreeGeometry.for_processors(n)
    policy = TreePolicy(
        retire_threshold=4 * geometry.arity,
        interval_mode=IntervalMode.WRAP,
    )
    network = Network()
    queue = DistributedPriorityQueue(network, n, geometry=geometry, policy=policy)

    # Phase 1: producers submit tasks (deadline, task id).
    submissions = []
    ops = []
    for task_id in range(tasks):
        producer = rng.randrange(1, n + 1)
        deadline = rng.randrange(1, 10_000)
        submissions.append((deadline, task_id))
        ops.append((producer, (INSERT, (deadline, task_id))))
    submit_result = run_ops(queue, ops)
    print(f"{tasks} tasks submitted by random producers "
          f"({submit_result.total_messages} messages)")

    # Phase 2: workers drain the queue, most urgent first.
    drain_ops = [(rng.randrange(1, n + 1), (DELETE_MIN,)) for _ in range(tasks)]
    drain_result = run_ops(queue, drain_ops)
    served = drain_result.replies()

    assert served == sorted(submissions), "scheduler violated priority order!"
    print(f"{tasks} tasks served strictly by deadline "
          f"({drain_result.total_messages} messages)")
    print(f"queue empty: {len(queue) == 0}\n")

    profile = LoadProfile.from_trace(network.trace, population=n)
    print(render_load_bars(profile, top=8))
    print(f"\nhottest processor handled {profile.bottleneck_load} messages "
          f"across {2 * tasks} scheduling ops")
    print(f"mean load {profile.mean_load:.1f}; a dedicated scheduler host "
          f"would have handled ~{4 * tasks} (ours: "
          f"{profile.bottleneck_load / (4 * tasks):.0%} of that)")


if __name__ == "__main__":
    main()
