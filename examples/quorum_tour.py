#!/usr/bin/env python3
"""A tour of quorum systems — the Hot Spot Lemma's family tree.

Run:  python examples/quorum_tour.py [n]

The paper's intersection argument comes from quorum theory.  This tour
builds the classic constructions over n elements, verifies pairwise
intersection, compares uniform vs LP-optimal load against the Naor–Wool
1/√n floor, and runs the quorum-replicated counter over each system to
show how abstract load becomes measured message bottlenecks.
"""

import math
import sys

from repro import Network, one_shot, run_sequence
from repro.analysis import format_table
from repro.quorum import (
    CrumblingWall,
    MaekawaGrid,
    QuorumCounter,
    RotatingMajorityQuorum,
    SingletonQuorum,
    TreePathQuorum,
    WheelQuorum,
    naor_wool_floor,
    optimal_load,
    uniform_load,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    side = math.isqrt(n)
    if side * side != n:
        n = side * side
        print(f"(rounded n down to the square {n} for the Maekawa grid)\n")

    systems = [
        SingletonQuorum(n),
        RotatingMajorityQuorum(n),
        MaekawaGrid(n),
        TreePathQuorum(n),
        WheelQuorum(n),
        CrumblingWall(n),
    ]

    rows = []
    for system in systems:
        analysis_uniform = uniform_load(system)
        analysis_optimal = optimal_load(system)
        hottest_pid, hottest_load = analysis_optimal.hottest()
        rows.append(
            [
                type(system).__name__,
                system.quorum_count(),
                system.max_quorum_size(),
                f"{analysis_uniform.system_load:.3f}",
                f"{analysis_optimal.system_load:.3f}",
                f"{naor_wool_floor(system):.3f}",
                f"p{hottest_pid}@{hottest_load:.2f}",
            ]
        )
    print(
        format_table(
            ["system", "quorums", "max|Q|", "uniform", "optimal", "NW floor", "hottest"],
            rows,
            title=f"Quorum systems over n={n} (1/√n = {1 / math.sqrt(n):.3f})",
        )
    )

    rows = []
    for system in systems:
        network = Network()
        counter = QuorumCounter(network, n, system)
        result = run_sequence(counter, one_shot(n))
        rows.append(
            [
                type(system).__name__,
                result.bottleneck_load(),
                f"{result.average_messages_per_op():.1f}",
            ]
        )
    print()
    print(
        format_table(
            ["system", "counter bottleneck", "msgs/op"],
            rows,
            title="The quorum counter over each system (one-shot workload)",
        )
    )
    print(
        "\nSmall quorums are not small load: tree paths have |Q| = log n "
        "but load 1.0\n(the root is in every quorum) — the same distinction "
        "the paper's bottleneck\nmeasure captures for counters."
    )


if __name__ == "__main__":
    main()
