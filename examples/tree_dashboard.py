#!/usr/bin/env python3
"""Live-ish dashboard of the paper's tree counter under load.

Run:  python examples/tree_dashboard.py [k]

Builds the paper-shaped tree for parameter k (default 4, n = 1024),
runs the one-shot workload in quarters, and after each quarter renders
the tree's per-level state and the load distribution — making the
retirement mechanism visible: worker ranges crawl through the identifier
intervals while no processor's bar runs away.
"""

import sys

from repro import Network, TreeCounter, one_shot
from repro.analysis import LoadProfile, render_histogram, render_load_bars, render_tree


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    n = k ** (k + 1)

    network = Network()
    counter = TreeCounter(network, n)
    order = one_shot(n)
    quarter = max(1, n // 4)

    print(f"k = {k}, n = {n}\n")
    op_index = 0
    for stage in range(4):
        chunk = order[stage * quarter : (stage + 1) * quarter]
        for pid in chunk:
            counter.begin_inc(pid, op_index)
            network.run_until_quiescent()
            op_index += 1
        print(f"--- after {op_index}/{n} increments "
              f"(value = {counter.value}) ---")
        print(render_tree(counter))
        print()

    profile = LoadProfile.from_trace(network.trace, population=n)
    print(render_load_bars(profile, top=10))
    print()
    print(render_histogram(profile))
    print(f"\nbottleneck m_b = {profile.bottleneck_load} ≈ "
          f"{profile.bottleneck_load / k:.1f}·k   "
          f"(a central server would sit at {2 * (n - 1)})")


if __name__ == "__main__":
    main()
