"""E6, E7, E13, E17: cross-counter comparisons.

* E6: message-optimal (central) vs bottleneck-optimal (tree).
* E7: all baselines against the k(n) curve, sequential and concurrent.
* E13: order sensitivity (the arrow counter) — why the theorem
  quantifies over orders.
* E17: completion time under store-and-forward congestion.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, make_table
from repro.lowerbound import GreedyAdversary, lower_bound_k
from repro.registry import parse_spec
from repro.sim import CongestedDelay, Network
from repro.workloads import (
    SweepPoint,
    SweepRunner,
    one_shot,
    run_concurrent,
    run_sequence,
    shuffled,
)

BASELINES = (
    "central",
    "static-tree",
    "combining-tree",
    "counting-network",
    "diffracting-tree",
    "ww-tree",
)
"""Canonical registry names of the cross-counter comparison set."""


def _sequential_bottleneck(spec: str, n: int):
    network = Network()
    counter = parse_spec(spec).build(network, n)
    return run_sequence(counter, one_shot(n))


def run_e6(ns: tuple[int, ...] = (8, 27, 81, 256, 1024, 3125)) -> ExperimentResult:
    """E6: the §1 trade-off, with its crossover."""
    from repro.analysis import LatencyProfile

    rows = []
    crossover = None
    for n in ns:
        central = _sequential_bottleneck("central", n)
        tree = _sequential_bottleneck("ww-tree", n)
        ratio = central.bottleneck_load() / tree.bottleneck_load()
        if crossover is None and ratio > 1.0:
            crossover = n
        rows.append(
            [
                n,
                f"{lower_bound_k(n):.2f}",
                central.bottleneck_load(),
                f"{central.average_messages_per_op():.2f}",
                f"{LatencyProfile.from_run(central).worst:.0f}",
                tree.bottleneck_load(),
                f"{tree.average_messages_per_op():.2f}",
                f"{LatencyProfile.from_run(tree).worst:.0f}",
                f"{ratio:.2f}x",
            ]
        )
    return ExperimentResult(
        experiment_id="E6",
        claim="the central counter is message optimal but its server is a "
        "Θ(n) bottleneck; the tree wins from the crossover on",
        tables=(
            make_table(
                "E6: message-optimal (central) vs bottleneck-optimal (tree)",
                [
                    "n", "k(n)", "central m_b", "central msgs/op",
                    "central worst latency", "tree m_b", "tree msgs/op",
                    "tree worst latency", "central/tree m_b",
                ],
                rows,
                note=(
                    f"crossover (tree wins) at n = {crossover}.  The tree "
                    "pays ~3k messages and ~k+2 time units\nper op (plus "
                    "bounded retirement bursts) to cut the bottleneck from "
                    "2(n-1) to ~18.5k."
                ),
            ),
        ),
    )


def run_e7(
    ns: tuple[int, ...] = (64, 256, 1024),
    concurrent_n: int = 256,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """E7: baseline sweep (sequential regime) + one concurrent batch.

    The whole grid runs through *runner* (serial by default); pass a
    parallel or cached :class:`~repro.workloads.SweepRunner` to fan it
    out — the tables are identical either way.
    """
    if runner is None:
        runner = SweepRunner()
    names = list(BASELINES)
    sequential_ns = tuple(ns) if concurrent_n in ns else tuple(ns) + (concurrent_n,)
    points = [
        SweepPoint(counter=name, n=n) for name in names for n in sequential_ns
    ] + [
        SweepPoint(counter=name, n=concurrent_n, workload="one-shot-concurrent")
        for name in names
    ]
    outcomes = {
        (point.counter, point.n, point.workload): outcome
        for point, outcome in zip(points, runner.run(points))
    }
    sequential_rows = []
    for name in names:
        cells: list[object] = [name]
        for n in ns:
            cells.append(outcomes[(name, n, "one-shot")].bottleneck_load)
        cells.append(f"{cells[-1] / cells[1]:.1f}x")
        sequential_rows.append(cells)
    sequential_rows.append(
        ["k(n) lower bound"]
        + [f"{lower_bound_k(n):.2f}" for n in ns]
        + [f"{lower_bound_k(ns[-1]) / lower_bound_k(ns[0]):.1f}x"]
    )
    concurrent_rows = []
    for name in names:
        sequential = outcomes[(name, concurrent_n, "one-shot")]
        concurrent = outcomes[(name, concurrent_n, "one-shot-concurrent")]
        concurrent_rows.append(
            [
                name,
                sequential.bottleneck_load,
                concurrent.bottleneck_load,
                f"{sequential.bottleneck_load / concurrent.bottleneck_load:.1f}x",
                concurrent.total_messages,
            ]
        )
    return ExperimentResult(
        experiment_id="E7",
        claim="only the paper's counter tracks k(n) sequentially; "
        "combining/diffracting structures shine under concurrency instead",
        tables=(
            make_table(
                "E7a: sequential one-shot bottleneck (the lower bound's regime)",
                ["counter"] + [f"m_b @ n={n}" for n in ns]
                + [f"growth {ns[0]}->{ns[-1]}"],
                sequential_rows,
            ),
            make_table(
                f"E7b: one fully concurrent batch of n={concurrent_n} incs",
                [
                    "counter", "sequential m_b", "concurrent m_b",
                    "relief", "concurrent msgs",
                ],
                concurrent_rows,
            ),
        ),
    )


def run_e13(n: int = 64, adversary_n: int = 16) -> ExperimentResult:
    """E13: bottleneck vs operation order on the arrow counter."""
    ping_pong = [1 if i % 2 == 0 else n for i in range(n)]
    orders = [
        ("identity", one_shot(n)),
        ("shuffled", shuffled(n, seed=1)),
        ("ping-pong", ping_pong),
    ]
    rows = []
    for name, spec in (
        ("arrow", "arrow"),
        ("ww-tree (wrap)", "ww-tree?interval_mode=wrap"),
        ("central", "central"),
    ):
        ref = parse_spec(spec)
        cells: list[object] = [name]
        for _, order in orders:
            network = Network()
            counter = ref.build(network, n)
            cells.append(run_sequence(counter, list(order)).bottleneck_load())
        cells.append(GreedyAdversary(ref, adversary_n).run().bottleneck_load)
        rows.append(cells)
    return ExperimentResult(
        experiment_id="E13",
        claim="the theorem's ∃-order quantifier is necessary: the arrow "
        "counter is cheap on friendly orders and Θ(n) on adversarial ones",
        tables=(
            make_table(
                f"E13: bottleneck vs operation order (n={n}, "
                f"k(n) = {lower_bound_k(n):.2f})",
                ["counter"] + [f"m_b {name}" for name, _ in orders]
                + [f"adversary (n={adversary_n})"],
                rows,
            ),
        ),
    )


def run_e17(n: int = 256) -> ExperimentResult:
    """E17: wall-clock completion under unit-service congestion."""
    specs = (
        ("central", "central"),
        ("combining-tree", "combining-tree?window=3.0"),
        ("counting-network", "counting-network"),
        ("diffracting-tree", "diffracting-tree?prism_wait=3.0"),
        ("ww-tree", "ww-tree"),
    )
    rows = []
    for name, spec in specs:
        network = Network(policy=CongestedDelay(latency=1.0, service=1.0))
        counter = parse_spec(spec).build(network, n)
        result = run_concurrent(counter, [one_shot(n)])
        max_received = max(
            network.trace.received_by(p)
            for p in range(1, network.processor_count + 1)
        )
        rows.append(
            [
                name,
                f"{network.now:.0f}",
                max_received,
                f"{network.now / max_received:.2f}",
                result.total_messages,
                result.bottleneck_load(),
            ]
        )
    return ExperimentResult(
        experiment_id="E17",
        claim="completion time of a concurrent batch is gated by the "
        "hottest receiver's load",
        tables=(
            make_table(
                f"E17: one concurrent batch of n={n} incs under unit-service "
                "congestion",
                [
                    "counter", "completion time", "max receive load",
                    "time / load", "total msgs", "m_b",
                ],
                rows,
            ),
        ),
    )
