"""E25: Byzantine resilience — the agreement/validity matrix and its price.

The paper's model lets processors fail only by stopping; E25 asks what
counting costs when they *lie*.  Two tables:

* the **resilience matrix** over {family} × {f} × {adversary strategy}:
  unprotected families (central, ww-tree) are run through the schedule
  explorer under a budget-f adversary and violate agreement, validity,
  or the run harness itself at f = 1, while the phase-king
  ``byz-counter`` completes with agreement and validity intact for
  every strategy at every admissible f < n/3;
* the **resilience cost**: msgs/op of ``byz-counter`` vs the ww-tree
  with no adversary active (f = 0 faults) — the price of voting on
  every increment is a Θ(n²·f) message blow-up per op, the overhead a
  deployment pays even when nobody lies.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, make_table
from repro.registry import RunSession
from repro.sim.faults import BYZANTINE_STRATEGIES

E25_N = 7
"""Matrix population: n = 7 admits f ∈ {1, 2} (both below n/3)."""

E25_UNPROTECTED = ("central", "ww-tree")
"""Families without ``tolerates_byzantine`` (explored to violation)."""


def _explore_unprotected(
    family: str, f: int, strategy: str, seed: int
) -> str:
    """Explore *family* under a budget-f adversary; name what broke."""
    from repro.explore import ExploreConfig, Explorer

    report = Explorer(
        ExploreConfig(
            counter=family,
            n=4,
            seed=seed,
            strategy="guided:5,random:5",
            budget=5,
            faults=f"byz={f}@{strategy}",
            workload="sequential",
            shrink=False,
            max_failures=10,
        )
    ).run()
    if report.ok:
        return "no violation found"
    oracles = sorted({failure.oracle for failure in report.failures})
    return "violates " + "+".join(oracles)


def _run_tolerant(f: int, strategy: str, seed: int) -> str:
    """Run byz-counter under the adversary; verify agreement+validity."""
    session = RunSession(
        f"byz-counter?f={f}",
        E25_N,
        policy="random",
        seed=seed,
        faults=f"byz={f}@{strategy}",
    )
    result = session.run_sequence()
    byz = session.fault_plan.byzantine_pids
    honest = [o.value for o in result.outcomes if o.initiator not in byz]
    assert len(honest) == E25_N - f, f"byz-counter f={f}: honest inc lost"
    assert len(set(honest)) == len(honest), "agreement: duplicate value"
    counts = {
        pid: count
        for pid, count in session.counter.replica_counts().items()
        if pid not in byz
    }
    assert len(set(counts.values())) == 1, "agreement: replicas diverge"
    bound = E25_N + max(
        (
            sum(c for origin, c in tally.items() if origin in byz)
            for pid, tally in session.counter.commit_origins().items()
            if pid not in byz
        ),
        default=0,
    )
    assert all(0 <= v < bound for v in honest), "validity: invented value"
    return "agreement+validity hold"


def _msgs_per_op(spec: str, n: int) -> float:
    session = RunSession(spec, n, policy="random", seed=3, trace_level="FULL")
    session.run_sequence()
    return len(session.network.trace.records) / n


def run_e25(seed: int = 9) -> ExperimentResult:
    """E25: Byzantine resilience matrix and the cost of tolerance."""
    matrix_rows = []
    for family in E25_UNPROTECTED:
        for strategy in BYZANTINE_STRATEGIES:
            matrix_rows.append(
                [
                    family,
                    1,
                    strategy,
                    _explore_unprotected(family, 1, strategy, seed=seed),
                ]
            )
    for f in (1, 2):
        for strategy in BYZANTINE_STRATEGIES:
            matrix_rows.append(
                [
                    "byz-counter",
                    f,
                    strategy,
                    _run_tolerant(f, strategy, seed=seed),
                ]
            )

    tree = _msgs_per_op("ww-tree", E25_N)
    cost_rows = []
    cost_rows.append(["ww-tree", "-", f"{tree:.1f}", "1.0x"])
    for f in (1, 2):
        cost = _msgs_per_op(f"byz-counter?f={f}", E25_N)
        cost_rows.append(
            ["byz-counter", f, f"{cost:.1f}", f"{cost / tree:.0f}x"]
        )

    return ExperimentResult(
        experiment_id="E25",
        claim="unprotected families violate agreement/validity at f = 1 "
        "while byz-counter survives every adversary strategy at f < n/3 — "
        "at a message cost orders of magnitude above the tree",
        tables=(
            make_table(
                f"E25a: resilience matrix (explorer at n=4 for unprotected "
                f"families; byz-counter at n={E25_N}, seed={seed})",
                ["family", "f", "adversary", "outcome"],
                matrix_rows,
                note=(
                    "Unprotected rows are explored (guided+random, "
                    "sequential workload) until an\noracle names the broken "
                    "invariant; 'runtime' means the protocol could not "
                    "even\ncomplete under the adversary.  byz-counter rows "
                    "are direct runs with agreement\nand validity asserted "
                    "on the honest evidence."
                ),
            ),
            make_table(
                f"E25b: resilience cost with no adversary active "
                f"(n={E25_N}, clean runs)",
                ["family", "f", "msgs/op", "vs ww-tree"],
                cost_rows,
                note=(
                    "The phase-king counter broadcasts echo and vote "
                    "rounds among all n replicas\nfor every single "
                    "increment (f + 1 phases of 3 all-to-all steps), so "
                    "its per-op\nmessage count is Θ(n²·f) against the "
                    "tree's Θ(log n) — the paper's bottleneck\nhierarchy "
                    "priced in fault-model strength."
                ),
            ),
        ),
    )
