"""E4, E5, E9, E10, E12: the paper's counter, measured every which way.

* E4 (Bottleneck Theorem): O(k) across n = k^(k+1).
* E5 (retirement lemmas): per-level accounting + lemma checker verdicts.
* E9 (ablation): retirement-threshold sweep.
* E10 (ablation): tree-shape sweep at fixed n.
* E12 (extension): steady state over repeated rounds.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.analysis import LoadProfile
from repro.core import IntervalMode, TreeCounter, TreeGeometry, TreePolicy
from repro.core.invariants import check_all, pure_leaves
from repro.counters import CentralCounter
from repro.errors import SimulationLimitError
from repro.experiments.base import ExperimentResult, ExperimentTable, make_table
from repro.sim.network import Network
from repro.workloads import SweepPoint, SweepRunner, one_shot, run_sequence


def run_e4(
    ks: tuple[int, ...] = (2, 3, 4, 5),
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """E4: the headline O(k) sweep.

    The grid runs through *runner* (serial by default); a parallel
    :class:`~repro.workloads.SweepRunner` produces the same table.
    """
    if runner is None:
        runner = SweepRunner()
    points = [SweepPoint(counter="ww-tree", n=k ** (k + 1)) for k in ks]
    rows = []
    for k, outcome in zip(ks, runner.run(points)):
        n = k ** (k + 1)
        profile = LoadProfile(
            loads=outcome.loads, population=max(n, len(outcome.loads), 1)
        )
        rows.append(
            [
                k,
                n,
                outcome.bottleneck_load,
                f"{outcome.bottleneck_load / k:.1f}",
                f"{profile.mean_load:.2f}",
                f"{outcome.messages_per_op:.2f}",
                outcome.extras["retirements"],
                outcome.extras["root_ids_used"],
                outcome.extras["forwarded"],
            ]
        )
    return ExperimentResult(
        experiment_id="E4",
        claim="the tree counter's bottleneck is O(k) over the one-shot "
        "workload",
        tables=(
            make_table(
                "E4 (Bottleneck Theorem): O(k) bottleneck across n = k^(k+1)",
                [
                    "k", "n=k^(k+1)", "bottleneck m_b", "m_b / k", "mean load",
                    "msgs/op", "retirements", "root ids used", "forwarded",
                ],
                rows,
            ),
        ),
    )


def _e5_table(k: int) -> ExperimentTable:
    n = k ** (k + 1)
    network = Network()
    counter = TreeCounter(network, n)
    result = run_sequence(counter, one_shot(n))
    geometry = counter.geometry
    retires_by_node: Counter = Counter()
    worst_age: defaultdict[int, int] = defaultdict(int)
    for event in counter.retirements:
        retires_by_node[event.addr] += 1
        worst_age[event.addr.level] = max(
            worst_age[event.addr.level], event.age_at_retirement
        )
    rows = []
    for level in geometry.inner_levels():
        level_retires = sum(
            count for addr, count in retires_by_node.items()
            if addr.level == level
        )
        worst_node = max(
            (count for addr, count in retires_by_node.items()
             if addr.level == level),
            default=0,
        )
        budget = (
            geometry.root_walk_budget()
            if level == 0
            else geometry.arity ** (geometry.depth - level) - 1
        )
        rows.append(
            [
                level,
                geometry.nodes_on_level(level),
                level_retires,
                worst_node,
                budget,
                worst_age.get(level, 0),
                counter.policy.retire_threshold,
            ]
        )
    leaves = pure_leaves(counter)
    max_leaf_load = max((result.trace.load(pid) for pid in leaves), default=0)
    lemmas = "\n".join(
        f"  [{'OK' if r.holds else 'FAIL'}] {r.lemma}: {r.detail}"
        for r in check_all(counter, result)
    )
    note = (
        f"pure leaves: {len(leaves)}/{n}, max pure-leaf load: {max_leaf_load} "
        f"(lemma bound: 2 + parent retirements)\n{lemmas}"
    )
    return make_table(
        f"E5: per-level retirement accounting (k={k}, n={n})",
        [
            "level", "nodes", "retirements", "worst/node", "budget/node",
            "worst age", "threshold",
        ],
        rows,
        note=note,
    )


def run_e5(ks: tuple[int, ...] = (3, 4)) -> ExperimentResult:
    """E5: the §4 lemmas with per-level retirement accounting."""
    return ExperimentResult(
        experiment_id="E5",
        claim="the Retirement / Grow-Old / Number-of-Retirements / "
        "Leaf-Work lemmas hold as measured",
        tables=tuple(_e5_table(k) for k in ks),
    )


def run_e9(
    k: int = 3, factors: tuple[int, ...] = (2, 3, 4, 6, 8)
) -> ExperimentResult:
    """E9: the retirement-threshold ablation."""
    from repro.core.invariants import check_number_of_retirements

    n = k ** (k + 1)
    geometry = TreeGeometry.paper_shape(k)
    rows = []
    for factor in factors:
        policy = TreePolicy(
            retire_threshold=factor * k, interval_mode=IntervalMode.WRAP
        )
        network = Network(event_limit=2_000_000)
        counter = TreeCounter(network, n, geometry=geometry, policy=policy)
        try:
            result = run_sequence(counter, one_shot(n))
        except SimulationLimitError:
            rows.append([f"{factor}k", factor * k, "EXPLODES", "-", "-", "-"])
            continue
        budgets_ok = check_number_of_retirements(counter).holds
        rows.append(
            [
                f"{factor}k",
                factor * k,
                result.bottleneck_load(),
                len(counter.retirements),
                f"{result.average_messages_per_op():.2f}",
                "yes" if budgets_ok else "OVERRUN",
            ]
        )
    network = Network()
    counter = TreeCounter(
        network, n, geometry=geometry, policy=TreePolicy.never_retire()
    )
    result = run_sequence(counter, one_shot(n))
    rows.append(
        [
            "∞ (static)", "-", result.bottleneck_load(), 0,
            f"{result.average_messages_per_op():.2f}", "yes",
        ]
    )
    return ExperimentResult(
        experiment_id="E9",
        claim="threshold 3k-4k is the sweet spot; 2k overruns the paper's "
        "interval budgets; ∞ degenerates to Θ(n)",
        tables=(
            make_table(
                f"E9: retirement-threshold ablation (k={k}, n={n}; paper "
                "interval widths, wrap on overrun)",
                [
                    "factor", "threshold", "bottleneck m_b", "retirements",
                    "msgs/op", "budgets ok",
                ],
                rows,
            ),
        ),
    )


def run_e10(
    n: int = 1024,
    shapes: tuple[tuple[int, int], ...] = ((2, 9), (4, 4), (8, 2), (32, 1)),
) -> ExperimentResult:
    """E10: the tree-shape ablation at fixed client count."""
    rows = []
    for arity, depth in shapes:
        geometry = TreeGeometry(arity=arity, depth=depth)
        while geometry.leaf_count < n:
            depth += 1
            geometry = TreeGeometry(arity=arity, depth=depth)
        policy = TreePolicy(
            retire_threshold=4 * arity, interval_mode=IntervalMode.WRAP
        )
        network = Network()
        counter = TreeCounter(network, n, geometry=geometry, policy=policy)
        result = run_sequence(counter, one_shot(n))
        reserve = max(0, geometry.processor_requirement() - geometry.leaf_count)
        rows.append(
            [
                f"{arity}^{depth + 1}",
                arity,
                depth + 1,
                geometry.leaf_count,
                result.bottleneck_load(),
                f"{result.average_messages_per_op():.2f}",
                len(counter.retirements),
                reserve,
            ]
        )
    return ExperimentResult(
        experiment_id="E10",
        claim="the paper's arity = depth = k shape is where the id space "
        "closes exactly at n",
        tables=(
            make_table(
                f"E10: tree-shape ablation at n={n} clients (threshold 4·arity)",
                [
                    "shape", "arity", "levels to leaves", "leaves",
                    "bottleneck m_b", "msgs/op", "retirements", "reserve ids",
                ],
                rows,
            ),
        ),
    )


def run_e12(k: int = 3, rounds: int = 5) -> ExperimentResult:
    """E12: repeated rounds in wrap mode vs the central counter."""
    n = k ** (k + 1)

    def marks(counter, network):
        out = []
        op_index = 0
        for _ in range(rounds):
            for pid in one_shot(n):
                counter.begin_inc(pid, op_index)
                network.run_until_quiescent()
                op_index += 1
            out.append(network.trace.bottleneck()[1])
        return out

    tree_network = Network()
    tree = TreeCounter(
        tree_network,
        n,
        policy=TreePolicy(retire_threshold=4 * k, interval_mode=IntervalMode.WRAP),
    )
    tree_marks = marks(tree, tree_network)
    central_network = Network()
    central_marks = marks(CentralCounter(central_network, n), central_network)

    rows = []
    for index in range(rounds):
        tree_delta = tree_marks[index] - (tree_marks[index - 1] if index else 0)
        central_delta = central_marks[index] - (
            central_marks[index - 1] if index else 0
        )
        rows.append(
            [
                index + 1,
                tree_marks[index],
                tree_delta,
                central_marks[index],
                central_delta,
                f"{central_marks[index] / tree_marks[index]:.1f}x",
            ]
        )
    return ExperimentResult(
        experiment_id="E12",
        claim="amortized per-round bottleneck stays O(k) in steady state",
        tables=(
            make_table(
                f"E12: repeated one-shot rounds (k={k}, n={n}, wrap mode)",
                [
                    "round", "tree cum m_b", "tree Δ/round",
                    "central cum m_b", "central Δ/round", "ratio",
                ],
                rows,
                note=f"tree value after {rounds} rounds: {tree.value} "
                f"(= {rounds}·{n}); retirements: {len(tree.retirements)}",
            ),
        ),
    )
