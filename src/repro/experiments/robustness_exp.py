"""E18–E21: robustness — schedules, skew, and injected faults.

* E18 — delivery robustness: the paper's quantities are message counts,
  which should barely move under different asynchronous schedules.
  Measured: bottleneck mean ± std over random-delay seeds per counter.
* E19 — skewed initiators: the paper restricts its lower bound to one
  inc per processor because "the amount of achievable distribution is
  limited if many operations are initiated by a single processor".
  Measured: bottleneck under Zipf-skewed initiator sequences as the
  skew grows, split into the hottest *initiator's* own load vs the
  hottest *non-initiator* — showing the residual bottleneck is the
  workload's, not the structure's.
* E20 — loss tolerance: the paper's model is failure-free, but its
  bottleneck claim is about *message counts*, which survive a lossy
  network once a reliable transport restores exactly-once delivery.
  Measured: every one-shot completes with correct values at increasing
  drop rates, and the bottleneck ordering (central ≫ trees) persists —
  retransmissions inflate loads roughly uniformly, they do not
  redistribute them.
* E21 — graceful degradation: duplication storms, a crashed window on a
  hot processor, and compound loss+crash scenarios on the tree
  counters.  Measured: completion, retransmit overhead, and bottleneck
  against the clean baseline.
"""

from __future__ import annotations

from repro.analysis.stats import summarize_over_seeds
from repro.experiments.base import ExperimentResult, make_table
from repro.registry import RunSession, parse_spec
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.workloads import one_shot, run_sequence, zipf_sequence

ROBUSTNESS_COUNTERS = (
    "central",
    "static-tree",
    "ww-tree",
    "combining-tree",
    "counting-network",
    "diffracting-tree",
    "arrow",
)
"""Canonical registry names of the schedule-robustness comparison set."""


def run_e18(n: int = 81, seeds: tuple[int, ...] = tuple(range(8))) -> ExperimentResult:
    """E18: bottleneck spread over random-delivery seeds."""
    rows = []
    for name in ROBUSTNESS_COUNTERS:
        ref = parse_spec(name)

        def measure(seed: int, ref=ref) -> float:
            network = Network(policy=RandomDelay(seed=seed))
            counter = ref.build(network, n)
            return run_sequence(counter, one_shot(n)).bottleneck_load()

        summary = summarize_over_seeds(measure, seeds)
        rows.append(
            [
                name,
                f"{summary.mean:.1f}",
                f"{summary.std:.1f}",
                int(summary.minimum),
                int(summary.maximum),
                f"{100 * summary.spread:.1f}%",
            ]
        )
    return ExperimentResult(
        experiment_id="E18",
        claim="message-count measurements are robust to asynchronous "
        "schedule choice",
        tables=(
            make_table(
                f"E18: one-shot bottleneck over {len(seeds)} random-delay "
                f"seeds (n={n})",
                ["counter", "mean m_b", "std", "min", "max", "spread"],
                rows,
                note=(
                    "Sequential operations make message counts schedule-"
                    "independent for every\nprotocol except the ww-tree, "
                    "whose few-percent spread is exactly its\nretirement "
                    "handshake (which forwarded/deferred messages occur "
                    "depends on\narrival order) — the overhead the paper "
                    "allows as 'a constant number of\nextra messages'."
                ),
            ),
        ),
    )


def run_e19(
    n: int = 81,
    length: int = 243,
    skews: tuple[float, ...] = (0.0, 0.8, 1.4, 2.2),
) -> ExperimentResult:
    """E19: Zipf-skewed initiators — the regime the paper excludes."""
    ref = parse_spec("ww-tree?interval_mode=wrap")
    rows = []
    for skew in skews:
        if skew == 0.0:
            order = [(i % n) + 1 for i in range(length)]
        else:
            order = zipf_sequence(n, length=length, skew=skew, seed=1)
        network = Network()
        counter = ref.build(network, n)
        result = run_sequence(counter, order)
        geometry = counter.geometry
        initiators = set(order)
        hottest_initiator = max(
            result.trace.load(pid) for pid in initiators
        )
        non_initiators = [
            pid
            for pid in range(1, geometry.processor_requirement() + 1)
            if pid not in initiators
        ]
        hottest_other = max(
            (result.trace.load(pid) for pid in non_initiators), default=0
        )
        top_share = max(order.count(pid) for pid in initiators) / length
        rows.append(
            [
                f"{skew:.1f}",
                f"{100 * top_share:.0f}%",
                result.bottleneck_load(),
                hottest_initiator,
                hottest_other,
            ]
        )
    return ExperimentResult(
        experiment_id="E19",
        claim="with skewed initiators the residual bottleneck is the "
        "initiator itself — the workload's hot spot, not the structure's",
        tables=(
            make_table(
                f"E19: ww-tree under Zipf-skewed initiators (n={n}, "
                f"{length} ops, wrap mode)",
                [
                    "zipf skew",
                    "top initiator share",
                    "bottleneck m_b",
                    "hottest initiator load",
                    "hottest non-initiator load",
                ],
                rows,
                note=(
                    "As skew grows, the hottest *initiator* (who must send "
                    "and receive its own ops'\nmessages) dominates while "
                    "non-initiating workers stay flat — the paper's reason "
                    "for\nstating the bound at one inc per processor."
                ),
            ),
        ),
    )


LOSS_COUNTERS = (
    "central",
    "static-tree",
    "ww-tree",
    "quorum[majority]",
    "quorum[maekawa]",
)
"""Counters of the loss-tolerance comparison (n=25 keeps maekawa legal)."""


def run_e20(
    n: int = 25,
    drops: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1),
    seed: int = 3,
) -> ExperimentResult:
    """E20: one-shot completion and bottleneck under increasing loss."""
    rows = []
    for name in LOSS_COUNTERS:
        for drop in drops:
            session = RunSession(
                name,
                n,
                policy="random",
                seed=seed,
                faults=f"drop={drop}" if drop else None,
                reliable=True,
            )
            # check_values=True: a wrong or missing value raises, so a
            # printed row *is* the completion proof.
            result = session.run_sequence()
            stats = session.transport_stats()
            assert session.transport is not None
            rows.append(
                [
                    name,
                    f"{drop:.2f}",
                    result.bottleneck_load(),
                    stats["retransmissions"],
                    f"{session.transport.overhead_ratio():.3f}",
                    "yes",
                ]
            )
    return ExperimentResult(
        experiment_id="E20",
        claim="behind a reliable transport every counter completes "
        "correctly under message loss, and the bottleneck ordering of the "
        "failure-free model persists",
        tables=(
            make_table(
                f"E20: one-shot under drop rates (n={n}, random delays, "
                f"seed={seed}, reliable transport)",
                [
                    "counter",
                    "drop",
                    "bottleneck m_b",
                    "retransmits",
                    "overhead",
                    "all correct",
                ],
                rows,
                note=(
                    "Per counter, the bottleneck grows by roughly the "
                    "retransmit overhead factor\nand no more — loss "
                    "changes constants, not which processor is hot or "
                    "why.\ndrop=0.00 rows show the transport itself is "
                    "free of spurious retransmits\n(overhead exactly "
                    "1.000)."
                ),
            ),
        ),
    )


DEGRADATION_SCENARIOS = (
    ("clean", None),
    ("duplication", "dup=0.05x2"),
    ("crash window", "crash=2@t40-t120"),
    ("loss + crash", "drop=0.05,crash=2@t40-t120"),
)
"""E21 scenarios: label → fault spec (processor 2 is a hot inner node)."""


def run_e21(
    n: int = 27,
    seed: int = 5,
    counters: tuple[str, ...] = ("static-tree", "ww-tree"),
) -> ExperimentResult:
    """E21: graceful degradation of the tree counters under compound faults."""
    rows = []
    for name in counters:
        baseline: int | None = None
        for label, faults in DEGRADATION_SCENARIOS:
            session = RunSession(
                name,
                n,
                policy="random",
                seed=seed,
                faults=faults,
                reliable=True,
            )
            result = session.run_sequence()
            stats = session.transport_stats()
            assert session.transport is not None
            bottleneck = result.bottleneck_load()
            if baseline is None:
                baseline = bottleneck
            injected = (
                session.fault_plan.counts if session.fault_plan else {}
            )
            rows.append(
                [
                    name,
                    label,
                    bottleneck,
                    f"{bottleneck / baseline:.2f}x",
                    stats["retransmissions"],
                    f"{session.transport.overhead_ratio():.3f}",
                    sum(injected.values()),
                ]
            )
    return ExperimentResult(
        experiment_id="E21",
        claim="tree counters degrade gracefully: duplication, a crashed "
        "window on a hot node, and compound loss+crash slow them down but "
        "never corrupt the count",
        tables=(
            make_table(
                f"E21: degradation scenarios (n={n}, random delays, "
                f"seed={seed}, reliable transport)",
                [
                    "counter",
                    "scenario",
                    "bottleneck m_b",
                    "vs clean",
                    "retransmits",
                    "overhead",
                    "faults injected",
                ],
                rows,
                note=(
                    "Processor 2 is an inner tree node in both wirings; "
                    "while it is down the\ntransport keeps retrying with "
                    "capped backoff and delivery resumes on recovery.\n"
                    "Duplicates are absorbed by sequence-number "
                    "suppression, so values stay exact\nin every scenario "
                    "(rows only print if check_values passed)."
                ),
            ),
        ),
    )
