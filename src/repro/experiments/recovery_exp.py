"""E22–E23: crash recovery — failover latency and compound-fault liveness.

* E22 — failover under primary crashes: the standby-replicated central
  counter completes the staggered one-shot workload linearizably while
  its primary dies mid-run.  Measured: completed operations,
  linearizability, failover latency (crash start → role handoff),
  suspicions, and the bottleneck-message overhead against the crash-free
  run.  The bare ``central`` counter under the same plan fails fast with
  :class:`~repro.errors.CapabilityError` — crash tolerance is a
  protocol property, not a transport add-on.
* E23 — recovery under compound faults: both crash-tolerant variants
  (``central[standby]``, ``combining-tree[bypass]``) driven through a
  plan that drops messages, crashes a processor with a scheduled
  ``recover=`` point, and partitions the clients mid-run.  Measured:
  completion, value uniqueness, linearizability, suspicion / recovery
  counts, and the client bottleneck.
"""

from __future__ import annotations

from repro.analysis import LoadProfile
from repro.analysis.linearizability import check_linearizable_counting
from repro.errors import CapabilityError
from repro.experiments.base import ExperimentResult, make_table
from repro.registry import RunSession

E22_SCENARIOS = (
    ("no crash", None),
    ("primary crash", "crash=1@t18"),
    ("primary + client crash", "crash=1@t18,crash=5@t30-t55"),
)
"""E22 scenarios: label → fault spec (processor 1 is the primary)."""

E23_SPEC = "drop=0.05,crash=3@t20-t50,recover=3@t60,partition=1..8|9..16@t30-t40"
"""E23 compound plan: loss + a crashed-then-recovered processor + a
mid-run partition of the clients (the detector hub sits outside both
partition groups, so monitoring itself also crosses the cut)."""


def _client_bottleneck(session: RunSession, n: int) -> int:
    """``m_b`` over the client ids 1..n only.

    Recovery sessions register the failure detector's heartbeat hub as
    an extra processor; its load is monitoring overhead, not counting
    work, so it is excluded from the bottleneck comparison.
    """
    profile = LoadProfile.from_trace(session.network.trace, population=n)
    return profile.restrict(range(1, n + 1)).bottleneck_load


def run_e22(n: int = 16, seed: int = 3, gap: float = 4.0) -> ExperimentResult:
    """E22: failover latency and message cost of surviving primary crashes."""
    # The capability gate: the bare central counter refuses the same
    # plan outright — reliable transports do not confer crash tolerance.
    try:
        RunSession("central", n, policy="random", seed=seed,
                   faults=E22_SCENARIOS[1][1], reliable=True)
        raise AssertionError(
            "bare central accepted a permanent-crash plan; the "
            "tolerates_crash gate is broken"
        )
    except CapabilityError:
        pass
    rows = []
    baseline: int | None = None
    for label, faults in E22_SCENARIOS:
        session = RunSession(
            "central[standby]", n, policy="random", seed=seed, faults=faults
        )
        ops = session.run_staggered(gap=gap)
        report = check_linearizable_counting(ops)
        assert report.linearizable, (
            f"E22 {label}: {len(report.inversions)} inversions"
        )
        bottleneck = _client_bottleneck(session, n)
        if baseline is None:
            baseline = bottleneck
        manager = session.recovery
        if manager is None:
            suspicions, failovers, latency = 0, 0, None
        else:
            suspicions = manager.suspicion_count()
            failovers = manager.failover_count()
            latency = manager.failover_latency()
        rows.append(
            [
                label,
                f"{len(ops)}/{n}",
                "yes",
                suspicions,
                failovers,
                f"{latency:g}" if latency is not None else "-",
                bottleneck,
                f"{bottleneck / baseline:.2f}x",
            ]
        )
    return ExperimentResult(
        experiment_id="E22",
        claim="the standby-replicated central counter survives a mid-run "
        "primary crash linearizably, paying a measured failover latency "
        "and a constant-factor bottleneck overhead; the bare central "
        "counter refuses the same plan outright",
        tables=(
            make_table(
                f"E22: central[standby] under primary crashes (n={n}, "
                f"random delays, seed={seed}, staggered gap={gap:g})",
                [
                    "scenario",
                    "ops completed",
                    "linearizable",
                    "suspicions",
                    "failovers",
                    "failover latency",
                    "client m_b",
                    "vs clean",
                ],
                rows,
                note=(
                    "Failover latency runs from the crash-window start to "
                    "the standby's promotion —\ndetection (heartbeat "
                    "silence past the timeout) dominates it.  Crashed "
                    "clients'\nunanswered ops are omitted (a dead client "
                    "observes nothing); every value that\nany client *did* "
                    "observe is unique and in linearizable order.  The "
                    "bare 'central'\ncounter under the same plan raises "
                    "CapabilityError before running (asserted\nabove): "
                    "retransmission cannot resurrect state on a dead "
                    "processor."
                ),
            ),
        ),
    )


def run_e23(n: int = 16, seed: int = 7, gap: float = 4.0) -> ExperimentResult:
    """E23: both crash-tolerant variants under loss + crash/recover + partition."""
    rows = []
    for name in ("central[standby]", "combining-tree[bypass]"):
        session = RunSession(
            name, n, policy="random", seed=seed, faults=E23_SPEC
        )
        ops = session.run_staggered(gap=gap)
        values = [op.value for op in ops]
        assert len(set(values)) == len(values), f"E23 {name}: duplicate values"
        report = check_linearizable_counting(ops)
        assert report.linearizable, (
            f"E23 {name}: {len(report.inversions)} inversions"
        )
        manager = session.recovery
        assert manager is not None
        injected = session.fault_plan.counts if session.fault_plan else {}
        rows.append(
            [
                name,
                f"{len(ops)}/{n}",
                "yes",
                "yes",
                manager.suspicion_count(),
                manager.recovery_count(),
                _client_bottleneck(session, n),
                sum(injected.values()),
            ]
        )
    return ExperimentResult(
        experiment_id="E23",
        claim="crash-tolerant counters stay live and safe under compound "
        "faults: drops, a crash healed by a scheduled recovery, and a "
        "mid-run partition",
        tables=(
            make_table(
                f"E23: compound faults (n={n}, random delays, seed={seed}, "
                f"staggered gap={gap:g})",
                [
                    "counter",
                    "ops completed",
                    "unique values",
                    "linearizable",
                    "suspicions",
                    "recoveries",
                    "client m_b",
                    "faults injected",
                ],
                rows,
                note=(
                    f"Plan: {E23_SPEC}\nProcessor 3 crashes at t20, its "
                    "links heal at t50 and its checkpoint is\nre-delivered "
                    "at t60; both protocols replay or re-route whatever it "
                    "missed.\ncentral[standby] keeps exactly-once via "
                    "request-id dedup; combining-tree[bypass]\nis at-most-"
                    "once — crashed combines burn their reserved values "
                    "(gaps), but no\nvalue is ever handed out twice."
                ),
            ),
        ),
    )
