"""E3 and E16: the §3 lower bound, played and calibrated.

* E3: the greedy longest-list adversary vs real counters, the weight
  function's growth, the AM–GM step, and the bound curve.
* E16: the exhaustive worst-case order (symmetry-pruned) vs the greedy
  construction at small n.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, make_table
from repro.lowerbound import (
    ExactAdversary,
    GreedyAdversary,
    am_gm_holds,
    bound_series,
    evaluate_ledger,
    lower_bound_k,
    message_load_bound,
)

DEFAULT_E3_GAMES = (
    ("central", 16),
    ("central", 32),
    ("static-tree", 16),
    ("ww-tree", 8),
    ("ww-tree", 27),
)
"""(registry spec, n) pairs the greedy adversary plays by default."""

DEFAULT_E16_GAMES = (
    ("central", 7),
    ("static-tree", 7),
    ("ww-tree", 6),
    ("arrow", 6),
)
"""(registry spec, n) pairs small enough for the exhaustive search."""


def run_e3(
    games=DEFAULT_E3_GAMES,
    curve_ns: tuple[int, ...] = (8, 81, 1024, 15625, 10**6, 10**9, 10**12),
) -> ExperimentResult:
    """E3: the adversarial game plus the k·kᵏ = n curve."""
    rows = []
    for name, n in games:
        run = GreedyAdversary(name, n).run()
        report = evaluate_ledger(run.ledger, base=run.bottleneck_load + 1)
        rows.append(
            [
                name,
                n,
                f"{lower_bound_k(n):.2f}",
                message_load_bound(n),
                run.bottleneck_load,
                "yes" if run.bottleneck_load >= message_load_bound(n) else "NO",
                f"{report.growth_steps}/{len(report.weights) - 1}",
                "yes" if am_gm_holds(report) else "NO",
            ]
        )
    games_table = make_table(
        "E3a: greedy adversary vs real counters (the §3 game)",
        [
            "counter", "n", "k(n)", "⌊k⌋", "adversarial m_b",
            "m_b ≥ ⌊k⌋", "weight growth", "AM-GM holds",
        ],
        rows,
    )
    curve_table = make_table(
        "E3b: the lower-bound curve k·kᵏ = n and its asymptote",
        ["n", "k(n)", "⌊k(n)⌋", "ln n / ln ln n"],
        bound_series(list(curve_ns)),
    )
    return ExperimentResult(
        experiment_id="E3",
        claim="some processor handles ≥ k messages, k·kᵏ = n, under the "
        "greedy longest-list order",
        tables=(games_table, curve_table),
    )


def run_e16(games=DEFAULT_E16_GAMES) -> ExperimentResult:
    """E16: exhaustive worst case vs the greedy construction."""
    rows = []
    for name, n in games:
        exact = ExactAdversary(name, n).run()
        greedy = GreedyAdversary(name, n).run()
        ratio = greedy.bottleneck_load / exact.worst_bottleneck
        rows.append(
            [
                name,
                n,
                message_load_bound(n),
                exact.worst_bottleneck,
                greedy.bottleneck_load,
                f"{100 * ratio:.0f}%",
                exact.orders_explored,
                exact.orders_pruned_by_symmetry,
            ]
        )
    return ExperimentResult(
        experiment_id="E16",
        claim="the greedy construction recovers (nearly) the exhaustive "
        "worst case over orders",
        tables=(
            make_table(
                "E16: exhaustive worst-case order vs the §3 greedy construction",
                [
                    "counter", "n", "⌊k(n)⌋", "exact worst m_b", "greedy m_b",
                    "greedy/exact", "orders explored", "pruned",
                ],
                rows,
                note=(
                    "Both adversaries clear the theorem's floor everywhere; "
                    "greedy recovers most of the\nexhaustive worst case — "
                    "all of it where every op looks the same (central)."
                ),
            ),
        ),
    )
