"""E27: sharding beats the bottleneck — batched keyed goodput vs one counter.

The paper's lower bound is per counter: any single counting structure
has a processor fielding Omega(k) messages per operation, so a single
shard saturates at a protocol-determined rate no matter how the
structure is built.  The two levers that remain are the ones this
experiment measures end to end, against the live keyed TCP service:

* **horizontal sharding**: a :class:`~repro.shard.CounterShardMap`
  places counter keys on independent shard pools by consistent
  hashing; distinct shards traverse concurrently, so the keyspace's
  aggregate capacity scales with the shard count even though each
  shard individually still obeys the bound;
* **batch combining**: each shard's batcher folds up to ``batch_max``
  queued increments into one traversal
  (:meth:`~repro.shard.CounterShardMap.begin_batch`), amortizing the
  Theta(k) cost across the window — the paper's own combining idea,
  applied at the service boundary.

The trial drives the same Zipf-skewed keyed workload at two services:
a **baseline** with one shard and ``batch_max=1`` (every increment
pays a full traversal, serialized — the single-counter regime) and a
**sharded** configuration (4 shards, batching) reached through a
fault-injecting :class:`~repro.serve.ChaosProxy` with idempotent
retries.  Acceptance: sharded goodput is at least 3x the baseline's
despite the injected chaos, every key's final value equals exactly its
unique committed request ids (checked live against the shard map *and*
offline by replaying the run's recorded fixture bundle with
``repro replay``).

The same trial is recorded in wall-clock numbers by the ``sharding``
grid of ``BENCH_simulator.json``.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.base import ExperimentResult, make_table
from repro.serve import (
    ChaosProxy,
    KeyedCounterService,
    KeyedLoadResult,
    ResilienceConfig,
    RetryPolicy,
    parse_chaos_spec,
    run_keyed_load,
)
from repro.shard import replay_bundle

E27_CHAOS_PLAN = "delay=0.001@0.2,trunc=4@0.08,reset@0.12"
"""The canonical E27 fault mix: per-chunk delays, truncated answers
(the increment commits but the reply is cut short — the retry must
recover the committed value through the dedup ledger) and connection
resets.  Deliberately no blackholes or stalls: E27's claim is a
goodput *ratio*, so the chaos must be survivable within the retry
budget rather than open-ended."""


@dataclass(frozen=True, slots=True)
class ShardingTrial:
    """One baseline-vs-sharded trial against live keyed services.

    Attributes:
        spec: canonical counter spec backing every shard pool.
        n: processors per shard pool.
        shards: shard count of the sharded phase.
        batch_max: combining window of the sharded phase.
        keys: key population of the Zipf workload.
        zipf: skew of the key popularity distribution.
        rate: offered load of both phases (ops/second, open loop).
        chaos_plan: canonical chaos spec injected in the sharded phase.
        retry: client retry policy of the sharded phase.
        baseline: load result of the 1-shard, ``batch_max=1`` phase.
        sharded: load result of the sharded phase through the proxy.
        baseline_stats: the baseline service's final ``stats()``.
        sharded_stats: the sharded service's final ``stats()``.
        snapshot: the sharded keyspace's final per-key values, read
            from the shard map after the load completed.
        proxy_stats: the chaos proxy's injection counters.
        replay_ops: operations re-verified by replaying the sharded
            phase's fixture bundle offline.
        replay_summary: the replay report's verdict line.
    """

    spec: str
    n: int
    shards: int
    batch_max: int
    keys: int
    zipf: float
    rate: float
    chaos_plan: str
    retry: RetryPolicy
    baseline: KeyedLoadResult
    sharded: KeyedLoadResult
    baseline_stats: dict
    sharded_stats: dict
    snapshot: dict
    proxy_stats: dict
    replay_ops: int
    replay_summary: str

    @property
    def goodput_ratio(self) -> float:
        """Sharded-phase throughput over baseline-phase throughput."""
        return self.sharded.throughput / self.baseline.throughput

    def exactness_failures(self) -> list[str]:
        """Keys whose final value is not exactly its committed rids.

        Every sharded-phase request carries a unique request id and
        every request completed, so key ``k``'s final value must equal
        the number of requests that targeted ``k`` — and the values
        those requests observed must be the distinct consecutive run
        ``0..value-1`` (no lost increment, no doubled one).
        """
        failures = []
        for key, values in sorted(self.sharded.key_values.items()):
            if self.snapshot.get(key) != len(values):
                failures.append(key)
        failures.extend(
            key
            for key in self.sharded.exactness_violations()
            if key not in failures
        )
        return failures


async def _run_phase(
    spec: str,
    n: int,
    *,
    shards: int,
    batch_max: int,
    ops: int,
    rate: float,
    keys: int,
    zipf: float,
    time_scale: float,
    seed: int,
    chaos_plan: str | None,
    retry: RetryPolicy | None,
    attempt_timeout: float | None,
    fixture_dir: str | None,
) -> tuple[KeyedLoadResult, dict, dict, dict]:
    """One phase: serve, (optionally) proxy, load, snapshot, stop."""
    service = KeyedCounterService(
        spec,
        n,
        port=0,
        shards=shards,
        batch_max=batch_max,
        seed=seed,
        time_scale=time_scale,
        trace_level="LOADS",
        resilience=ResilienceConfig(max_backlog=None),
        fixture_dir=fixture_dir,
    )
    await service.start()
    proxy = None
    target_port = service.port
    if chaos_plan is not None:
        proxy = ChaosProxy(
            "127.0.0.1",
            service.port,
            plan=parse_chaos_spec(chaos_plan, seed=seed),
        )
        await proxy.start()
        target_port = proxy.port
    try:
        result = await run_keyed_load(
            "127.0.0.1",
            target_port,
            ops,
            rate,
            keys=keys,
            zipf=zipf,
            seed=seed,
            retry=retry,
            attempt_timeout=attempt_timeout,
            rid_prefix=f"e27s{seed}",
        )
        snapshot = service.map.snapshot()
        stats = service.stats()
    finally:
        if proxy is not None:
            await proxy.stop()
        await service.stop()
    proxy_stats = dict(proxy.stats) if proxy is not None else {}
    return result, stats, snapshot, proxy_stats


def run_sharding_trial(
    spec: str = "central",
    n: int = 4,
    ops: int = 320,
    rate: float = 2000.0,
    keys: int = 48,
    zipf: float = 1.1,
    shards: int = 4,
    batch_max: int = 32,
    time_scale: float = 0.003,
    chaos_plan: str = E27_CHAOS_PLAN,
    seed: int = 0,
    retry: RetryPolicy | None = None,
    attempt_timeout: float = 0.1,
    keep_bundle: str | None = None,
) -> ShardingTrial:
    """Run the E27 trial: single-counter baseline, then sharded + chaos.

    Phase 1 drives *ops* Zipf-keyed increments at one shard with
    ``batch_max=1`` — every increment pays one serialized traversal,
    the regime the paper's bound pins.  Phase 2 drives the same
    workload at *shards* shards with batch combining, through a chaos
    proxy with idempotent retries, recording a fixture bundle that is
    then replayed and verified offline.  Shared by :func:`run_e27`,
    the ``sharding`` benchmark grid and the test suite.

    Pass *keep_bundle* to write the sharded phase's fixture bundle to
    a persistent directory instead of a temp dir.
    """
    if retry is None:
        retry = RetryPolicy(attempts=12, base_delay=0.005, max_delay=0.05)
    scratch = keep_bundle or tempfile.mkdtemp(prefix="e27-bundle-")
    bundle_dir = str(Path(scratch))

    async def run_both():
        baseline = await _run_phase(
            spec,
            n,
            shards=1,
            batch_max=1,
            ops=ops,
            rate=rate,
            keys=keys,
            zipf=zipf,
            time_scale=time_scale,
            seed=seed,
            chaos_plan=None,
            retry=None,
            attempt_timeout=None,
            fixture_dir=None,
        )
        sharded = await _run_phase(
            spec,
            n,
            shards=shards,
            batch_max=batch_max,
            ops=ops,
            rate=rate,
            keys=keys,
            zipf=zipf,
            time_scale=time_scale,
            seed=seed + 1,
            chaos_plan=chaos_plan,
            retry=retry,
            attempt_timeout=attempt_timeout,
            fixture_dir=bundle_dir,
        )
        return baseline, sharded

    try:
        baseline_phase, sharded_phase = asyncio.run(run_both())
        baseline, baseline_stats, _, _ = baseline_phase
        sharded, sharded_stats, snapshot, proxy_stats = sharded_phase
        report = replay_bundle(bundle_dir)
        return ShardingTrial(
            spec=sharded_stats["spec"],
            n=n,
            shards=shards,
            batch_max=batch_max,
            keys=keys,
            zipf=zipf,
            rate=rate,
            chaos_plan=parse_chaos_spec(chaos_plan, seed=seed).canonical(),
            retry=retry,
            baseline=baseline,
            sharded=sharded,
            baseline_stats=baseline_stats,
            sharded_stats=sharded_stats,
            snapshot=snapshot,
            proxy_stats=proxy_stats,
            replay_ops=report.ops,
            replay_summary=report.summary(),
        )
    finally:
        if keep_bundle is None:
            shutil.rmtree(scratch, ignore_errors=True)


def run_e27(
    ops: int = 320,
    goodput_factor: float = 3.0,
    seed: int = 0,
) -> ExperimentResult:
    """E27: sharded batched goodput >= 3x the single-counter baseline."""
    trial = run_sharding_trial(ops=ops, seed=seed)
    baseline, sharded = trial.baseline, trial.sharded

    assert baseline.completed == baseline.sent and baseline.errors == 0, (
        f"E27: baseline phase lost requests "
        f"({baseline.completed}/{baseline.sent}, {baseline.errors} errors)"
    )
    assert sharded.completed == sharded.sent, (
        f"E27: sharded phase lost requests under chaos "
        f"({sharded.completed}/{sharded.sent}; "
        f"errors {dict(sorted(sharded.error_counts.items()))})"
    )
    failures = trial.exactness_failures()
    assert not failures, (
        f"E27: per-key exactness violated on {failures} "
        f"(snapshot: { {k: trial.snapshot.get(k) for k in failures} })"
    )
    assert trial.goodput_ratio >= goodput_factor, (
        f"E27: sharding gained only {trial.goodput_ratio:.2f}x "
        f"({sharded.throughput:.0f}/s over {baseline.throughput:.0f}/s); "
        f"need >= {goodput_factor:g}x"
    )
    assert trial.replay_ops == sharded.completed, (
        f"E27: replay verified {trial.replay_ops} ops, the sharded "
        f"phase committed {sharded.completed}"
    )

    def row(phase: str, run: KeyedLoadResult, config: str) -> list[str]:
        return [
            phase,
            config,
            f"{run.completed}/{run.sent}",
            f"{run.throughput:.0f}",
            f"{run.p50 * 1000:.1f}",
            f"{run.p99 * 1000:.1f}",
            f"{run.retries}",
        ]

    return ExperimentResult(
        experiment_id="E27",
        claim="the paper's bound is per counter: hashing keys onto "
        "independent shard pools and amortizing each shard's Theta(k) "
        "traversal over combined batches multiplies keyed goodput by "
        f">= {goodput_factor:g}x under Zipf({trial.zipf:g}) skew and "
        "injected chaos, with every key's value exactly its unique "
        "committed request ids — live and under offline replay",
        tables=(
            make_table(
                f"E27: {trial.spec} pools of n={trial.n}, {ops} keyed "
                f"increments per phase at {trial.rate:g}/s offered, "
                f"{trial.keys} keys, Zipf({trial.zipf:g}); chaos "
                f"{trial.chaos_plan}, {trial.retry.attempts} attempts",
                [
                    "phase",
                    "config",
                    "ok",
                    "goodput/s",
                    "p50 ms",
                    "p99 ms",
                    "retries",
                ],
                [
                    row("single counter", baseline, "1 shard, batch=1"),
                    row(
                        "sharded + chaos",
                        sharded,
                        f"{trial.shards} shards, "
                        f"batch<={trial.batch_max}",
                    ),
                ],
                note=(
                    f"Goodput ratio {trial.goodput_ratio:.1f}x "
                    f"(floor {goodput_factor:g}x) despite the sharded "
                    "phase running through the chaos proxy\n(injected "
                    f"{trial.proxy_stats.get('resets', 0)} resets, "
                    f"{trial.proxy_stats.get('truncations', 0)} "
                    "truncated answers, "
                    f"{trial.proxy_stats.get('delays', 0)} delays) "
                    "while the baseline ran clean.\nExactness asserted "
                    f"per key over {len(trial.snapshot)} keys: final "
                    "value == unique committed request ids, values a "
                    "dense run.\nOffline: "
                    + trial.replay_summary.split(": ", 1)[1]
                ),
            ),
        ),
    )
