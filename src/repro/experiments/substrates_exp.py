"""E8, E11, E14, E15: the substrates and measures around the core result.

* E8: quorum systems — loads, floors, and the quorum counter.
* E11: the §2 remark — the O(k) structure hosts any sequentially
  dependent ADT.
* E14: O(log n)-bit messages, measured.
* E15: counting vs linearizable counting (HSW).
"""

from __future__ import annotations

import math

from repro.analysis import (
    BitLoadAnalyzer,
    check_linearizable_counting,
    run_staggered_timed,
)
from repro.counters import BitonicCountingNetwork
from repro.counters.counting_network import step_property_holds
from repro.datatypes import (
    DELETE_MIN,
    FLIP,
    INSERT,
    WRITE_MAX,
    DistributedFlipBit,
    DistributedMaxRegister,
    DistributedPriorityQueue,
    run_ops,
)
from repro.experiments.base import ExperimentResult, make_table
from repro.registry import parse_spec
from repro.quorum import (
    CrumblingWall,
    MaekawaGrid,
    ProjectivePlaneQuorum,
    QuorumCounter,
    RotatingMajorityQuorum,
    SingletonQuorum,
    TreePathQuorum,
    WheelQuorum,
    fault_tolerance,
    naor_wool_floor,
    optimal_load,
    probe_complexity,
    uniform_load,
)
from repro.sim.network import Network
from repro.sim.policies import DeliveryPolicy, RandomDelay
from repro.workloads import one_shot, run_sequence


def run_e8(n: int = 64, fpp_order: int = 7) -> ExperimentResult:
    """E8: quorum systems and the quorum counter."""
    systems = [
        ("singleton", SingletonQuorum(n)),
        ("projective-plane*", ProjectivePlaneQuorum(fpp_order)),
        ("majority", RotatingMajorityQuorum(n)),
        ("maekawa-grid", MaekawaGrid(n)),
        ("tree-paths", TreePathQuorum(n)),
        ("wheel", WheelQuorum(n)),
        ("crumbling-wall", CrumblingWall(n)),
    ]
    analysis_rows = []
    counter_rows = []
    for name, system in systems:
        analysis_rows.append(
            [
                name,
                system.quorum_count(),
                system.max_quorum_size(),
                f"{uniform_load(system).system_load:.3f}",
                f"{optimal_load(system).system_load:.3f}",
                f"{naor_wool_floor(system):.3f}",
                "yes" if system.verify_intersection() else "NO",
            ]
        )
        network = Network()
        counter = QuorumCounter(network, system.n, system)
        result = run_sequence(counter, one_shot(system.n))
        counter_rows.append(
            [
                name,
                result.bottleneck_load(),
                f"{result.average_messages_per_op():.1f}",
                result.total_messages,
            ]
        )
    small_systems = [
        ("singleton", SingletonQuorum(7)),
        ("tree-paths", TreePathQuorum(7)),
        ("wheel", WheelQuorum(7)),
        ("fano-plane", ProjectivePlaneQuorum(2)),
        ("majority", RotatingMajorityQuorum(9)),
        ("maekawa-grid", MaekawaGrid(9)),
    ]
    structure_rows = [
        [
            name,
            system.n,
            system.max_quorum_size(),
            fault_tolerance(system),
            probe_complexity(system),
        ]
        for name, system in small_systems
    ]
    return ExperimentResult(
        experiment_id="E8",
        claim="quorum intersection structures realize the Hot Spot "
        "Lemma's trade-offs; none approaches O(k)",
        tables=(
            make_table(
                f"E8a: quorum systems over n={n} (load = hottest pick "
                "probability; * = n set by the plane's order)",
                [
                    "system", "quorums", "max |Q|", "uniform load",
                    "optimal load", "NW floor", "intersects",
                ],
                analysis_rows,
            ),
            make_table(
                "E8b: the quorum counter's measured bottleneck (one-shot)",
                ["system", "counter m_b", "msgs/op", "total msgs"],
                counter_rows,
            ),
            make_table(
                "E8c: structural costs on small instances (exact search)",
                [
                    "system", "n", "max |Q|", "fault tolerance",
                    "probe complexity",
                ],
                structure_rows,
                note=(
                    "Peleg–Wool's snoop theme, reproduced exactly: the "
                    "wheel's quorums have size 2\nbut certifying "
                    "availability can take n probes."
                ),
            ),
        ),
    )


def run_e11(ks: tuple[int, ...] = (3, 4)) -> ExperimentResult:
    """E11: ADTs on the unchanged tree share the counter's bottleneck."""
    rows = []
    for k in ks:
        n = k ** (k + 1)
        network = Network()
        counter = parse_spec("ww-tree").build(network, n)
        result = run_sequence(counter, one_shot(n))
        rows.append(["counter (inc)", k, n, result.bottleneck_load(),
                     f"{result.bottleneck_load() / k:.1f}"])
        network = Network()
        bit = DistributedFlipBit(network, n)
        adt = run_ops(bit, [(pid, FLIP) for pid in one_shot(n)])
        rows.append(["flip-bit (flip)", k, n, adt.bottleneck_load(),
                     f"{adt.bottleneck_load() / k:.1f}"])
        network = Network()
        queue = DistributedPriorityQueue(network, n)
        half = n // 2
        ops = [(pid, (INSERT, n - pid)) for pid in range(1, half + 1)]
        ops += [(pid, (DELETE_MIN,)) for pid in range(half + 1, n + 1)]
        adt = run_ops(queue, ops)
        rows.append(["priority-queue (ins/delmin)", k, n, adt.bottleneck_load(),
                     f"{adt.bottleneck_load() / k:.1f}"])
        network = Network()
        register = DistributedMaxRegister(network, n)
        adt = run_ops(register, [(pid, (WRITE_MAX, pid)) for pid in one_shot(n)])
        rows.append(["max-register (write_max)", k, n, adt.bottleneck_load(),
                     f"{adt.bottleneck_load() / k:.1f}"])
    return ExperimentResult(
        experiment_id="E11",
        claim="the O(k) bound is a property of the communication "
        "structure, not of counting",
        tables=(
            make_table(
                "E11: one-shot bottleneck of sequentially dependent ADTs",
                ["structure (op)", "k", "n", "bottleneck m_b", "m_b / k"],
                rows,
            ),
        ),
    )


def run_e14(ns: tuple[int, ...] = (81, 1024)) -> ExperimentResult:
    """E14: message sizes and bit bottlenecks."""
    specs = [
        "central",
        "static-tree",
        "ww-tree",
        "combining-tree",
        "counting-network",
        "diffracting-tree",
        "arrow",
    ]
    rows = []
    for name in specs:
        ref = parse_spec(name)
        cells: list[object] = [name]
        for n in ns:
            network = Network()
            analyzer = BitLoadAnalyzer(n)
            analyzer.attach(network)
            counter = ref.build(network, n)
            run_sequence(counter, one_shot(n))
            cells.append(analyzer.max_message_bits)
            cells.append(analyzer.bit_bottleneck()[1])
        cells.append(f"{cells[3] / cells[1]:.2f}x")
        rows.append(cells)
    headers = ["counter"]
    for n in ns:
        headers += [f"max msg bits @{n}", f"bit m_b @{n}"]
    headers.append("msg-size growth")
    return ExperimentResult(
        experiment_id="E14",
        claim="all messages stay O(log n) bits; nobody smuggles load "
        "into bulk",
        tables=(
            make_table(
                "E14: message sizes and bit bottlenecks (one-shot workload)",
                headers,
                rows,
                note=f"log2({ns[0]}) = {math.log2(ns[0]):.1f}, "
                f"log2({ns[-1]}) = {math.log2(ns[-1]):.1f}",
            ),
        ),
    )


class _StallFirstToken(DeliveryPolicy):
    """Scripted adversary for E15's deterministic counterexample."""

    def delay(self, message):
        if (
            message.kind == "cn-token"
            and message.payload.get("origin") == 1
            and message.payload.get("layer") == 1
        ):
            return 100.0
        return 1.0


def run_e15(scan_n: int = 16, seeds: int = 10) -> ExperimentResult:
    """E15: the HSW counterexample plus a statistical scan."""
    network = Network(policy=_StallFirstToken())
    counter = BitonicCountingNetwork(network, 4, width=2)
    ops = run_staggered_timed(counter, [1, 2, 3], gap=5.0)
    report = check_linearizable_counting(ops)
    example_rows = [
        [op.op_index, op.initiator, f"{op.request_time:g}",
         f"{op.response_time:g}", op.value]
        for op in ops
    ]
    note = (
        f"counts correctly: {sorted(op.value for op in ops) == [0, 1, 2]}; "
        f"linearizable: {report.linearizable}\n"
        + "\n".join(f"  inversion: {inv}" for inv in report.inversions)
    )
    scan_rows = []
    for name, spec in (
        ("central", "central"),
        ("counting-network w=4", "counting-network?width=4"),
    ):
        ref = parse_spec(spec)
        linearizable = 0
        precedence = 0
        steps_ok = True
        for seed in range(seeds):
            net = Network(policy=RandomDelay(seed=seed, low=0.5, high=20.0))
            c = ref.build(net, scan_n)
            timed = run_staggered_timed(c, list(range(1, scan_n + 1)), gap=2.0)
            rep = check_linearizable_counting(timed)
            linearizable += int(rep.linearizable)
            precedence += rep.precedence_pairs
            if isinstance(c, BitonicCountingNetwork):
                steps_ok = steps_ok and step_property_holds(c.exit_counts)
        scan_rows.append(
            [name, f"{linearizable}/{seeds}", precedence,
             "yes" if steps_ok else "NO"]
        )
    return ExperimentResult(
        experiment_id="E15",
        claim="counting networks count but are not linearizable (HSW)",
        tables=(
            make_table(
                "E15a: deterministic HSW counterexample on Bitonic[2]",
                ["op", "initiator", "request t", "response t", "value"],
                example_rows,
                note=note,
            ),
            make_table(
                f"E15b: staggered concurrent runs (n={scan_n}, "
                f"{seeds} random-delay seeds)",
                ["counter", "linearizable runs", "precedence pairs",
                 "step property"],
                scan_rows,
            ),
        ),
    )
