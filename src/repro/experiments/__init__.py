"""The experiment suite as a programmatic API.

Every experiment of DESIGN.md's index is a function returning a
structured :class:`~repro.experiments.base.ExperimentResult`; the
benchmark files, the CLI (``python -m repro experiment E4``) and any
notebook all call the same code.  ``REGISTRY`` maps experiment ids to
their runners (with default parameters).
"""

from typing import Callable

from repro.experiments.base import ExperimentResult, ExperimentTable, make_table
from repro.experiments.byzantine_exp import run_e25
from repro.experiments.comparisons_exp import run_e6, run_e7, run_e13, run_e17
from repro.experiments.constructions import run_e1, run_e2
from repro.experiments.lowerbound_exp import run_e3, run_e16
from repro.experiments.recovery_exp import run_e22, run_e23
from repro.experiments.resilience_exp import run_e26
from repro.experiments.robustness_exp import run_e18, run_e19, run_e20, run_e21
from repro.experiments.serving_exp import run_e24
from repro.experiments.sharding_exp import run_e27
from repro.experiments.substrates_exp import run_e8, run_e11, run_e14, run_e15
from repro.experiments.treecounter_exp import run_e4, run_e5, run_e9, run_e10, run_e12

REGISTRY: dict[str, Callable[[], ExperimentResult]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
    "E17": run_e17,
    "E18": run_e18,
    "E19": run_e19,
    "E20": run_e20,
    "E21": run_e21,
    "E22": run_e22,
    "E23": run_e23,
    "E24": run_e24,
    "E25": run_e25,
    "E26": run_e26,
    "E27": run_e27,
}
"""Experiment id → zero-argument runner with the canonical parameters."""

__all__ = [
    "ExperimentResult",
    "ExperimentTable",
    "REGISTRY",
    "make_table",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9",
    "run_e10",
    "run_e11",
    "run_e12",
    "run_e13",
    "run_e14",
    "run_e15",
    "run_e16",
    "run_e17",
    "run_e18",
    "run_e19",
    "run_e20",
    "run_e21",
    "run_e22",
    "run_e23",
    "run_e24",
    "run_e25",
    "run_e26",
    "run_e27",
]
