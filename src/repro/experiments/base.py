"""Experiment results as structured data.

Every experiment in the reproduction (DESIGN.md's E-index) is a library
function returning an :class:`ExperimentResult`: structured rows plus
presentation metadata.  Benchmarks, the CLI and notebooks all consume
the same functions — the ASCII table is a *view*, not the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.report import format_table


@dataclass(frozen=True, slots=True)
class ExperimentTable:
    """One table of an experiment: headers, rows, and an optional note."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    note: str = ""

    def to_text(self) -> str:
        """Render as the canonical ASCII table."""
        text = format_table(list(self.headers), [list(r) for r in self.rows],
                            title=self.title)
        if self.note:
            text += "\n" + self.note
        return text

    def column(self, header: str) -> list[Any]:
        """One column by header name (for assertions and plots)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


@dataclass(frozen=True, slots=True)
class ExperimentResult:
    """A complete experiment: id, claim, and one or more tables."""

    experiment_id: str
    claim: str
    tables: tuple[ExperimentTable, ...] = field(default_factory=tuple)

    def to_text(self) -> str:
        """Render every table, separated by blank lines."""
        return "\n\n".join(table.to_text() for table in self.tables)

    def table(self, index: int = 0) -> ExperimentTable:
        """The *index*-th table."""
        return self.tables[index]


def make_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> ExperimentTable:
    """Convenience constructor freezing rows into tuples."""
    return ExperimentTable(
        title=title,
        headers=tuple(headers),
        rows=tuple(tuple(row) for row in rows),
        note=note,
    )
