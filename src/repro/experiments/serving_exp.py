"""E24: open-loop saturation — latency vs offered load, knee per family.

Closed-loop driving (every client immediately re-arms) can never show a
counter falling behind: clients slow down with the service.  E24 drives
every concurrent-capable counter family with *open-loop* Poisson
arrivals — injection times fixed before the run — and sweeps the offered
rate.  Below capacity, mean latency sits at the unloaded service time;
past it, the backlog grows for the whole run and latency climbs without
bound.  The experiment reports the detected saturation knee
(:func:`~repro.analysis.latency.detect_knee`) per family, the
Little's-law capacity prediction it tracks, and the hotspot message
count per operation at the top rate — the paper's bottleneck measure,
which separates the families even where their time capacity is similar.

The same knee is measured in *wall-clock* time against the live TCP
service by the ``serving`` grid of ``BENCH_simulator.json``.
"""

from __future__ import annotations

from repro.analysis.latency import detect_knee
from repro.experiments.base import ExperimentResult, make_table
from repro.registry import RunSession

E24_FAMILIES = (
    "central",
    "static-tree",
    "ww-tree?interval_mode=wrap",
    "combining-tree",
    "counting-network",
    "diffracting-tree",
)
"""Every concurrent-capable family (ww-tree in wrap mode: open-loop
arrivals reuse client ids, which strict mode forbids by design)."""

E24_RATES = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
"""The swept offered rates (operations per unit of simulated time)."""


def run_e24(
    n: int = 16,
    ops: int = 192,
    rates: tuple[float, ...] = E24_RATES,
    turnaround: float = 1.0,
) -> ExperimentResult:
    """E24: saturation knees under open-loop load, per counter family."""
    rows = []
    for spec in E24_FAMILIES:
        means: list[float] = []
        top = None
        for rate in rates:
            session = RunSession(spec, n)
            result = session.run_open_loop(
                ops=ops, rate=rate, turnaround=turnaround
            )
            means.append(result.mean_latency)
            top = result
        assert top is not None
        knee = detect_knee(list(rates), means)
        assert knee is not None, (
            f"E24 {spec}: no knee within rates {rates}; the top rate "
            "does not saturate this configuration"
        )
        unloaded = means[0]
        capacity = n / (unloaded + turnaround)
        hotspot = max(top.trace.loads().values())
        rows.append(
            [
                spec,
                f"{unloaded:.2f}",
                f"{capacity:.1f}",
                f"{knee:g}",
                f"{means[-1]:.1f}",
                f"{hotspot / ops:.2f}",
            ]
        )
    return ExperimentResult(
        experiment_id="E24",
        claim="open-loop arrivals make counter capacity visible as a "
        "latency knee at the Little's-law rate n/(S+turnaround), while "
        "the hotspot message count per operation — the paper's bottleneck "
        "measure — still separates the families",
        tables=(
            make_table(
                f"E24: open-loop saturation (n={n}, {ops} Poisson arrivals "
                f"per rate, turnaround={turnaround:g}, rates "
                f"{rates[0]:g}..{rates[-1]:g})",
                [
                    "counter",
                    "unloaded latency S",
                    "capacity n/(S+1)",
                    "knee rate",
                    "latency @ top rate",
                    "hotspot msgs/op",
                ],
                rows,
                note=(
                    "The knee is the first swept rate whose mean latency "
                    "exceeds 3x the lowest rate's,\nso it lands one or two "
                    "grid steps past the capacity estimate — degradation "
                    "at\ncapacity is gradual, divergence beyond it is not.  "
                    "In the uniform-delay model\nmessage *processing* is "
                    "free, so time capacity is client-bound and similar\n"
                    "across families; the hotspot column is where they "
                    "differ structurally: the\nstatic relay root funnels "
                    ">4 messages per op, central ~1.7 at its server, "
                    "while\ncombining keeps the maximum under 1 — the "
                    "bottleneck argument in open-loop form.\nThe serving "
                    "grid of BENCH_simulator.json reproduces the same "
                    "knee in wall-clock\ntime against the live TCP "
                    "service."
                ),
            ),
        ),
    )
