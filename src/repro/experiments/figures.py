"""The reproduction's figures: SVG charts of the headline experiments.

Three charts distill the measured story:

* **F1** — the Bottleneck Theorem: measured m_b vs k, with the c·k
  reference line (from E4).
* **F2** — the E6 crossover: central vs tree bottleneck over n (log-log)
  with the k(n) lower-bound curve.
* **F3** — the E7 sweep: every counter's bottleneck over n (log-log).

``python -m repro figures`` writes them under ``benchmarks/figures/``.
"""

from __future__ import annotations

import pathlib

from repro.analysis.svgplot import LineChart
from repro.core import TreeCounter
from repro.counters import (
    BitonicCountingNetwork,
    CentralCounter,
    CombiningTreeCounter,
    DiffractingTreeCounter,
    StaticTreeCounter,
)
from repro.lowerbound import lower_bound_k
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence


def _bottleneck(factory, n: int) -> int:
    network = Network()
    counter = factory(network, n)
    return run_sequence(counter, one_shot(n)).bottleneck_load()


def figure_bottleneck_vs_k(ks: tuple[int, ...] = (2, 3, 4, 5)) -> LineChart:
    """F1: measured bottleneck against k, with a fitted c·k line."""
    measured = [(k, _bottleneck(TreeCounter, k ** (k + 1))) for k in ks]
    constant = sum(load / k for k, load in measured) / len(measured)
    chart = LineChart(
        title="Bottleneck Theorem: m_b grows with k, not n",
        x_label="k  (n = k^(k+1): 8 .. 15625)",
        y_label="bottleneck load m_b (messages)",
    )
    chart.add("measured ww-tree", measured)
    chart.add(
        f"{constant:.1f}·k reference",
        [(k, constant * k) for k in ks],
        dashed=True,
    )
    return chart


def figure_crossover(
    ns: tuple[int, ...] = (8, 27, 81, 256, 1024, 3125)
) -> LineChart:
    """F2: central vs tree bottleneck over n, log-log, with k(n)."""
    chart = LineChart(
        title="Message-optimal vs bottleneck-optimal (E6)",
        x_label="n (processors, log)",
        y_label="bottleneck load m_b (log)",
        log_x=True,
        log_y=True,
    )
    chart.add("central (2(n-1))", [(n, _bottleneck(CentralCounter, n)) for n in ns])
    chart.add("ww-tree", [(n, _bottleneck(TreeCounter, n)) for n in ns])
    chart.add(
        "k(n) lower bound",
        [(n, lower_bound_k(n)) for n in ns],
        dashed=True,
    )
    return chart


def figure_baseline_sweep(
    ns: tuple[int, ...] = (64, 256, 1024)
) -> LineChart:
    """F3: every counter's sequential bottleneck over n, log-log."""
    factories = [
        ("central", CentralCounter),
        ("static-tree", StaticTreeCounter),
        ("combining-tree", CombiningTreeCounter),
        ("counting-network", BitonicCountingNetwork),
        ("diffracting-tree", DiffractingTreeCounter),
        ("ww-tree", TreeCounter),
    ]
    chart = LineChart(
        title="Sequential one-shot bottleneck, all counters (E7a)",
        x_label="n (processors, log)",
        y_label="bottleneck load m_b (log)",
        log_x=True,
        log_y=True,
    )
    for name, factory in factories:
        chart.add(name, [(n, _bottleneck(factory, n)) for n in ns])
    chart.add(
        "k(n) lower bound",
        [(n, lower_bound_k(n)) for n in ns],
        dashed=True,
    )
    return chart


def save_all_figures(directory) -> list[pathlib.Path]:
    """Generate and save every figure; returns the written paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, chart in (
        ("F1_bottleneck_vs_k.svg", figure_bottleneck_vs_k()),
        ("F2_crossover.svg", figure_crossover()),
        ("F3_baseline_sweep.svg", figure_baseline_sweep()),
    ):
        path = directory / name
        chart.save(path)
        written.append(path)
    return written
