"""The reproduction's figures: SVG charts of the headline experiments.

Three charts distill the measured story:

* **F1** — the Bottleneck Theorem: measured m_b vs k, with the c·k
  reference line (from E4).
* **F2** — the E6 crossover: central vs tree bottleneck over n (log-log)
  with the k(n) lower-bound curve.
* **F3** — the E7 sweep: every counter's bottleneck over n (log-log).

``python -m repro figures`` writes them under ``benchmarks/figures/``.
"""

from __future__ import annotations

import pathlib

from repro.analysis.svgplot import LineChart
from repro.lowerbound import lower_bound_k
from repro.workloads import SweepPoint, SweepRunner


def _bottlenecks(
    runner: SweepRunner | None, grid: list[tuple[str, int]]
) -> list[int]:
    """Bottleneck load of each ``(counter, n)`` grid point, in order."""
    if runner is None:
        runner = SweepRunner()
    return runner.bottlenecks(
        [SweepPoint(counter=name, n=n) for name, n in grid]
    )


def figure_bottleneck_vs_k(
    ks: tuple[int, ...] = (2, 3, 4, 5),
    runner: SweepRunner | None = None,
) -> LineChart:
    """F1: measured bottleneck against k, with a fitted c·k line."""
    loads = _bottlenecks(runner, [("ww-tree", k ** (k + 1)) for k in ks])
    measured = list(zip(ks, loads))
    constant = sum(load / k for k, load in measured) / len(measured)
    chart = LineChart(
        title="Bottleneck Theorem: m_b grows with k, not n",
        x_label="k  (n = k^(k+1): 8 .. 15625)",
        y_label="bottleneck load m_b (messages)",
    )
    chart.add("measured ww-tree", measured)
    chart.add(
        f"{constant:.1f}·k reference",
        [(k, constant * k) for k in ks],
        dashed=True,
    )
    return chart


def figure_crossover(
    ns: tuple[int, ...] = (8, 27, 81, 256, 1024, 3125),
    runner: SweepRunner | None = None,
) -> LineChart:
    """F2: central vs tree bottleneck over n, log-log, with k(n)."""
    chart = LineChart(
        title="Message-optimal vs bottleneck-optimal (E6)",
        x_label="n (processors, log)",
        y_label="bottleneck load m_b (log)",
        log_x=True,
        log_y=True,
    )
    counters = ("central", "ww-tree")
    loads = _bottlenecks(runner, [(c, n) for c in counters for n in ns])
    chart.add("central (2(n-1))", list(zip(ns, loads[: len(ns)])))
    chart.add("ww-tree", list(zip(ns, loads[len(ns) :])))
    chart.add(
        "k(n) lower bound",
        [(n, lower_bound_k(n)) for n in ns],
        dashed=True,
    )
    return chart


def figure_baseline_sweep(
    ns: tuple[int, ...] = (64, 256, 1024),
    runner: SweepRunner | None = None,
) -> LineChart:
    """F3: every counter's sequential bottleneck over n, log-log."""
    counters = (
        "central",
        "static-tree",
        "combining-tree",
        "counting-network",
        "diffracting-tree",
        "ww-tree",
    )
    chart = LineChart(
        title="Sequential one-shot bottleneck, all counters (E7a)",
        x_label="n (processors, log)",
        y_label="bottleneck load m_b (log)",
        log_x=True,
        log_y=True,
    )
    loads = _bottlenecks(runner, [(c, n) for c in counters for n in ns])
    for index, name in enumerate(counters):
        start = index * len(ns)
        chart.add(name, list(zip(ns, loads[start : start + len(ns)])))
    chart.add(
        "k(n) lower bound",
        [(n, lower_bound_k(n)) for n in ns],
        dashed=True,
    )
    return chart


def save_all_figures(
    directory, runner: SweepRunner | None = None
) -> list[pathlib.Path]:
    """Generate and save every figure; returns the written paths.

    All simulations run through *runner*, so a parallel
    :class:`~repro.workloads.SweepRunner` spreads figure generation over
    worker processes without changing a byte of the output.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, chart in (
        ("F1_bottleneck_vs_k.svg", figure_bottleneck_vs_k(runner=runner)),
        ("F2_crossover.svg", figure_crossover(runner=runner)),
        ("F3_baseline_sweep.svg", figure_baseline_sweep(runner=runner)),
    ):
        path = directory / name
        chart.save(path)
        written.append(path)
    return written
