"""E26: graceful degradation — goodput plateaus, exactly-once under chaos.

E24 and the ``serving`` benchmark grid locate the saturation knee the
paper guarantees; E26 drives the live TCP service *past* it — at a
multiple of the knee rate, through a fault-injecting proxy
(:class:`~repro.serve.ChaosProxy`) that resets, stalls, delays and
blackholes connections — and shows that the resilience layer turns
certain saturation into graceful degradation:

* **goodput plateaus** instead of collapsing: committed operations per
  second beyond the knee stay within a bounded factor of the knee-rate
  throughput, because bounded admission sheds excess load early
  (``ERR OVERLOADED``) instead of queueing it forever;
* **latency stays bounded**: client p99 never exceeds the retry
  policy's worst case (attempts x attempt timeout + backoff ceilings),
  because deadlines expire stuck operations instead of letting them
  wait out the backlog;
* **exactly-once arithmetic survives**: every request carries a
  client-supplied request id, retries attach to the original operation
  via the server's dedup ledger, and at the end the counter's value
  equals exactly the number of unique committed request ids — no lost
  increments, no doubled ones — even though connections were reset
  mid-request and answers were swallowed.

The same trial is recorded in wall-clock numbers by the ``resilience``
grid of ``BENCH_simulator.json``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.experiments.base import ExperimentResult, make_table
from repro.serve import (
    ChaosProxy,
    LoadResult,
    ResilienceConfig,
    RetryPolicy,
    parse_chaos_spec,
)
from repro.serve.server import CounterService

E26_CHAOS_PLAN = (
    "delay=0.002@0.2,stall=0.05@0.1,trunc=4@0.08,reset@0.15,blackhole@0.03"
)
"""The canonical E26 fault mix: per-chunk delays, a first-byte stall,
truncated answers (the op commits but the reply is lost — the retry
must attach to the committed original via the dedup ledger),
connection resets and fully blackholed connections."""

E26_KNEE_RATE = 600.0
"""Measured knee-rate throughput of central n=8 at time_scale=0.005
(the ``serving`` grid tops out near 600 committed ops/s)."""


@dataclass(frozen=True, slots=True)
class ResilienceTrial:
    """One baseline-vs-chaos trial against a live service.

    Attributes:
        spec: canonical counter spec served.
        n: client processors (max in-flight operations).
        knee_rate: offered rate of the baseline phase (ops/second).
        overload_rate: offered rate of the chaos phase.
        chaos_plan: canonical chaos spec injected between generator and
            service during the overload phase.
        deadline: per-request deadline carried by chaos-phase requests.
        retry: client retry policy of the chaos phase.
        attempt_timeout: client-side bound on one attempt's round-trip.
        baseline: load result at the knee, direct connection, no chaos.
        chaos: load result at the overload rate through the proxy.
        probe_value: value returned by one final direct increment —
            the counter's state after both phases.
        rid_committed: unique request ids whose operation committed.
        stats: the service's final ``stats()`` snapshot.
        proxy_stats: the chaos proxy's injection counters.
    """

    spec: str
    n: int
    knee_rate: float
    overload_rate: float
    chaos_plan: str
    deadline: float
    retry: RetryPolicy
    attempt_timeout: float
    baseline: LoadResult
    chaos: LoadResult
    probe_value: int
    rid_committed: int
    stats: dict
    proxy_stats: dict

    @property
    def chaos_goodput(self) -> float:
        """Committed chaos-phase operations per second of chaos wall time.

        Commits are counted server-side (they include operations whose
        client answer was lost to a reset and that were then confirmed
        by an idempotent retry), so this is goodput through the chaos,
        not merely answered requests.
        """
        commits = self.probe_value - self.baseline.completed
        return commits / self.chaos.duration

    @property
    def worst_case_latency(self) -> float:
        """The client-side p99 bound: retries x timeout + backoff."""
        return self.retry.worst_case_latency(self.attempt_timeout)

    @property
    def exactly_once(self) -> bool:
        """Counter value == baseline commits + unique committed rids."""
        return (
            self.probe_value == self.baseline.completed + self.rid_committed
            and self.probe_value == self.stats["served"]
            and len(set(self.chaos.values)) == len(self.chaos.values)
        )


async def _run_trial(
    spec: str,
    n: int,
    ops: int,
    time_scale: float,
    knee_rate: float,
    overload_factor: float,
    chaos_plan: str,
    seed: int,
    deadline: float,
    retry: RetryPolicy,
    max_backlog: int,
) -> ResilienceTrial:
    from repro.serve import run_load

    service = CounterService(
        spec,
        n,
        port=0,
        time_scale=time_scale,
        trace_level="LOADS",
        resilience=ResilienceConfig(max_backlog=max_backlog),
    )
    await service.start()
    plan = parse_chaos_spec(chaos_plan, seed=seed)
    proxy = ChaosProxy("127.0.0.1", service.port, plan=plan)
    await proxy.start()
    attempt_timeout = 1.5 * deadline + 0.1
    try:
        baseline = await run_load(
            "127.0.0.1", service.port, ops, knee_rate, seed=seed
        )
        overload_rate = knee_rate * overload_factor
        chaos = await run_load(
            "127.0.0.1",
            proxy.port,
            ops,
            overload_rate,
            seed=seed + 1,
            retry=retry,
            deadline=deadline,
            attempt_timeout=attempt_timeout,
            rid_prefix=f"e26s{seed}",
        )
        # let answer-lost-but-committed operations finish their commits
        # before reading the final state
        await asyncio.sleep(5 * time_scale + 0.05)
        stats = service.stats()
        probe_value = await service.inc()
    finally:
        await proxy.stop()
        await service.stop()
    return ResilienceTrial(
        spec=service.spec,
        n=n,
        knee_rate=knee_rate,
        overload_rate=overload_rate,
        chaos_plan=plan.canonical(),
        deadline=deadline,
        retry=retry,
        attempt_timeout=attempt_timeout,
        baseline=baseline,
        chaos=chaos,
        probe_value=probe_value,
        rid_committed=stats["rid_committed"],
        stats=stats,
        proxy_stats=dict(proxy.stats),
    )


def run_resilience_trial(
    spec: str = "central",
    n: int = 8,
    ops: int = 960,
    time_scale: float = 0.005,
    knee_rate: float = E26_KNEE_RATE,
    overload_factor: float = 2.0,
    chaos_plan: str = E26_CHAOS_PLAN,
    seed: int = 0,
    deadline: float = 0.15,
    retry: RetryPolicy | None = None,
    max_backlog: int = 32,
) -> ResilienceTrial:
    """Run the E26 trial: knee-rate baseline, then overload under chaos.

    Phase 1 drives *ops* increments at *knee_rate* straight at the
    service; phase 2 drives *ops* more at ``knee_rate *
    overload_factor`` through a :class:`~repro.serve.ChaosProxy`
    running *chaos_plan*, with per-request deadlines and idempotent
    retries.  A final direct increment probes the counter's value.
    Shared by :func:`run_e26`, the ``resilience`` benchmark grid and
    the test suite.
    """
    if retry is None:
        # deep attempts with a tight backoff cap: under sustained
        # overload the point is to keep the bounded queue fed, not to
        # spread retries out — shed answers are cheap, idle slots are
        # not
        retry = RetryPolicy(attempts=10, base_delay=0.005, max_delay=0.05)
    return asyncio.run(
        _run_trial(
            spec,
            n,
            ops,
            time_scale,
            knee_rate,
            overload_factor,
            chaos_plan,
            seed,
            deadline,
            retry,
            max_backlog,
        )
    )


def run_e26(
    ops: int = 960,
    goodput_floor: float = 0.75,
    seed: int = 0,
) -> ExperimentResult:
    """E26: graceful degradation past the knee under injected chaos."""
    trial = run_resilience_trial(ops=ops, seed=seed)
    baseline, chaos = trial.baseline, trial.chaos

    assert trial.exactly_once, (
        f"E26: counter value {trial.probe_value} != baseline "
        f"{baseline.completed} + unique committed rids "
        f"{trial.rid_committed} (stats: {trial.stats})"
    )
    assert chaos.completed > 0, "E26: no chaos-phase request ever committed"
    goodput = trial.chaos_goodput
    assert goodput >= goodput_floor * baseline.throughput, (
        f"E26: goodput collapsed past the knee: {goodput:.0f}/s under "
        f"chaos vs {baseline.throughput:.0f}/s at the knee "
        f"(floor {goodput_floor:g})"
    )
    assert chaos.p99 <= trial.worst_case_latency, (
        f"E26: chaos p99 {chaos.p99 * 1000:.0f}ms exceeds the retry "
        f"worst case {trial.worst_case_latency * 1000:.0f}ms"
    )

    def row(phase: str, run: LoadResult) -> list[str]:
        err = ",".join(
            f"{kind}:{count}" for kind, count in sorted(run.error_counts.items())
        )
        return [
            phase,
            f"{run.offered_rate:g}",
            f"{run.completed}/{run.sent}",
            err or "-",
            f"{run.throughput:.0f}",
            f"{run.p50 * 1000:.1f}",
            f"{run.p99 * 1000:.1f}",
            f"{run.retries}",
        ]

    chaos_row = row("2x knee + chaos", chaos)
    chaos_row[4] = f"{goodput:.0f}"
    return ExperimentResult(
        experiment_id="E26",
        claim="past the saturation knee the paper guarantees, bounded "
        "admission + deadlines + idempotent retries turn overload into "
        "graceful degradation: goodput plateaus, p99 stays under the "
        "retry worst case, and the counter value equals exactly the "
        "unique committed request ids",
        tables=(
            make_table(
                f"E26: {trial.spec} n={trial.n}, {ops} increments per "
                f"phase, chaos plan {trial.chaos_plan}, deadline "
                f"{trial.deadline * 1000:g}ms, {trial.retry.attempts} "
                "attempts",
                [
                    "phase",
                    "offered/s",
                    "ok",
                    "errors by type",
                    "goodput/s",
                    "p50 ms",
                    "p99 ms",
                    "retries",
                ],
                [row("knee baseline", baseline), chaos_row],
                note=(
                    "Chaos goodput counts server-side commits (answers "
                    "lost to resets are confirmed\nby idempotent "
                    "retries), measured over chaos wall time; the floor "
                    f"asserted is\n{goodput_floor:g}x the baseline "
                    "throughput.  Exactly-once asserted: final counter "
                    f"value\n{trial.probe_value} == "
                    f"{baseline.completed} baseline commits + "
                    f"{trial.rid_committed} unique committed request "
                    f"ids; served\n{trial.stats['served']}, shed "
                    f"{trial.stats['shed']}, deadline-expired "
                    f"{trial.stats['expired']}, duplicate hits "
                    f"{trial.stats['deduped']};\nproxy injected "
                    f"{trial.proxy_stats['resets']} resets, "
                    f"{trial.proxy_stats['stalls']} stalls, "
                    f"{trial.proxy_stats['blackholed']} blackholes, "
                    f"{trial.proxy_stats['delays']} delays."
                ),
            ),
        ),
    )
