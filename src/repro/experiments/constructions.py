"""E1 and E2: the paper's §2 constructions, regenerated.

* E1 (Figures 1–2): one inc as a communication DAG and as a
  topologically sorted list, with the construction invariants checked
  on real traces.
* E2 (Hot Spot Lemma): successive-operation footprints intersect for
  every counter, order and delivery policy.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis import build_dag, build_list
from repro.experiments.base import ExperimentResult, make_table
from repro.lowerbound import check_hot_spot
from repro.registry import parse_spec
from repro.sim.network import Network
from repro.sim.policies import RandomDelay, UnitDelay
from repro.workloads import one_shot, run_sequence, shuffled


def run_e1(n: int = 64, probe_op: int | None = None) -> ExperimentResult:
    """E1: DAG/list construction invariants on a mid-sequence inc."""
    if probe_op is None:
        probe_op = (n * 5) // 8
    specs = ["central", "static-tree", "ww-tree", "combining-tree"]
    rows = []
    for spec in specs:
        network = Network()
        counter = parse_spec(spec).build(network, n)
        result = run_sequence(counter, one_shot(n))
        outcome = result.outcomes[probe_op]
        dag = build_dag(result.trace, outcome.op_index, outcome.initiator)
        lst = build_list(result.trace, outcome.op_index, outcome.initiator)
        per_label_arcs = Counter(lst.labels[1:])
        per_pid_dag = Counter(receiver.pid for _, receiver in dag.graph.edges())
        list_bounded = all(
            per_label_arcs[pid] <= per_pid_dag.get(pid, 0)
            for pid in per_label_arcs
        )
        rows.append(
            [
                counter.name,
                dag.message_count,
                lst.length,
                dag.depth(),
                len(dag.participants()),
                "yes" if dag.is_acyclic() else "NO",
                "yes" if lst.length == dag.message_count else "NO",
                "yes" if list_bounded else "NO",
            ]
        )
    return ExperimentResult(
        experiment_id="E1",
        claim="the communication list models the DAG: one arc per message, "
        "no processor gains load",
        tables=(
            make_table(
                f"E1 (Fig 1+2): inc #{probe_op} as DAG and communication "
                f"list (n={n})",
                [
                    "counter", "dag msgs", "list arcs", "dag depth", "|I_p|",
                    "acyclic", "arcs==msgs", "list<=dag load",
                ],
                rows,
            ),
        ),
    )


def run_e2(n: int = 64, seeds: tuple[int, ...] = (1, 2)) -> ExperimentResult:
    """E2: Hot Spot Lemma over every counter, order and policy."""
    specs = [
        "central",
        "static-tree",
        "ww-tree",
        "combining-tree",
        "counting-network",
        "diffracting-tree",
        "quorum[maekawa]",
    ]
    orders = [one_shot(n)] + [shuffled(n, seed=s) for s in seeds]
    rows = []
    for name in specs:
        ref = parse_spec(name)
        pairs = 0
        minimum = None
        holds = True
        for order in orders:
            for policy in (UnitDelay(), RandomDelay(seed=3)):
                network = Network(policy=policy)
                counter = ref.build(network, n)
                result = run_sequence(counter, list(order))
                report = check_hot_spot(result)
                pairs += report.pairs_checked
                holds = holds and report.holds
                if minimum is None or report.min_intersection < minimum:
                    minimum = report.min_intersection
        rows.append([name, pairs, minimum, "yes" if holds else "NO"])
    return ExperimentResult(
        experiment_id="E2",
        claim="successive inc footprints always intersect (I_p ∩ I_q ≠ ∅)",
        tables=(
            make_table(
                f"E2 (Hot Spot Lemma): successive-footprint intersection (n={n})",
                ["counter", "pairs checked", "min |I_p ∩ I_q|", "lemma holds"],
                rows,
            ),
        ),
    )
