"""Asyncio bridge: run any counter inside a real event loop.

.. deprecated-but-kept:: this module predates the runtime seam and is
   retained as a thin compatibility veneer.  The real implementation
   lives in :mod:`repro.runtime` (:class:`~repro.runtime.AsyncioRuntime`)
   and :mod:`repro.workloads.driver` (the ``*_async`` drivers); new code
   should import from there, or simply pass ``runtime="asyncio"`` to
   :class:`~repro.registry.RunSession`.

The bridge executes the network's event queue cooperatively: between
events it yields to the loop, and with ``time_scale > 0`` it sleeps the
simulated gap times the scale — turning simulated time into approximate
wall-clock time.  Message accounting is identical to the synchronous
runner (it is the same :class:`~repro.sim.Trace`), which the tests
assert for every registered counter spec.
"""

from __future__ import annotations

from repro.runtime import AsyncioRuntime
from repro.sim.network import Network
from repro.workloads.driver import run_concurrent_async, run_sequence_async

__all__ = ["AsyncRunner", "run_concurrent_async", "run_sequence_async"]


class AsyncRunner(AsyncioRuntime):
    """Historical name for :class:`~repro.runtime.AsyncioRuntime`.

    Kept so pre-seam callers (``AsyncRunner(network).run_until_quiescent()``
    awaited from async code) keep working; ``run_until_quiescent`` here is
    the *awaitable* drain, matching the original bridge API — unlike the
    runtime protocol, where ``until_quiescent`` blocks and ``drain``
    awaits.
    """

    def __init__(
        self,
        network: Network,
        time_scale: float = 0.0,
        yield_every: int = 64,
    ) -> None:
        super().__init__(
            network, time_scale=time_scale, yield_every=yield_every
        )

    async def run_until_quiescent(self) -> int:
        """Async counterpart of :meth:`Network.run_until_quiescent`."""
        return await self.drain()
