"""Asyncio bridge: run any counter inside a real event loop.

The discrete-event simulator is the measurement instrument; this module
lets the same protocol objects run under :mod:`asyncio` so the library
embeds in async applications (and so the simulation's claims can be
spot-checked against a real scheduler).  The bridge executes the
network's event queue cooperatively: between events it yields to the
loop, and with ``time_scale > 0`` it sleeps the simulated gap times the
scale — turning simulated time into approximate wall-clock time.

Message accounting is identical to the synchronous runner (it is the
same :class:`~repro.sim.Trace`), which the tests assert.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from repro.api import DistributedCounter
from repro.errors import ProtocolError, SimulationLimitError
from repro.sim.messages import ProcessorId
from repro.sim.network import Network
from repro.workloads.driver import OpOutcome, RunResult


class AsyncRunner:
    """Drives a :class:`~repro.sim.Network` cooperatively under asyncio.

    Args:
        network: the network whose events to run.
        time_scale: seconds of real sleep per unit of simulated time
            between consecutive events (0 = run flat out, only yielding
            control to the loop).
        yield_every: how many back-to-back events to execute before
            yielding to the loop even when no sleep is due.
    """

    def __init__(
        self,
        network: Network,
        time_scale: float = 0.0,
        yield_every: int = 64,
    ) -> None:
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        if yield_every < 1:
            raise ValueError(f"yield_every must be >= 1, got {yield_every}")
        self._network = network
        self._time_scale = time_scale
        self._yield_every = yield_every

    async def run_until_quiescent(self) -> int:
        """Async counterpart of :meth:`Network.run_until_quiescent`."""
        network = self._network
        queue = network._queue  # noqa: SLF001 - bridge is a trusted peer
        executed = 0
        while queue:
            before = network.now
            queue.run_next()
            executed += 1
            network._events_executed += 1  # noqa: SLF001
            if network._events_executed > network._event_limit:  # noqa: SLF001
                raise SimulationLimitError(
                    f"exceeded event limit of {network._event_limit}"  # noqa: SLF001
                )
            gap = network.now - before
            if self._time_scale > 0 and gap > 0:
                await asyncio.sleep(gap * self._time_scale)
            elif executed % self._yield_every == 0:
                await asyncio.sleep(0)
        return executed


async def run_sequence_async(
    counter: DistributedCounter,
    initiators: Sequence[ProcessorId],
    time_scale: float = 0.0,
    check_values: bool = True,
) -> RunResult:
    """Async counterpart of :func:`repro.workloads.run_sequence`.

    Identical semantics — sequential operations with quiescence barriers
    — but the barriers are awaited, so other asyncio tasks interleave
    with the simulation.
    """
    network = counter.network
    trace = network.trace
    counts_kept = trace.keeps_loads
    runner = AsyncRunner(network, time_scale=time_scale)
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    for op_index, pid in enumerate(initiators):
        before = counter.results_for(pid)
        counter.begin_inc(pid, op_index)
        await runner.run_until_quiescent()
        after = counter.results_for(pid)
        if len(after) != len(before) + 1:
            raise ProtocolError(
                f"operation {op_index}: processor {pid} received "
                f"{len(after) - len(before)} results instead of 1"
            )
        value = after[-1]
        if check_values and value != op_index:
            raise ProtocolError(
                f"operation {op_index}: got value {value}, expected {op_index}"
            )
        result.outcomes.append(
            OpOutcome(
                op_index=op_index,
                initiator=pid,
                value=value,
                messages=trace.messages_for_op(op_index) if counts_kept else -1,
            )
        )
    return result


async def run_concurrent_async(
    counter: DistributedCounter,
    batch: Sequence[ProcessorId],
    time_scale: float = 0.0,
) -> RunResult:
    """Inject *batch* concurrently, await quiescence, collect results."""
    network = counter.network
    trace = network.trace
    counts_kept = trace.keeps_loads
    runner = AsyncRunner(network, time_scale=time_scale)
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    prior = {pid: len(counter.results_for(pid)) for pid in set(batch)}
    seen: dict[ProcessorId, int] = dict(prior)
    for op_index, pid in enumerate(batch):
        counter.begin_inc(pid, op_index)
    await runner.run_until_quiescent()
    for op_index, pid in enumerate(batch):
        replies = counter.results_for(pid)
        position = seen[pid]
        if position >= len(replies):
            raise ProtocolError(f"processor {pid} missed a result")
        seen[pid] += 1
        result.outcomes.append(
            OpOutcome(
                op_index=op_index,
                initiator=pid,
                value=replies[position],
                messages=trace.messages_for_op(op_index) if counts_kept else -1,
            )
        )
    return result
