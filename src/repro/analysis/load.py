"""Load profiles: distilled per-processor message-load statistics.

The paper's central quantity is ``m_p``, the number of messages processor
``p`` sends or receives over an operation sequence, and the *bottleneck*
``m_b = max_p m_p`` (§3).  A :class:`LoadProfile` wraps one trace's load
vector with the statistics the benchmarks report: the bottleneck, the
mean (the paper's ``L̄`` relates to it via ``Σ m_p = 2·messages``),
dispersion measures, and a compact histogram.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Collection

from repro.sim.messages import ProcessorId
from repro.sim.trace import Trace


@dataclass(frozen=True, slots=True)
class LoadProfile:
    """Summary of one run's per-processor message loads.

    ``population`` is the number of processors the loads are averaged
    over; processors that handled no messages count as zeros, which
    matters for means and Gini coefficients (a counter that concentrates
    all work on one processor out of 1000 should look concentrated).
    """

    loads: dict[ProcessorId, int]
    population: int

    @classmethod
    def from_trace(cls, trace: Trace, population: int | None = None) -> "LoadProfile":
        """Build a profile from *trace*.

        *population* defaults to the number of processors that appear in
        the trace; pass the real system size for honest averages.

        Works at any trace level that keeps load counters (``FULL`` or
        ``LOADS``); an ``OFF`` trace raises
        :class:`~repro.errors.TraceCapabilityError`.
        """
        loads = trace.loads()
        if population is None:
            population = len(loads)
        return cls(loads=loads, population=max(population, len(loads), 1))

    # ------------------------------------------------------------------
    # Headline numbers
    # ------------------------------------------------------------------
    @property
    def bottleneck_load(self) -> int:
        """The paper's ``m_b``: the maximum load."""
        return max(self.loads.values(), default=0)

    @property
    def bottleneck_processor(self) -> ProcessorId:
        """Processor attaining the maximum load (smallest id on ties)."""
        if not self.loads:
            return 0
        best = self.bottleneck_load
        return min(p for p, m in self.loads.items() if m == best)

    @property
    def total_load(self) -> int:
        """Sum of all loads — exactly twice the number of messages."""
        return sum(self.loads.values())

    def restrict(self, pids: "Collection[ProcessorId]") -> "LoadProfile":
        """The profile over *pids* only, with population ``len(pids)``.

        Crash-recovery runs register auxiliary processors (the failure
        detector's heartbeat hub) whose load is monitoring overhead, not
        counting work; restricting to the client ids keeps ``m_b``
        comparable with failure-free runs.
        """
        allowed = set(pids)
        return LoadProfile(
            loads={p: m for p, m in self.loads.items() if p in allowed},
            population=max(len(allowed), 1),
        )

    @property
    def mean_load(self) -> float:
        """Average load over the population."""
        return self.total_load / self.population

    @property
    def concentration(self) -> float:
        """Bottleneck divided by mean: 1.0 means perfectly even."""
        mean = self.mean_load
        return self.bottleneck_load / mean if mean > 0 else 0.0

    # ------------------------------------------------------------------
    # Distribution shape
    # ------------------------------------------------------------------
    def gini(self) -> float:
        """Gini coefficient of the load distribution (0 = even, →1 = one
        processor does everything)."""
        values = sorted(self.loads.values())
        zeros = self.population - len(values)
        values = [0] * zeros + values
        total = sum(values)
        if total == 0:
            return 0.0
        n = len(values)
        weighted = sum((index + 1) * v for index, v in enumerate(values))
        return (2.0 * weighted) / (n * total) - (n + 1.0) / n

    def percentile(self, q: float) -> int:
        """Load at quantile *q* in [0, 1] over the population."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        values = sorted(self.loads.values())
        zeros = self.population - len(values)
        values = [0] * zeros + values
        if not values:
            return 0
        index = min(len(values) - 1, math.ceil(q * len(values)) - 1)
        return values[max(index, 0)]

    def top(self, count: int = 5) -> list[tuple[ProcessorId, int]]:
        """The *count* most loaded processors as ``(pid, load)`` pairs."""
        ranked = sorted(self.loads.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:count]

    def histogram(self, bins: int = 8) -> list[tuple[int, int, int]]:
        """Equal-width histogram: list of ``(low, high, count)`` bins.

        Zero-load processors in the population are included in the first
        bin.
        """
        if bins < 1:
            raise ValueError(f"need at least one bin, got {bins}")
        top = self.bottleneck_load
        if top == 0:
            return [(0, 0, self.population)]
        width = max(1, math.ceil((top + 1) / bins))
        counts = [0] * bins
        zeros = self.population - len(self.loads)
        counts[0] += zeros
        for load in self.loads.values():
            counts[min(load // width, bins - 1)] += 1
        return [
            (index * width, (index + 1) * width - 1, counts[index])
            for index in range(bins)
        ]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"bottleneck={self.bottleneck_load} (pid {self.bottleneck_processor}), "
            f"mean={self.mean_load:.2f}, p50={self.percentile(0.5)}, "
            f"p99={self.percentile(0.99)}, gini={self.gini():.3f}, "
            f"population={self.population}"
        )
