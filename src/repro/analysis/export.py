"""Trace and load export: JSON / CSV for external analysis.

The library's analyses are deliberately ASCII-first, but reproduction
artifacts should be consumable by notebooks and plotting scripts.  This
module serializes traces, load profiles and run summaries to plain
structures, JSON strings, or CSV text — no third-party serializers.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.analysis.load import LoadProfile
from repro.sim.trace import Trace
from repro.workloads.driver import RunResult


def trace_to_records(trace: Trace) -> list[dict[str, Any]]:
    """The trace as a list of plain dicts (one per delivered message)."""
    return [
        {
            "uid": record.uid,
            "op": record.op_index,
            "sender": record.sender,
            "receiver": record.receiver,
            "kind": record.kind,
            "send_time": record.send_time,
            "deliver_time": record.deliver_time,
        }
        for record in trace.records
    ]


def trace_to_json(trace: Trace, indent: int | None = None) -> str:
    """The trace as a JSON array."""
    return json.dumps(trace_to_records(trace), indent=indent)


def trace_to_csv(trace: Trace) -> str:
    """The trace as CSV with a header row."""
    buffer = io.StringIO()
    fieldnames = [
        "uid", "op", "sender", "receiver", "kind", "send_time", "deliver_time",
    ]
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    for row in trace_to_records(trace):
        writer.writerow(row)
    return buffer.getvalue()


def loads_to_csv(profile: LoadProfile) -> str:
    """Per-processor loads as two-column CSV.

    Only processors that handled at least one message appear; the
    profile's ``population`` tells consumers how many zero rows are
    implied.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["processor", "load"])
    known = profile.loads
    observed = set(known)
    for pid in sorted(observed):
        writer.writerow([pid, known[pid]])
    return buffer.getvalue()


def run_to_summary(result: RunResult) -> dict[str, Any]:
    """One run's headline numbers as a plain dict."""
    profile = LoadProfile.from_trace(result.trace, population=result.n)
    return {
        "counter": result.counter_name,
        "n": result.n,
        "operations": result.operation_count,
        "total_messages": result.total_messages,
        "messages_per_op": result.average_messages_per_op(),
        "bottleneck_load": profile.bottleneck_load,
        "bottleneck_processor": profile.bottleneck_processor,
        "mean_load": profile.mean_load,
        "gini": profile.gini(),
        "values_ok": result.values() == sorted(result.values()),
    }


def run_to_json(result: RunResult, indent: int | None = 2) -> str:
    """One run's summary as a JSON object."""
    return json.dumps(run_to_summary(result), indent=indent)
