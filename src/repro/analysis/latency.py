"""Operation latency: the paper's §1 time-complexity measure.

"The time complexity of a distributed algorithm in an asynchronous
setting measures the worst case time from the start of a run to its
completion, based on the assumption that each message takes only one
time unit."  Under :class:`~repro.sim.UnitDelay` this module computes
exactly that per operation: the span from the operation's first send to
its last delivery.

The latency lens completes the cost picture the benchmarks paint:
the central counter answers in 2 time units but funnels all load; the
tree answers in ~k+1 units (its request must climb k+1 levels) —
decentralization's latency price is the tree's depth, which is also
O(log n / log log n).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.messages import OpIndex
from repro.sim.trace import Trace
from repro.workloads.driver import RunResult


def op_latency(trace: Trace, op_index: OpIndex) -> float:
    """Time from an operation's first send to its last delivery.

    Zero for operations that needed no messages (a server incrementing
    its own counter answers instantly).
    """
    records = trace.records_for_op(op_index)
    if not records:
        return 0.0
    first_send = min(record.send_time for record in records)
    last_delivery = max(record.deliver_time for record in records)
    return last_delivery - first_send


@dataclass(frozen=True, slots=True)
class LatencyProfile:
    """Per-operation latencies of one run, with the usual summaries."""

    latencies: tuple[float, ...]

    @classmethod
    def from_run(cls, result: RunResult) -> "LatencyProfile":
        """Latency of every completed operation of *result*."""
        return cls(
            latencies=tuple(
                op_latency(result.trace, outcome.op_index)
                for outcome in result.outcomes
            )
        )

    @property
    def worst(self) -> float:
        """The paper's worst-case time over the operation sequence."""
        return max(self.latencies, default=0.0)

    @property
    def mean(self) -> float:
        """Average operation latency."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        """Latency at quantile *q* in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]
