"""Operation latency: the paper's §1 time-complexity measure.

"The time complexity of a distributed algorithm in an asynchronous
setting measures the worst case time from the start of a run to its
completion, based on the assumption that each message takes only one
time unit."  Under :class:`~repro.sim.UnitDelay` this module computes
exactly that per operation: the span from the operation's first send to
its last delivery.

The latency lens completes the cost picture the benchmarks paint:
the central counter answers in 2 time units but funnels all load; the
tree answers in ~k+1 units (its request must climb k+1 levels) —
decentralization's latency price is the tree's depth, which is also
O(log n / log log n).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.messages import OpIndex
from repro.sim.trace import Trace
from repro.workloads.driver import RunResult


def op_latency(trace: Trace, op_index: OpIndex) -> float:
    """Time from an operation's first send to its last delivery.

    Zero for operations that needed no messages (a server incrementing
    its own counter answers instantly).
    """
    records = trace.records_for_op(op_index)
    if not records:
        return 0.0
    first_send = min(record.send_time for record in records)
    last_delivery = max(record.deliver_time for record in records)
    return last_delivery - first_send


@dataclass(frozen=True, slots=True)
class LatencyProfile:
    """Per-operation latencies of one run, with the usual summaries."""

    latencies: tuple[float, ...]

    @classmethod
    def from_run(cls, result: RunResult) -> "LatencyProfile":
        """Latency of every completed operation of *result*."""
        return cls(
            latencies=tuple(
                op_latency(result.trace, outcome.op_index)
                for outcome in result.outcomes
            )
        )

    @property
    def worst(self) -> float:
        """The paper's worst-case time over the operation sequence."""
        return max(self.latencies, default=0.0)

    @property
    def mean(self) -> float:
        """Average operation latency."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        """Latency at quantile *q* in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]


def detect_knee(
    rates: "list[float] | tuple[float, ...]",
    latencies: "list[float] | tuple[float, ...]",
    threshold: float = 3.0,
) -> float | None:
    """The saturation knee of a latency-vs-offered-load sweep.

    Given ascending offered *rates* and the measured latency at each,
    returns the first rate whose latency exceeds *threshold* times the
    unloaded baseline (the latency at the lowest rate) — the classic
    operational definition of the saturation point.  Returns ``None``
    when no point crosses, i.e. the sweep never saturated the system.

    This is how the paper's bottleneck shows up in a service: below the
    knee a structure's depth sets latency; at the knee its most loaded
    processor (the paper's ``m_b``) runs out of capacity and queueing
    delay takes over.
    """
    if len(rates) != len(latencies):
        raise ValueError(
            f"got {len(rates)} rates but {len(latencies)} latencies"
        )
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1.0, got {threshold}")
    if not rates:
        return None
    if list(rates) != sorted(rates):
        raise ValueError("rates must be ascending")
    baseline = latencies[0]
    if baseline <= 0:
        # A zero-latency baseline (all ops local) saturates as soon as
        # any queueing at all appears.
        for rate, latency in zip(rates, latencies):
            if latency > 0:
                return rate
        return None
    for rate, latency in zip(rates, latencies):
        if latency > threshold * baseline:
            return rate
    return None
