"""Message-size accounting: the paper's O(log n)-bit claim, measured.

§4: "Note that in this way we were able to keep the length of messages
as short as O(log n) bits."  The simulator's payloads are Python
objects; this module assigns them a faithful wire size — integers cost
their binary length, strings their UTF-8 bytes, containers the sum of
their parts — so each counter's *bit load* (bits sent + received per
processor) and maximum message size can be compared against the claim.

A structure could in principle cheat the message-count metric by
shipping huge messages (e.g. a counter that gossips its whole history);
bit accounting closes that loophole, and benchmark E14 shows none of
the implementations here exploits it.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping

from repro.sim.messages import ProcessorId


def value_bits(value: Any) -> int:
    """Wire size of one payload value, in bits.

    Integers: sign + magnitude (≥ 1 bit); floats: 64; strings: UTF-8
    bytes; booleans/None: 1; containers: sum over elements plus a small
    per-element tag.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, value.bit_length()) + 1  # magnitude + sign
    if isinstance(value, float):
        return 64
    if isinstance(value, str):
        return 8 * len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, frozenset, set)):
        return sum(value_bits(item) + 2 for item in value)
    if isinstance(value, Mapping):
        return sum(
            value_bits(key) + value_bits(item) + 2 for key, item in value.items()
        )
    raise TypeError(f"cannot size payload value of type {type(value).__name__}")


class BitLoadAnalyzer:
    """Accumulates per-processor bit loads alongside the message trace.

    Because :class:`~repro.sim.MessageRecord` deliberately drops payload
    contents (the trace is an accounting ledger, not a packet capture),
    bit analysis hooks the live network instead: wrap the network's
    ``send`` before running the workload.
    """

    def __init__(self, n: int) -> None:
        self._n = n
        self._bits: Counter[ProcessorId] = Counter()
        self._max_message_bits = 0
        self._total_bits = 0
        self._messages = 0

    def observe(self, sender: ProcessorId, receiver: ProcessorId,
                kind: str, payload: Mapping[str, Any]) -> None:
        """Charge one message's bits to both endpoints."""
        size = 2 * max(1, (self._n - 1).bit_length())
        size += 8 * len(kind)
        size += value_bits(payload)
        self._bits[sender] += size
        self._bits[receiver] += size
        self._total_bits += size
        self._messages += 1
        if size > self._max_message_bits:
            self._max_message_bits = size

    def attach(self, network) -> None:
        """Wrap *network*'s send so every message is observed."""
        original_send = network.send

        def observed_send(sender, receiver, kind, payload):
            self.observe(sender, receiver, kind, payload)
            return original_send(sender, receiver, kind, payload)

        network.send = observed_send

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def max_message_bits(self) -> int:
        """Largest single message seen, in bits."""
        return self._max_message_bits

    @property
    def total_bits(self) -> int:
        """Bits shipped over the whole run."""
        return self._total_bits

    @property
    def message_count(self) -> int:
        """Messages observed."""
        return self._messages

    def bit_bottleneck(self) -> tuple[ProcessorId, int]:
        """The most bit-loaded processor and its bit load."""
        if not self._bits:
            return (0, 0)
        peak = max(self._bits.values())
        pid = min(p for p, b in self._bits.items() if b == peak)
        return (pid, peak)

    def mean_message_bits(self) -> float:
        """Average message size in bits."""
        if self._messages == 0:
            return 0.0
        return self._total_bits / self._messages
