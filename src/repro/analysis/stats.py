"""Small statistics helpers for seeded repetitions.

Reproductions should report spread, not single draws.  These helpers
summarize a measurement function over a set of seeds — mean, standard
deviation, extremes — without dragging in a stats framework.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable


@dataclass(frozen=True, slots=True)
class SeededSummary:
    """Summary of one scalar measurement over several seeds."""

    values: tuple[float, ...]

    @property
    def count(self) -> int:
        """Number of repetitions."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean."""
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single value)."""
        if len(self.values) < 2:
            return 0.0
        center = self.mean
        return math.sqrt(
            sum((v - center) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return min(self.values)

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return max(self.values)

    @property
    def spread(self) -> float:
        """Relative spread: (max - min) / mean (0 if mean is 0)."""
        center = self.mean
        return (self.maximum - self.minimum) / center if center else 0.0

    def __str__(self) -> str:
        return (
            f"{self.mean:.1f} ± {self.std:.1f} "
            f"[{self.minimum:g}..{self.maximum:g}]"
        )


def summarize_over_seeds(
    measure: Callable[[int], float], seeds: Iterable[int]
) -> SeededSummary:
    """Run *measure(seed)* for every seed and summarize the results."""
    values = tuple(float(measure(seed)) for seed in seeds)
    if not values:
        raise ValueError("need at least one seed")
    return SeededSummary(values=values)
