"""Linearizability of concurrent counting runs (HSW related work).

The paper cites Herlihy/Shavit/Waarts, *Linearizable counting networks*:
plain counting networks hand out each value exactly once (they count)
but are **not linearizable** — an operation that finished strictly
before another began can receive the *larger* value.  This module
measures exactly that on recorded concurrent runs.

For a counter whose sequential spec returns the number of prior incs,
a concurrent run (with unique returned values) is linearizable iff the
value order extends the real-time precedence order:

    response(A) < request(B)  ⇒  value(A) < value(B)

(The values totally order the operations; any inversion against
real-time precedence makes a legal linearization impossible, and absent
inversions the value order itself is one.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Sequence

from repro.api import DistributedCounter
from repro.errors import ProtocolError
from repro.sim.messages import OpIndex, ProcessorId


@dataclass(frozen=True, slots=True)
class TimedOp:
    """One completed operation with its real-time interval."""

    op_index: OpIndex
    initiator: ProcessorId
    value: int
    request_time: float
    response_time: float


@dataclass(frozen=True, slots=True)
class Inversion:
    """A pair witnessing non-linearizability."""

    earlier: TimedOp
    later: TimedOp

    def __str__(self) -> str:
        return (
            f"op {self.earlier.op_index} (value {self.earlier.value}) finished "
            f"at t={self.earlier.response_time:g} before op "
            f"{self.later.op_index} began at t={self.later.request_time:g}, "
            f"yet got the larger value ({self.later.value} < {self.earlier.value})"
        )


@dataclass(frozen=True, slots=True)
class LinearizabilityReport:
    """Result of a linearizability check on one concurrent run."""

    operations: int
    precedence_pairs: int
    inversions: tuple[Inversion, ...]

    @property
    def linearizable(self) -> bool:
        """True iff no real-time inversion exists."""
        return not self.inversions


def check_linearizable_counting(ops: Sequence[TimedOp]) -> LinearizabilityReport:
    """Check the real-time/value-order consistency of *ops*.

    O(m log m): sort by value and keep the running maximum response
    time; op ``B`` is inverted iff some op with a larger value finished
    before ``B`` began.
    """
    values = sorted(op.value for op in ops)
    if len(set(values)) != len(values):
        raise ProtocolError("returned values are not unique; not a counting run")
    by_value = sorted(ops, key=lambda op: op.value)
    # Precedence pair count (for reporting): pairs with response<request.
    responses = sorted(op.response_time for op in ops)
    precedence_pairs = 0
    for op in ops:
        import bisect

        precedence_pairs += bisect.bisect_left(responses, op.request_time)
    inversions: list[Inversion] = []
    # Scan values descending, tracking the earliest-finishing op with a
    # larger value via running min response; an inversion exists for op
    # B if min_{value>value(B)} response < request(B).
    best_earlier: TimedOp | None = None
    for op in reversed(by_value):
        if best_earlier is not None and best_earlier.response_time < op.request_time:
            inversions.append(Inversion(earlier=best_earlier, later=op))
        if best_earlier is None or op.response_time < best_earlier.response_time:
            best_earlier = op
    inversions.reverse()
    return LinearizabilityReport(
        operations=len(ops),
        precedence_pairs=precedence_pairs,
        inversions=tuple(inversions),
    )


def run_concurrent_timed(
    counter: DistributedCounter,
    batch: Sequence[ProcessorId],
) -> list[TimedOp]:
    """Inject *batch* concurrently and collect timed operations.

    All requests are injected at the same simulated instant (their
    intervals all start at the current time), run to quiescence, and
    responses are matched to requests per initiator in arrival order.
    """
    network = counter.network
    start = network.now
    prior: dict[ProcessorId, int] = {}
    for op_index, pid in enumerate(batch):
        prior.setdefault(pid, len(counter.results_for(pid)))
        counter.begin_inc(pid, op_index)
    network.run_until_quiescent()
    cursor = dict(prior)
    ops: list[TimedOp] = []
    for op_index, pid in enumerate(batch):
        position = cursor[pid]
        values = counter.results_for(pid)
        times = counter.result_times_for(pid)
        if position >= len(values):
            raise ProtocolError(f"processor {pid} missed a result")
        cursor[pid] += 1
        ops.append(
            TimedOp(
                op_index=op_index,
                initiator=pid,
                value=values[position],
                request_time=start,
                response_time=times[position],
            )
        )
    return ops


def run_staggered_timed(
    counter: DistributedCounter,
    batch: Sequence[ProcessorId],
    gap: float = 3.0,
    optional: Collection[ProcessorId] = (),
) -> list[TimedOp]:
    """Inject requests *gap* time units apart (still overlapping).

    Staggered starts create real-time precedence pairs, which the fully
    concurrent variant (all requests at one instant) cannot have — and
    without precedence pairs linearizability is vacuous.  This driver is
    what actually exposes counting-network inversions.

    Initiators in *optional* (typically processors a fault plan crashes
    permanently) may fail to observe a result: their unanswered ops are
    silently omitted from the returned list instead of raising.  This is
    the standard treatment of incomplete operations — a linearization is
    free to place or drop them — and at-most-once counters burn any
    value such an op reserved.
    """
    network = counter.network
    request_times: dict[int, float] = {}
    prior: dict[ProcessorId, int] = {}
    for op_index, pid in enumerate(batch):
        prior.setdefault(pid, len(counter.results_for(pid)))
        request_times[op_index] = network.now + op_index * gap
        network.inject(
            (lambda p=pid, o=op_index: counter.begin_inc(p, o)),
            op_index=op_index,
            delay=op_index * gap,
        )
    network.run_until_quiescent()
    cursor = dict(prior)
    ops: list[TimedOp] = []
    for op_index, pid in enumerate(batch):
        position = cursor[pid]
        values = counter.results_for(pid)
        times = counter.result_times_for(pid)
        if position >= len(values):
            if pid in optional:
                continue
            raise ProtocolError(f"processor {pid} missed a result")
        cursor[pid] += 1
        ops.append(
            TimedOp(
                op_index=op_index,
                initiator=pid,
                value=values[position],
                request_time=request_times[op_index],
                response_time=times[position],
            )
        )
    return ops
