"""Invariant oracles: pluggable pass/fail judges over explored executions.

The schedule explorer (:mod:`repro.explore`) drives a counter through
many interleavings; an *oracle* is one invariant checked after each
explored execution.  Oracles are deliberately thin adapters over the
existing analysis machinery — linearizability
(:func:`~repro.analysis.linearizability.check_linearizable_counting`),
the Hot Spot Lemma (:func:`~repro.lowerbound.hotspot.check_hot_spot`),
value accounting and retirement bookkeeping — so an oracle failure is
always attributable to a checker that is itself under test elsewhere.

Each oracle inspects an :class:`OracleContext` (everything one episode
produced) and returns an :class:`OracleVerdict`.  An oracle whose
precondition is absent — no timed operations for linearizability, no
sequential outcomes for Hot Spot, no retirement ledger — returns a
*skipped* verdict rather than vacuously passing, so exploration reports
show exactly which invariants were exercised.

Oracles never raise on invariant violations; they translate them into
failing verdicts the explorer can shrink and serialize.  Raising is
reserved for programming errors in the oracle itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.linearizability import TimedOp, check_linearizable_counting
from repro.api import DistributedCounter
from repro.errors import ProtocolError, ReproError
from repro.lowerbound.hotspot import check_hot_spot
from repro.workloads.driver import RunResult


@dataclass(frozen=True, slots=True)
class OracleVerdict:
    """One oracle's judgment of one explored execution.

    Attributes:
        oracle: the oracle's registered name.
        ok: the invariant held (meaningless when ``skipped``).
        skipped: the oracle's precondition was absent for this episode
            (e.g. Hot Spot needs sequential outcomes); a skipped verdict
            is neither a pass nor a failure.
        message: human-readable explanation — the violation for
            failures, the missing precondition for skips, empty on
            passes.
    """

    oracle: str
    ok: bool
    skipped: bool = False
    message: str = ""

    @property
    def failed(self) -> bool:
        """True iff the oracle ran and the invariant did not hold."""
        return not self.ok and not self.skipped


@dataclass(slots=True)
class OracleContext:
    """Everything one explored execution hands to the oracle suite.

    Attributes:
        counter: the driven counter (post-run protocol state).
        ops: timed operations from the staggered driver, or ``None``
            when the episode ran sequentially (or died before results).
        result: the sequential driver's :class:`RunResult`, or ``None``
            for staggered episodes.
        expected_ops: how many ``inc`` requests the workload injected.
        at_most_once: values may legitimately be *burned* (gaps allowed)
            — true under fault plans on at-most-once counters, where a
            crash can orphan a reserved value; the no-lost-increment
            oracle then requires uniqueness only.
        byzantine_pids: processors the fault plan made Byzantine; the
            agreement and validity oracles judge only *honest* evidence
            (a liar's view of its own results proves nothing).
        value_burning_faults: the fault plan contains non-Byzantine
            rules (crashes, message loss) that can orphan a reserved
            value — an honest value may then legitimately land at or
            above ``expected_ops``, so the validity bound (and the
            replica-count half of agreement) cannot be judged.
        exception: a :class:`~repro.errors.ReproError` the run itself
            raised (driver protocol check, event-limit livelock), or
            ``None`` for a clean run.
    """

    counter: DistributedCounter
    ops: Sequence[TimedOp] | None = None
    result: RunResult | None = None
    expected_ops: int = 0
    at_most_once: bool = False
    byzantine_pids: frozenset = frozenset()
    value_burning_faults: bool = False
    exception: ReproError | None = None

    def honest_outcomes(self) -> list[tuple[int, int]] | None:
        """``(initiator, value)`` pairs for non-Byzantine initiators."""
        byz = self.byzantine_pids
        if self.ops is not None:
            return [
                (op.initiator, op.value)
                for op in self.ops
                if op.initiator not in byz
            ]
        if self.result is not None:
            return [
                (o.initiator, o.value)
                for o in self.result.outcomes
                if o.initiator not in byz
            ]
        return None

    def values(self) -> list[int] | None:
        """Returned values in op order from whichever driver ran."""
        if self.ops is not None:
            return [op.value for op in self.ops]
        if self.result is not None:
            return self.result.values()
        return None


class Oracle(ABC):
    """One invariant, checkable against any explored execution.

    Subclasses set :attr:`name` (stable — it is serialized into repro
    files and matched on replay) and implement :meth:`check`.
    """

    name: str = "oracle"

    @abstractmethod
    def check(self, context: OracleContext) -> OracleVerdict:
        """Judge one execution; never raises on invariant violations."""

    # Shorthand constructors keep the oracle bodies declarative.
    def _pass(self) -> OracleVerdict:
        return OracleVerdict(oracle=self.name, ok=True)

    def _fail(self, message: str) -> OracleVerdict:
        return OracleVerdict(oracle=self.name, ok=False, message=message)

    def _skip(self, message: str) -> OracleVerdict:
        return OracleVerdict(oracle=self.name, ok=True, skipped=True, message=message)


class RuntimeOracle(Oracle):
    """The run itself must complete: no driver protocol error, no livelock.

    Any :class:`~repro.errors.ReproError` the episode raised mid-run — a
    processor missing a result, a duplicate delivery tripping protocol
    asserts, the event-limit safety valve — is a schedule-induced
    failure in its own right, attributed here so the other oracles can
    still report on whatever partial evidence exists.
    """

    name = "runtime"

    def check(self, context: OracleContext) -> OracleVerdict:
        if context.exception is None:
            return self._pass()
        return self._fail(
            f"{type(context.exception).__name__}: {context.exception}"
        )


class LinearizabilityOracle(Oracle):
    """Value order must extend real-time precedence (HSW linearizability).

    Needs timed operations (the staggered driver); duplicate returned
    values — which make the run not a counting run at all — are reported
    as a failure here rather than propagated as the checker's
    :class:`~repro.errors.ProtocolError`.
    """

    name = "linearizability"

    def check(self, context: OracleContext) -> OracleVerdict:
        if context.ops is None:
            return self._skip("needs timed operations (staggered episodes)")
        if not context.ops:
            return self._skip("no completed operations to order")
        try:
            report = check_linearizable_counting(context.ops)
        except ProtocolError as error:
            return self._fail(str(error))
        if report.linearizable:
            return self._pass()
        return self._fail(str(report.inversions[0]))


class HotSpotOracle(Oracle):
    """Successive sequential operations must have intersecting footprints.

    The Hot Spot Lemma (§2) is stated for operations that run in direct
    succession, so this oracle only fires on sequential episodes with
    footprint-keeping traces; staggered episodes skip it.
    """

    name = "hot-spot"

    def check(self, context: OracleContext) -> OracleVerdict:
        result = context.result
        if result is None:
            return self._skip("needs sequential outcomes (Hot Spot is a §2 lemma)")
        if len(result.outcomes) < 2:
            return self._skip("needs at least two successive operations")
        if not result.trace.keeps_loads:
            return self._skip("needs footprint-keeping tracing")
        report = check_hot_spot(result)
        if report.holds:
            return self._pass()
        return self._fail(str(report.violations[0]))


class AgreementOracle(Oracle):
    """No two honest operations receive the same value; replicas concur.

    The agreement half of Byzantine counting correctness (the other
    half is :class:`ValidityOracle`): two *honest* clients holding the
    same counter value means the adversary split the system's view of
    the count.  Byzantine initiators' own results are ignored — a liar
    vouching for itself is not evidence.  Counters exposing
    ``replica_counts()`` (the replicated phase-king family) are
    additionally required to leave every honest replica with the same
    final count.
    """

    name = "agreement"

    def check(self, context: OracleContext) -> OracleVerdict:
        honest = context.honest_outcomes()
        if honest is None:
            return self._skip("run produced no value record")
        values = [value for _, value in honest]
        duplicates = sorted(
            value for value in set(values) if values.count(value) > 1
        )
        if duplicates:
            holders = {
                value: sorted(pid for pid, v in honest if v == value)
                for value in duplicates
            }
            return self._fail(
                f"honest processors disagree: value(s) {duplicates} "
                f"handed to multiple honest initiators ({holders})"
            )
        replica_counts = getattr(context.counter, "replica_counts", None)
        if replica_counts is not None and not context.value_burning_faults:
            counts = {
                pid: count
                for pid, count in replica_counts().items()
                if pid not in context.byzantine_pids
            }
            if len(set(counts.values())) > 1:
                return self._fail(
                    f"honest replicas ended with diverging counts: {counts}"
                )
        return self._pass()


class ValidityOracle(Oracle):
    """Every honest value lies in ``[0, expected_ops + byzantine incs)``.

    The validity half of Byzantine counting correctness: no honest
    client may be handed a value the workload did not earn — a negative
    or too-large value is one the adversary *invented*.  The subtlety
    is the upper bound: a Byzantine processor is a legitimate client,
    and its corrupted requests can commit as extra increments *by it*
    (indistinguishable, to honest replicas, from incs it chose to
    perform).  Counters exposing ``commit_origins()`` therefore raise
    the bound by the commits honest replicas attribute to Byzantine
    origins; for everything else the bound stays ``expected_ops``.
    Skipped under crash/loss rules
    (:attr:`OracleContext.value_burning_faults`): an orphaned combine
    burns values honestly, which is indistinguishable from invention.
    """

    name = "validity"

    def check(self, context: OracleContext) -> OracleVerdict:
        honest = context.honest_outcomes()
        if honest is None:
            return self._skip("run produced no value record")
        if context.expected_ops <= 0:
            return self._skip("workload size unknown (expected_ops unset)")
        if context.value_burning_faults:
            return self._skip(
                "crash/loss rules can burn reserved values, so the "
                "upper bound is not judgeable"
            )
        bound = context.expected_ops + self._byzantine_incs(context)
        bogus = sorted(
            (pid, value)
            for pid, value in honest
            if not 0 <= value < bound
        )
        if bogus:
            return self._fail(
                f"honest processor(s) received value(s) outside "
                f"[0, {bound}): {bogus}"
            )
        return self._pass()

    @staticmethod
    def _byzantine_incs(context: OracleContext) -> int:
        """Extra increments honest replicas attribute to Byzantine origins."""
        byz = context.byzantine_pids
        commit_origins = getattr(context.counter, "commit_origins", None)
        if not byz or commit_origins is None:
            return 0
        return max(
            (
                sum(count for origin, count in tally.items() if origin in byz)
                for pid, tally in commit_origins().items()
                if pid not in byz
            ),
            default=0,
        )


class NoLostIncrementOracle(Oracle):
    """Every value is handed out at most once; without burns, exactly once.

    On exactly-once runs the returned values must be the dense set
    ``{0 .. ops-1}``; under :attr:`OracleContext.at_most_once` (fault
    plans on counters that burn orphaned values) gaps are legal but
    duplicates never are — a duplicate is a lost increment, two clients
    both believing they performed the same ``inc``.
    """

    name = "no-lost-increment"

    def check(self, context: OracleContext) -> OracleVerdict:
        values = context.values()
        if values is None:
            return self._skip("run produced no value record")
        duplicates = sorted(
            value for value in set(values) if values.count(value) > 1
        )
        if duplicates:
            return self._fail(
                f"value(s) {duplicates} returned more than once "
                f"({len(values)} ops) — an increment was lost"
            )
        if context.at_most_once:
            return self._pass()
        expected = set(range(len(values)))
        missing = sorted(expected - set(values))
        unexpected = sorted(set(values) - expected)
        if missing or unexpected:
            return self._fail(
                f"values are not the dense prefix 0..{len(values) - 1}: "
                f"missing {missing}, unexpected {unexpected}"
            )
        return self._pass()


class RetirementMonotonicityOracle(Oracle):
    """Retirements happen in time order and always move the role.

    Applies to counters exposing a ``retirements`` ledger (the §4 tree
    counters): event times must be non-decreasing, ages non-negative,
    and every retirement must hand the role to a *different* worker —
    a self-retirement would silently reset the age clock.
    """

    name = "retirement-monotonicity"

    def check(self, context: OracleContext) -> OracleVerdict:
        ledger = getattr(context.counter, "retirements", None)
        if ledger is None:
            return self._skip("counter keeps no retirement ledger")
        previous_time = float("-inf")
        for event in ledger:
            if event.time < previous_time:
                return self._fail(
                    f"retirement at node {event.addr} (t={event.time:g}) "
                    f"precedes an earlier-recorded one (t={previous_time:g})"
                )
            previous_time = event.time
            if event.age_at_retirement < 0:
                return self._fail(
                    f"retirement at node {event.addr} has negative age "
                    f"{event.age_at_retirement}"
                )
            if event.new_worker == event.old_worker:
                return self._fail(
                    f"retirement at node {event.addr} kept worker "
                    f"{event.old_worker} (role must move)"
                )
        return self._pass()


def default_oracles() -> tuple[Oracle, ...]:
    """The standard suite, in the order verdicts are reported."""
    return (
        RuntimeOracle(),
        LinearizabilityOracle(),
        HotSpotOracle(),
        AgreementOracle(),
        ValidityOracle(),
        NoLostIncrementOracle(),
        RetirementMonotonicityOracle(),
    )


def run_oracles(
    context: OracleContext, oracles: Sequence[Oracle] | None = None
) -> list[OracleVerdict]:
    """Check *context* against every oracle; verdicts in suite order."""
    suite = default_oracles() if oracles is None else oracles
    return [oracle.check(context) for oracle in suite]


def first_failure(verdicts: Sequence[OracleVerdict]) -> OracleVerdict | None:
    """The first failing verdict, or ``None`` if the suite passed."""
    for verdict in verdicts:
        if verdict.failed:
            return verdict
    return None
