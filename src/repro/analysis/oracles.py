"""Invariant oracles: pluggable pass/fail judges over explored executions.

The schedule explorer (:mod:`repro.explore`) drives a counter through
many interleavings; an *oracle* is one invariant checked after each
explored execution.  Oracles are deliberately thin adapters over the
existing analysis machinery — linearizability
(:func:`~repro.analysis.linearizability.check_linearizable_counting`),
the Hot Spot Lemma (:func:`~repro.lowerbound.hotspot.check_hot_spot`),
value accounting and retirement bookkeeping — so an oracle failure is
always attributable to a checker that is itself under test elsewhere.

Each oracle inspects an :class:`OracleContext` (everything one episode
produced) and returns an :class:`OracleVerdict`.  An oracle whose
precondition is absent — no timed operations for linearizability, no
sequential outcomes for Hot Spot, no retirement ledger — returns a
*skipped* verdict rather than vacuously passing, so exploration reports
show exactly which invariants were exercised.

Oracles never raise on invariant violations; they translate them into
failing verdicts the explorer can shrink and serialize.  Raising is
reserved for programming errors in the oracle itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.linearizability import TimedOp, check_linearizable_counting
from repro.api import DistributedCounter
from repro.errors import ProtocolError, ReproError
from repro.lowerbound.hotspot import check_hot_spot
from repro.workloads.driver import RunResult


@dataclass(frozen=True, slots=True)
class OracleVerdict:
    """One oracle's judgment of one explored execution.

    Attributes:
        oracle: the oracle's registered name.
        ok: the invariant held (meaningless when ``skipped``).
        skipped: the oracle's precondition was absent for this episode
            (e.g. Hot Spot needs sequential outcomes); a skipped verdict
            is neither a pass nor a failure.
        message: human-readable explanation — the violation for
            failures, the missing precondition for skips, empty on
            passes.
    """

    oracle: str
    ok: bool
    skipped: bool = False
    message: str = ""

    @property
    def failed(self) -> bool:
        """True iff the oracle ran and the invariant did not hold."""
        return not self.ok and not self.skipped


@dataclass(slots=True)
class OracleContext:
    """Everything one explored execution hands to the oracle suite.

    Attributes:
        counter: the driven counter (post-run protocol state).
        ops: timed operations from the staggered driver, or ``None``
            when the episode ran sequentially (or died before results).
        result: the sequential driver's :class:`RunResult`, or ``None``
            for staggered episodes.
        expected_ops: how many ``inc`` requests the workload injected.
        at_most_once: values may legitimately be *burned* (gaps allowed)
            — true under fault plans on at-most-once counters, where a
            crash can orphan a reserved value; the no-lost-increment
            oracle then requires uniqueness only.
        exception: a :class:`~repro.errors.ReproError` the run itself
            raised (driver protocol check, event-limit livelock), or
            ``None`` for a clean run.
    """

    counter: DistributedCounter
    ops: Sequence[TimedOp] | None = None
    result: RunResult | None = None
    expected_ops: int = 0
    at_most_once: bool = False
    exception: ReproError | None = None

    def values(self) -> list[int] | None:
        """Returned values in op order from whichever driver ran."""
        if self.ops is not None:
            return [op.value for op in self.ops]
        if self.result is not None:
            return self.result.values()
        return None


class Oracle(ABC):
    """One invariant, checkable against any explored execution.

    Subclasses set :attr:`name` (stable — it is serialized into repro
    files and matched on replay) and implement :meth:`check`.
    """

    name: str = "oracle"

    @abstractmethod
    def check(self, context: OracleContext) -> OracleVerdict:
        """Judge one execution; never raises on invariant violations."""

    # Shorthand constructors keep the oracle bodies declarative.
    def _pass(self) -> OracleVerdict:
        return OracleVerdict(oracle=self.name, ok=True)

    def _fail(self, message: str) -> OracleVerdict:
        return OracleVerdict(oracle=self.name, ok=False, message=message)

    def _skip(self, message: str) -> OracleVerdict:
        return OracleVerdict(oracle=self.name, ok=True, skipped=True, message=message)


class RuntimeOracle(Oracle):
    """The run itself must complete: no driver protocol error, no livelock.

    Any :class:`~repro.errors.ReproError` the episode raised mid-run — a
    processor missing a result, a duplicate delivery tripping protocol
    asserts, the event-limit safety valve — is a schedule-induced
    failure in its own right, attributed here so the other oracles can
    still report on whatever partial evidence exists.
    """

    name = "runtime"

    def check(self, context: OracleContext) -> OracleVerdict:
        if context.exception is None:
            return self._pass()
        return self._fail(
            f"{type(context.exception).__name__}: {context.exception}"
        )


class LinearizabilityOracle(Oracle):
    """Value order must extend real-time precedence (HSW linearizability).

    Needs timed operations (the staggered driver); duplicate returned
    values — which make the run not a counting run at all — are reported
    as a failure here rather than propagated as the checker's
    :class:`~repro.errors.ProtocolError`.
    """

    name = "linearizability"

    def check(self, context: OracleContext) -> OracleVerdict:
        if context.ops is None:
            return self._skip("needs timed operations (staggered episodes)")
        if not context.ops:
            return self._skip("no completed operations to order")
        try:
            report = check_linearizable_counting(context.ops)
        except ProtocolError as error:
            return self._fail(str(error))
        if report.linearizable:
            return self._pass()
        return self._fail(str(report.inversions[0]))


class HotSpotOracle(Oracle):
    """Successive sequential operations must have intersecting footprints.

    The Hot Spot Lemma (§2) is stated for operations that run in direct
    succession, so this oracle only fires on sequential episodes with
    footprint-keeping traces; staggered episodes skip it.
    """

    name = "hot-spot"

    def check(self, context: OracleContext) -> OracleVerdict:
        result = context.result
        if result is None:
            return self._skip("needs sequential outcomes (Hot Spot is a §2 lemma)")
        if len(result.outcomes) < 2:
            return self._skip("needs at least two successive operations")
        if not result.trace.keeps_loads:
            return self._skip("needs footprint-keeping tracing")
        report = check_hot_spot(result)
        if report.holds:
            return self._pass()
        return self._fail(str(report.violations[0]))


class NoLostIncrementOracle(Oracle):
    """Every value is handed out at most once; without burns, exactly once.

    On exactly-once runs the returned values must be the dense set
    ``{0 .. ops-1}``; under :attr:`OracleContext.at_most_once` (fault
    plans on counters that burn orphaned values) gaps are legal but
    duplicates never are — a duplicate is a lost increment, two clients
    both believing they performed the same ``inc``.
    """

    name = "no-lost-increment"

    def check(self, context: OracleContext) -> OracleVerdict:
        values = context.values()
        if values is None:
            return self._skip("run produced no value record")
        duplicates = sorted(
            value for value in set(values) if values.count(value) > 1
        )
        if duplicates:
            return self._fail(
                f"value(s) {duplicates} returned more than once "
                f"({len(values)} ops) — an increment was lost"
            )
        if context.at_most_once:
            return self._pass()
        expected = set(range(len(values)))
        missing = sorted(expected - set(values))
        unexpected = sorted(set(values) - expected)
        if missing or unexpected:
            return self._fail(
                f"values are not the dense prefix 0..{len(values) - 1}: "
                f"missing {missing}, unexpected {unexpected}"
            )
        return self._pass()


class RetirementMonotonicityOracle(Oracle):
    """Retirements happen in time order and always move the role.

    Applies to counters exposing a ``retirements`` ledger (the §4 tree
    counters): event times must be non-decreasing, ages non-negative,
    and every retirement must hand the role to a *different* worker —
    a self-retirement would silently reset the age clock.
    """

    name = "retirement-monotonicity"

    def check(self, context: OracleContext) -> OracleVerdict:
        ledger = getattr(context.counter, "retirements", None)
        if ledger is None:
            return self._skip("counter keeps no retirement ledger")
        previous_time = float("-inf")
        for event in ledger:
            if event.time < previous_time:
                return self._fail(
                    f"retirement at node {event.addr} (t={event.time:g}) "
                    f"precedes an earlier-recorded one (t={previous_time:g})"
                )
            previous_time = event.time
            if event.age_at_retirement < 0:
                return self._fail(
                    f"retirement at node {event.addr} has negative age "
                    f"{event.age_at_retirement}"
                )
            if event.new_worker == event.old_worker:
                return self._fail(
                    f"retirement at node {event.addr} kept worker "
                    f"{event.old_worker} (role must move)"
                )
        return self._pass()


def default_oracles() -> tuple[Oracle, ...]:
    """The standard suite, in the order verdicts are reported."""
    return (
        RuntimeOracle(),
        LinearizabilityOracle(),
        HotSpotOracle(),
        NoLostIncrementOracle(),
        RetirementMonotonicityOracle(),
    )


def run_oracles(
    context: OracleContext, oracles: Sequence[Oracle] | None = None
) -> list[OracleVerdict]:
    """Check *context* against every oracle; verdicts in suite order."""
    suite = default_oracles() if oracles is None else oracles
    return [oracle.check(context) for oracle in suite]


def first_failure(verdicts: Sequence[OracleVerdict]) -> OracleVerdict | None:
    """The first failing verdict, or ``None`` if the suite passed."""
    for verdict in verdicts:
        if verdict.failed:
            return verdict
    return None
