"""ASCII visualizations: the communication tree and load distributions.

Terminal-friendly renderings used by the examples and handy in a REPL:

* :func:`render_tree` — the paper's Figure 4 for a live counter: one row
  per level with worker/retirement/age aggregates;
* :func:`render_load_bars` — horizontal bars for the hottest processors;
* :func:`render_histogram` — the load distribution as a bar chart.
"""

from __future__ import annotations

from repro.analysis.load import LoadProfile
from repro.core.tree.counter import TreeCounter

_BAR = "█"


def render_tree(counter: TreeCounter) -> str:
    """Render the tree's levels with live role statistics.

    One row per inner level: node count, total retirements so far, the
    worker-id range currently in use, and the maximum node age — a
    whole-tree health snapshot in a few lines regardless of n.
    """
    geometry = counter.geometry
    registry = counter.registry
    lines = [
        f"communication tree: arity=depth={geometry.arity}, "
        f"{geometry.leaf_count} leaves, {geometry.total_inner_nodes()} inner nodes"
    ]
    retire_counts = registry.retirement_counts_by_level()
    for level in geometry.inner_levels():
        roles = [
            registry.role(addr)
            for addr in geometry.all_nodes()
            if addr.level == level
        ]
        workers = [role.worker for role in roles]
        max_age = max(role.age for role in roles)
        label = "root " if level == 0 else f"lvl {level}"
        lines.append(
            f"  {label}: {len(roles):>5} nodes | retired "
            f"{retire_counts[level]:>5}x | workers "
            f"{min(workers)}..{max(workers)} | max age {max_age}"
        )
    lines.append(f"  leaves: {geometry.leaf_count} processors (ids 1..{geometry.leaf_count})")
    return "\n".join(lines)


def render_load_bars(
    profile: LoadProfile, top: int = 10, width: int = 40
) -> str:
    """Horizontal bars for the *top* most loaded processors."""
    hottest = profile.top(top)
    if not hottest:
        return "(no load recorded)"
    peak = hottest[0][1]
    lines = [f"hottest {len(hottest)} processors (bar = load, peak {peak}):"]
    for pid, load in hottest:
        bar = _BAR * max(1, round(width * load / peak))
        lines.append(f"  p{pid:>6} {load:>6}  {bar}")
    return "\n".join(lines)


def render_histogram(
    profile: LoadProfile, bins: int = 8, width: int = 40
) -> str:
    """The load distribution over the whole population as bars."""
    histogram = profile.histogram(bins=bins)
    peak = max(count for _, _, count in histogram)
    if peak == 0:
        return "(empty histogram)"
    lines = [f"load histogram over {profile.population} processors:"]
    for low, high, count in histogram:
        bar = _BAR * round(width * count / peak)
        lines.append(f"  {low:>5}-{high:<5} {count:>6}  {bar}")
    return "\n".join(lines)
