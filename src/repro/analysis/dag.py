"""Communication DAGs — §2's picture of an ``inc`` process, executable.

The paper visualizes the process of one ``inc`` as a directed acyclic
graph: nodes are *communication events* labelled with processor ids, and
an arc from a node labelled ``p1`` to a node labelled ``p2`` is a message
from ``p1`` to ``p2`` (Figure 1).  §3 then replaces the DAG by a
*communication list* — a topologically sorted linearization whose
consecutive-node arcs stand in for the DAG's messages (Figure 2).

This module rebuilds both objects from a recorded trace.  The DAG is
exact: each delivered message produces one arc from the sender's latest
event to a fresh receiver event, so causality is represented faithfully
(a processor's consecutive events are implicitly ordered by its local
execution).  The list is the canonical linearization by delivery order,
which in this simulator is a topological order by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.sim.messages import MessageRecord, OpIndex, ProcessorId
from repro.sim.trace import Trace


@dataclass(frozen=True, slots=True)
class DagNode:
    """One communication event: the *occurrence*-th event at *pid*."""

    pid: ProcessorId
    occurrence: int

    def __str__(self) -> str:
        return f"{self.pid}#{self.occurrence}"


@dataclass(slots=True)
class CommunicationDag:
    """The communication DAG of one operation.

    Attributes:
        op_index: which operation this is the DAG of.
        initiator: the processor that requested the ``inc``.
        graph: a :class:`networkx.DiGraph` whose nodes are
            :class:`DagNode` and whose edges carry the message uid.
    """

    op_index: OpIndex
    initiator: ProcessorId
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    @property
    def message_count(self) -> int:
        """Messages in the process = arcs in the DAG."""
        return self.graph.number_of_edges()

    def participants(self) -> frozenset[ProcessorId]:
        """All processor labels appearing in the DAG (the paper's I_p)."""
        return frozenset(node.pid for node in self.graph.nodes)

    def is_acyclic(self) -> bool:
        """Sanity: a causal graph must be acyclic."""
        return nx.is_directed_acyclic_graph(self.graph)

    def source(self) -> DagNode:
        """The initiator's first event — the source of the DAG."""
        return DagNode(self.initiator, 0)

    def depth(self) -> int:
        """Longest path length — the operation's causal latency in hops."""
        if self.graph.number_of_nodes() == 0:
            return 0
        return int(nx.dag_longest_path_length(self.graph))

    def to_ascii(self) -> str:
        """A small human-readable rendering (for the examples)."""
        lines = [f"inc by processor {self.initiator} (op {self.op_index}):"]
        for sender, receiver, data in self.graph.edges(data=True):
            lines.append(f"  {sender} --msg#{data.get('uid', '?')}--> {receiver}")
        return "\n".join(lines)


def build_dag(trace: Trace, op_index: OpIndex, initiator: ProcessorId) -> CommunicationDag:
    """Reconstruct the communication DAG of *op_index* from *trace*.

    Each record adds an arc from the sender's most recent event to a new
    event at the receiver.  "Most recent event of the sender" is the
    receiver event of the last message the sender received (or sent — a
    send is performed within the handler of the event that caused it), or
    the processor's initial event if it has not communicated yet within
    this operation.
    """
    dag = CommunicationDag(op_index=op_index, initiator=initiator)
    latest_event: dict[ProcessorId, DagNode] = {}
    occurrences: dict[ProcessorId, int] = {}

    def event_for(pid: ProcessorId, fresh: bool) -> DagNode:
        if not fresh and pid in latest_event:
            return latest_event[pid]
        occurrence = occurrences.get(pid, 0)
        occurrences[pid] = occurrence + 1
        node = DagNode(pid, occurrence)
        latest_event[pid] = node
        dag.graph.add_node(node)
        return node

    event_for(initiator, fresh=True)  # the initiation event (Figure 1's source)
    for record in trace.records_for_op(op_index):
        sender_event = event_for(record.sender, fresh=False)
        receiver_event = event_for(record.receiver, fresh=True)
        dag.graph.add_edge(sender_event, receiver_event, uid=record.uid)
    return dag


@dataclass(frozen=True, slots=True)
class CommunicationList:
    """§3's communication list: a linearized process.

    ``labels[0]`` is the initiator; each subsequent label is the receiver
    of one message, in a topological (here: delivery) order.  The list
    *length* — the number of arcs, i.e. ``len(labels) - 1`` — equals the
    number of messages in the process, the paper's ``L_i``.
    """

    op_index: OpIndex
    labels: tuple[ProcessorId, ...]

    @property
    def length(self) -> int:
        """Number of arcs in the list — the paper's ``L_i`` / ``l_i``."""
        return max(0, len(self.labels) - 1)

    @property
    def initiator(self) -> ProcessorId:
        """The first label — the paper's ``p_{i,1} = q``."""
        return self.labels[0]

    def label(self, position: int) -> ProcessorId:
        """The paper's ``p_{i,j}`` with 1-based *position*."""
        return self.labels[position - 1]

    def participants(self) -> frozenset[ProcessorId]:
        """Distinct processors on the list."""
        return frozenset(self.labels)

    def __str__(self) -> str:
        return " -> ".join(str(label) for label in self.labels)


def build_list(
    trace: Trace, op_index: OpIndex, initiator: ProcessorId
) -> CommunicationList:
    """Linearize the process of *op_index* into a communication list.

    Delivery order is a topological order of the communication DAG in
    this simulator (messages are only sent from within delivered events),
    so ``[initiator] + [receiver of each record in delivery order]`` is a
    valid linearization with exactly one arc per message — "by counting
    each arc in the list just once we get a lower bound" (§3).
    """
    labels = [initiator]
    labels.extend(
        record.receiver for record in trace.records_for_op(op_index)
    )
    return CommunicationList(op_index=op_index, labels=tuple(labels))


def lists_for_run(trace: Trace, outcomes) -> list[CommunicationList]:
    """Communication lists for every completed operation of a run."""
    return [
        build_list(trace, outcome.op_index, outcome.initiator)
        for outcome in outcomes
    ]
