"""Dependency-free SVG charts for the reproduction's figures.

The offline environment has no plotting stack, so this module writes
plain SVG: line/scatter series over linear or log axes, with a legend.
It is deliberately small — enough to regenerate the paper's headline
figures (`python -m repro figures`) as vector graphics, no more.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

_WIDTH = 640
_HEIGHT = 400
_MARGIN_LEFT = 70
_MARGIN_RIGHT = 170
_MARGIN_TOP = 50
_MARGIN_BOTTOM = 55

_PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
]


@dataclass(frozen=True, slots=True)
class Series:
    """One named line of (x, y) points."""

    name: str
    points: tuple[tuple[float, float], ...]
    dashed: bool = False


@dataclass(slots=True)
class LineChart:
    """A titled chart of several series, rendered to SVG text."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    log_x: bool = False
    log_y: bool = False

    def add(self, name: str, points: Sequence[tuple[float, float]],
            dashed: bool = False) -> "LineChart":
        """Add one series; returns self for chaining."""
        self.series.append(Series(name=name, points=tuple(points), dashed=dashed))
        return self

    # ------------------------------------------------------------------
    # Coordinate transforms
    # ------------------------------------------------------------------
    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [x for s in self.series for x, _ in s.points]
        ys = [y for s in self.series for _, y in s.points]
        if not xs:
            return (0.0, 1.0, 0.0, 1.0)
        x_low, x_high = min(xs), max(xs)
        y_low, y_high = min(ys), max(ys)
        if self.log_x:
            x_low = max(x_low, 1e-9)
        if self.log_y:
            y_low = max(y_low, 1e-9)
        if x_low == x_high:
            x_high = x_low + 1.0
        if y_low == y_high:
            y_high = y_low + 1.0
        return (x_low, x_high, y_low, y_high)

    def _to_px(self, x: float, y: float, bounds) -> tuple[float, float]:
        x_low, x_high, y_low, y_high = bounds
        if self.log_x:
            position = (math.log10(x) - math.log10(x_low)) / (
                math.log10(x_high) - math.log10(x_low)
            )
        else:
            position = (x - x_low) / (x_high - x_low)
        px = _MARGIN_LEFT + position * (_WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT)
        if self.log_y:
            vertical = (math.log10(y) - math.log10(y_low)) / (
                math.log10(y_high) - math.log10(y_low)
            )
        else:
            vertical = (y - y_low) / (y_high - y_low)
        py = _HEIGHT - _MARGIN_BOTTOM - vertical * (
            _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM
        )
        return (px, py)

    def _ticks(self, low: float, high: float, log: bool) -> list[float]:
        if log:
            first = math.ceil(math.log10(max(low, 1e-9)))
            last = math.floor(math.log10(high))
            ticks = [10.0**e for e in range(first, last + 1)]
            return ticks or [low, high]
        span = high - low
        step = 10 ** math.floor(math.log10(span / 4 or 1))
        for factor in (1, 2, 5, 10):
            if span / (step * factor) <= 6:
                step *= factor
                break
        first = math.ceil(low / step) * step
        ticks = []
        value = first
        while value <= high + 1e-9:
            ticks.append(round(value, 10))
            value += step
        return ticks

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        """Render the chart as a standalone SVG document."""
        bounds = self._bounds()
        x_low, x_high, y_low, y_high = bounds
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
            f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
            'font-family="sans-serif">',
            f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
            f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{_esc(self.title)}</text>',
        ]
        # Axes frame.
        plot_right = _WIDTH - _MARGIN_RIGHT
        plot_bottom = _HEIGHT - _MARGIN_BOTTOM
        parts.append(
            f'<rect x="{_MARGIN_LEFT}" y="{_MARGIN_TOP}" '
            f'width="{plot_right - _MARGIN_LEFT}" '
            f'height="{plot_bottom - _MARGIN_TOP}" fill="none" '
            'stroke="#333" stroke-width="1"/>'
        )
        # Ticks and grid.
        for tick in self._ticks(x_low, x_high, self.log_x):
            px, _ = self._to_px(tick, y_low, bounds)
            parts.append(
                f'<line x1="{px:.1f}" y1="{_MARGIN_TOP}" x2="{px:.1f}" '
                f'y2="{plot_bottom}" stroke="#ddd" stroke-width="0.5"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{plot_bottom + 16}" '
                f'text-anchor="middle" font-size="11">{_fmt(tick)}</text>'
            )
        for tick in self._ticks(y_low, y_high, self.log_y):
            _, py = self._to_px(x_low, tick, bounds)
            parts.append(
                f'<line x1="{_MARGIN_LEFT}" y1="{py:.1f}" x2="{plot_right}" '
                f'y2="{py:.1f}" stroke="#ddd" stroke-width="0.5"/>'
            )
            parts.append(
                f'<text x="{_MARGIN_LEFT - 6}" y="{py + 4:.1f}" '
                f'text-anchor="end" font-size="11">{_fmt(tick)}</text>'
            )
        # Axis labels.
        parts.append(
            f'<text x="{(_MARGIN_LEFT + plot_right) / 2}" '
            f'y="{_HEIGHT - 12}" text-anchor="middle" font-size="12">'
            f"{_esc(self.x_label)}</text>"
        )
        parts.append(
            f'<text x="18" y="{(_MARGIN_TOP + plot_bottom) / 2}" '
            f'text-anchor="middle" font-size="12" transform="rotate(-90 18 '
            f'{(_MARGIN_TOP + plot_bottom) / 2})">{_esc(self.y_label)}</text>'
        )
        # Series.
        for index, series in enumerate(self.series):
            color = _PALETTE[index % len(_PALETTE)]
            dash = ' stroke-dasharray="6 4"' if series.dashed else ""
            coordinates = " ".join(
                "{:.1f},{:.1f}".format(*self._to_px(x, y, bounds))
                for x, y in series.points
            )
            parts.append(
                f'<polyline points="{coordinates}" fill="none" '
                f'stroke="{color}" stroke-width="2"{dash}/>'
            )
            for x, y in series.points:
                px, py = self._to_px(x, y, bounds)
                parts.append(
                    f'<circle cx="{px:.1f}" cy="{py:.1f}" r="3" '
                    f'fill="{color}"/>'
                )
            # Legend entry.
            legend_y = _MARGIN_TOP + 14 + index * 18
            parts.append(
                f'<line x1="{plot_right + 10}" y1="{legend_y - 4}" '
                f'x2="{plot_right + 34}" y2="{legend_y - 4}" '
                f'stroke="{color}" stroke-width="2"{dash}/>'
            )
            parts.append(
                f'<text x="{plot_right + 40}" y="{legend_y}" '
                f'font-size="11">{_esc(series.name)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        """Write the SVG to *path*."""
        import pathlib

        pathlib.Path(path).write_text(self.to_svg())


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 10**7:
        return str(int(value))
    if abs(value) >= 10**6 or (0 < abs(value) < 1e-3):
        return f"{value:.0e}"
    return f"{value:g}"
