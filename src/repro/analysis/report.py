"""ASCII tables and series for benchmark output.

The benchmark harness prints the rows the paper's claims translate to —
this module keeps the formatting in one place so every bench looks the
same and the EXPERIMENTS.md tables can be pasted from bench output.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    align: Sequence[str] | None = None,
) -> str:
    """Render *rows* under *headers* as a fixed-width ASCII table.

    ``align`` sets per-column body alignment: ``"l"`` or ``"r"`` per
    column.  The default right-justifies every cell, which suits the
    numeric tables; text-heavy tables (the counter registry, whose spec
    names outgrow their header) pass ``"l"`` columns so wide cells stay
    flush with their left-justified headers.
    """
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    if align is not None and len(align) != len(headers):
        raise ValueError(
            f"align has {len(align)} entries for {len(headers)} columns"
        )
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        if align is None:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        else:
            body = "  ".join(
                cell.ljust(widths[i]) if align[i] == "l" else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
            lines.append(body.rstrip())
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_series(name: str, pairs: Iterable[tuple[Any, Any]]) -> str:
    """Render an (x, y) series as ``name: x1->y1  x2->y2 ...``."""
    body = "  ".join(f"{_cell(x)}->{_cell(y)}" for x, y in pairs)
    return f"{name}: {body}"
