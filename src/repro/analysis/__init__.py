"""Trace analysis: loads, communication DAGs/lists, report formatting.

Everything here consumes a finished :class:`~repro.sim.Trace` (never live
protocol state), so analysis cannot perturb or be gamed by the protocols
it measures.
"""

from repro.analysis.dag import (
    CommunicationDag,
    CommunicationList,
    DagNode,
    build_dag,
    build_list,
    lists_for_run,
)
from repro.analysis.bits import BitLoadAnalyzer, value_bits
from repro.analysis.export import (
    loads_to_csv,
    run_to_json,
    run_to_summary,
    trace_to_csv,
    trace_to_json,
    trace_to_records,
)
from repro.analysis.latency import LatencyProfile, detect_knee, op_latency
from repro.analysis.linearizability import (
    Inversion,
    LinearizabilityReport,
    TimedOp,
    check_linearizable_counting,
    run_concurrent_timed,
    run_staggered_timed,
)
from repro.analysis.load import LoadProfile
from repro.analysis.oracles import (
    HotSpotOracle,
    LinearizabilityOracle,
    NoLostIncrementOracle,
    Oracle,
    OracleContext,
    OracleVerdict,
    RetirementMonotonicityOracle,
    RuntimeOracle,
    default_oracles,
    first_failure,
    run_oracles,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.stats import SeededSummary, summarize_over_seeds
from repro.analysis.treeview import (
    render_histogram,
    render_load_bars,
    render_tree,
)

__all__ = [
    "BitLoadAnalyzer",
    "CommunicationDag",
    "CommunicationList",
    "DagNode",
    "HotSpotOracle",
    "Inversion",
    "LatencyProfile",
    "LinearizabilityOracle",
    "LinearizabilityReport",
    "LoadProfile",
    "NoLostIncrementOracle",
    "Oracle",
    "OracleContext",
    "OracleVerdict",
    "RetirementMonotonicityOracle",
    "RuntimeOracle",
    "SeededSummary",
    "TimedOp",
    "build_dag",
    "build_list",
    "check_linearizable_counting",
    "default_oracles",
    "detect_knee",
    "first_failure",
    "format_series",
    "format_table",
    "lists_for_run",
    "loads_to_csv",
    "op_latency",
    "render_histogram",
    "render_load_bars",
    "render_tree",
    "run_concurrent_timed",
    "run_oracles",
    "run_staggered_timed",
    "run_to_json",
    "run_to_summary",
    "summarize_over_seeds",
    "trace_to_csv",
    "trace_to_json",
    "trace_to_records",
    "value_bits",
]
