"""Static relay tree: the paper's tree *without* retirement.

Same communication tree as :class:`~repro.core.TreeCounter`, but inner
workers are permanent.  Every ``inc`` still climbs to the root, so the
root worker handles two messages per operation — a Θ(n) bottleneck.  This
baseline isolates exactly what the retirement mechanism buys (ablation E9
degenerates to it as the threshold goes to infinity).
"""

from __future__ import annotations

from repro.api import Capabilities
from repro.core.tree.counter import TreeCounter
from repro.core.tree.geometry import TreeGeometry
from repro.core.tree.policy import TreePolicy
from repro.sim.network import Network


class StaticTreeCounter(TreeCounter):
    """The communication tree with retirement disabled."""

    name = "static-tree"
    capabilities = Capabilities()

    def __init__(
        self,
        network: Network,
        n: int,
        geometry: TreeGeometry | None = None,
    ) -> None:
        super().__init__(
            network,
            n,
            geometry=geometry,
            policy=TreePolicy.never_retire(),
        )
