"""Baseline distributed counters the paper compares against.

* :class:`CentralCounter` — the §1 strawman: value at one server.
* :class:`StaticTreeCounter` — a fixed k-ary relay tree *without* the
  paper's retirement mechanism (isolates retirement's contribution).
* :class:`CombiningTreeCounter` — message-passing port of combining trees
  (Yew/Tzeng/Lawrie 1987, Goodman/Vernon/Woest 1989).
* :class:`BitonicCountingNetwork` — message-passing port of counting
  networks (Aspnes/Herlihy/Shavit 1991).
* :class:`DiffractingTreeCounter` — message-passing port of diffracting
  trees (Shavit/Zemach 1994).
* :class:`ArrowCounter` — token mobility via path reversal (Raymond
  1989 / the arrow protocol): the order-sensitive contrast case for the
  lower bound's worst-case-over-orders quantifier.
* :class:`ByzantineCounter` — replicated counter running phase-king
  agreement per inc (Lenzen/Rybicki-style resilient counting); the only
  family tolerating ``f < n/3`` lying processors.
"""

from repro.counters.arrow import ArrowCounter

from repro.counters.byzantine import ByzantineCounter
from repro.counters.central import CentralCounter
from repro.counters.combining_tree import CombiningTreeCounter
from repro.counters.counting_network import BitonicCountingNetwork
from repro.counters.diffracting_tree import DiffractingTreeCounter
from repro.counters.static_tree import StaticTreeCounter

__all__ = [
    "ArrowCounter",
    "BitonicCountingNetwork",
    "ByzantineCounter",
    "CentralCounter",
    "CombiningTreeCounter",
    "DiffractingTreeCounter",
    "StaticTreeCounter",
]
