"""Combining tree counter — message-passing port of YTL87 / GVW89.

Combining trees were "the first to explicitly aim at avoiding a
bottleneck" (paper §1, related work).  Requests climb a fixed tree; a
node that holds several pending requests *combines* them into a single
upward request, and the root answers with an interval of counter values
that is split on the way back down.

Port to message passing: every tree node is a role hosted on a client
processor (round-robin over ids 1..n, so no extra processors exist — the
same pool the paper's counter draws from).  Combining needs simultaneity,
so a node holding a fresh request arms a local *combining window* timer
and batches every request that arrives before it fires.

Behaviour to expect (and what the benchmarks show):

* sequential one-shot workload — no two requests are ever concurrent, no
  combining happens, every operation reaches the root: the root host is a
  Θ(n) bottleneck, exactly the paper's point that combining alone does
  not remove the inherent bottleneck *for sequences of dependent
  operations*;
* concurrent batches — combining collapses whole subtrees into one
  message and the root load drops to Θ(#batches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Capabilities, DistributedCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.messages import Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

KIND_REQUEST = "combine-request"
KIND_GRANT = "combine-grant"
KIND_CLIENT_GRANT = "combine-grant-client"

DEFAULT_WINDOW = 0.75
"""Default combining-window length in simulated time units (< 1 unit
message delay, so sequential unit-delay operations never combine by
accident but same-batch concurrent requests do).  Tune upward for
slower delivery models (e.g. the congestion policy), where requests
take longer to meet at a node."""


@dataclass(slots=True)
class _NodeState:
    """Combining state of one tree node role."""

    node: int
    parent: int | None
    pending: list[tuple[str, int, int, int]] = field(default_factory=list)
    """Pending requests: ``(requester_kind, requester_id, count, batch)``
    where requester_kind is ``"client"`` or ``"node"`` and batch is the
    requester's batch id (0 for clients)."""
    batches: dict[int, list[tuple[str, int, int, int]]] = field(
        default_factory=dict
    )
    """Batches sent upward, awaiting grants, keyed by batch id.  Explicit
    ids (not FIFO matching) keep grants correct under non-FIFO delivery."""
    next_batch_id: int = 0
    window_armed: bool = False


class _CombiningHost(Processor):
    """A processor hosting zero or more combining-tree node roles."""

    def __init__(self, pid: ProcessorId, counter: "CombiningTreeCounter") -> None:
        super().__init__(pid)
        self._counter = counter
        self._nodes: dict[int, _NodeState] = {}

    # -- client side ---------------------------------------------------
    def request_inc(self) -> None:
        """Initiate one ``inc``: ask this client's leaf-side node."""
        entry_node = self._counter.entry_node_of(self.pid)
        host = self._counter.host_of(entry_node)
        self.send(
            host,
            KIND_REQUEST,
            {"node": entry_node, "from_kind": "client", "from_id": self.pid, "count": 1},
        )

    # -- node side -----------------------------------------------------
    def on_message(self, message: Message) -> None:
        if message.kind == KIND_REQUEST:
            self._on_request(message)
        elif message.kind == KIND_GRANT:
            self._on_grant(message)
        elif message.kind == KIND_CLIENT_GRANT:
            self._counter.deliver_result(self.pid, message.payload["value"])
        else:
            raise ProtocolError(
                f"combining tree: unknown message kind {message.kind!r}"
            )

    def _on_request(self, message: Message) -> None:
        node_id = message.payload["node"]
        if node_id == -1:
            # The virtual root: hand out an interval of counter values.
            base = self._counter.take_values(message.payload["count"])
            self.send(
                message.sender,
                KIND_GRANT,
                {
                    "node": message.payload["reply_node"],
                    "base": base,
                    "batch": message.payload["batch"],
                },
            )
            return
        state = self._node(node_id)
        state.pending.append(
            (
                message.payload["from_kind"],
                message.payload["from_id"],
                message.payload["count"],
                message.payload.get("batch", 0),
            )
        )
        if not state.window_armed:
            state.window_armed = True
            self.network.inject(
                (lambda s=state: self._close_window(s)),
                op_index=self.network.active_op,
                delay=self._counter.window,
            )

    def _close_window(self, state: _NodeState) -> None:
        """Combining window elapsed: ship the batch upward as one request."""
        state.window_armed = False
        if not state.pending:
            return
        batch = state.pending
        state.pending = []
        batch_id = state.next_batch_id
        state.next_batch_id += 1
        state.batches[batch_id] = batch
        total = sum(count for _, _, count, _ in batch)
        if state.parent is None:
            # Top node talks to the root-value holder.
            self.send(
                self._counter.root_host,
                KIND_REQUEST,
                {
                    "node": -1,
                    "count": total,
                    "reply_node": state.node,
                    "batch": batch_id,
                },
            )
        else:
            self.send(
                self._counter.host_of(state.parent),
                KIND_REQUEST,
                {
                    "node": state.parent,
                    "from_kind": "node",
                    "from_id": state.node,
                    "count": total,
                    "batch": batch_id,
                },
            )

    def _on_grant(self, message: Message) -> None:
        """Split a granted interval among the batch that requested it."""
        state = self._node(message.payload["node"])
        batch_id = message.payload["batch"]
        if batch_id not in state.batches:
            raise ProtocolError(
                f"combining node {state.node} got a grant for unknown "
                f"batch {batch_id}"
            )
        batch = state.batches.pop(batch_id)
        base = message.payload["base"]
        for from_kind, from_id, count, from_batch in batch:
            if from_kind == "client":
                self._counter.grant_client(self, from_id, base)
            else:
                self.send(
                    self._counter.host_of(from_id),
                    KIND_GRANT,
                    {"node": from_id, "base": base, "batch": from_batch},
                )
            base += count

    def _node(self, node_id: int) -> _NodeState:
        """The combining state of *node_id*, created on first use.

        The topology is arithmetic (see
        :meth:`CombiningTreeCounter.parent_of`), so hosting is a range
        check plus the round-robin rule — node states materialize only
        for nodes that actually see traffic, which keeps building an
        n=10^5 tree O(n) instead of O(nodes) object churn.
        """
        state = self._nodes.get(node_id)
        if state is not None:
            return state
        counter = self._counter
        if 0 <= node_id < counter.node_count and counter.host_of(node_id) == self.pid:
            state = _NodeState(node=node_id, parent=counter.parent_of(node_id))
            self._nodes[node_id] = state
            return state
        raise ProtocolError(
            f"processor {self.pid} does not host combining node {node_id}"
        )


class CombiningTreeCounter(DistributedCounter):
    """Software combining tree over the client processors.

    Args:
        network: simulator to wire into.
        n: number of clients (ids 1..n).
        arity: tree fan-in (default 2, the classic binary combining tree).
        window: combining-window length (see :data:`DEFAULT_WINDOW`).
    """

    name = "combining-tree"
    capabilities = Capabilities()

    #: Host processor class — subclasses (e.g. the crash-bypassing
    #: variant) override this to wrap node/client behaviour.
    host_class: type[_CombiningHost] = _CombiningHost

    def __init__(
        self,
        network: Network,
        n: int,
        arity: int = 2,
        window: float = DEFAULT_WINDOW,
    ) -> None:
        super().__init__(network, n)
        if arity < 2:
            raise ConfigurationError(f"combining arity must be >= 2, got {arity}")
        if window <= 0:
            raise ConfigurationError(f"combining window must be positive: {window}")
        self.arity = arity
        self.window = window
        self._value = 0
        self._hosts: dict[ProcessorId, _CombiningHost] = {}
        for pid in self.client_ids():
            host = self.host_class(pid, self)
            network.register(host)
            self._hosts[pid] = host
        self._build_tree()

    def _build_tree(self) -> None:
        """Lay out the tree arithmetically: layer sizes and offsets only.

        Node ids are dense integers, leaves first: layer 0 holds the
        ``ceil(n/arity)`` leaf-side nodes (client *pid* enters at node
        ``(pid-1)//arity``), each upper layer fans the one below in by
        *arity*, and the top combining node is ``node_count - 1``.  Only
        the per-layer start offsets are materialized — parents and entry
        nodes are computed on demand (:meth:`parent_of`,
        :meth:`entry_node_of`) and node *states* are created lazily by
        the hosts on first traffic, so construction is O(layers), not
        O(nodes).
        """
        arity = self.arity
        sizes = [(self.n + arity - 1) // arity]
        while sizes[-1] > 1:
            sizes.append((sizes[-1] + arity - 1) // arity)
        starts = [0]
        for size in sizes:
            starts.append(starts[-1] + size)
        #: ``_layer_starts[i]`` is the id of layer *i*'s first node; the
        #: final entry is the total node count.
        self._layer_starts: list[int] = starts
        self.node_count = starts[-1]
        # The root-value holder lives with the top node's host.
        self.root_host = self.host_of(self.node_count - 1)

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def host_of(self, node: int) -> ProcessorId:
        """Processor hosting tree node *node* (round-robin over clients)."""
        return (node % self.n) + 1

    def parent_of(self, node: int) -> int | None:
        """Parent of tree node *node* (``None`` for the top node).

        Pure arithmetic over the layer offsets: a node at index *j* of
        layer *i* reports to index ``j // arity`` of layer *i + 1*.
        """
        starts = self._layer_starts
        if node == self.node_count - 1:
            return None
        layer = 0
        while node >= starts[layer + 1]:
            layer += 1
        return starts[layer + 1] + (node - starts[layer]) // self.arity

    def entry_node_of(self, pid: ProcessorId) -> int:
        """The leaf-side node client *pid* sends its requests to."""
        if not 1 <= pid <= self.n:
            raise KeyError(pid)
        return (pid - 1) // self.arity

    # ------------------------------------------------------------------
    # Value management (root side)
    # ------------------------------------------------------------------
    def take_values(self, count: int) -> int:
        """Reserve *count* consecutive values; return the first."""
        base = self._value
        self._value += count
        return base

    @property
    def value(self) -> int:
        """Current counter value (test introspection)."""
        return self._value

    def grant_client(
        self, granting_host: _CombiningHost, client: ProcessorId, value: int
    ) -> None:
        """Deliver *value* to *client* — one message unless it is local."""
        if granting_host.pid == client:
            self.deliver_result(client, value)
        else:
            granting_host.send(client, KIND_CLIENT_GRANT, {"value": value})

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if pid not in self._hosts:
            raise ConfigurationError(f"processor {pid} is not a client (1..{self.n})")
        host = self._hosts[pid]
        self.network.inject(host.request_inc, op_index=op_index)
