"""Bitonic counting network — message-passing port of AHS91.

A counting network is a layered network of *balancers*: two-input,
two-output toggles that send the 1st, 3rd, 5th… token to their top output
wire and the rest to the bottom.  The bitonic network ``Bitonic[w]`` is
the comparator structure of Batcher's bitonic sorting network with every
comparator replaced by a balancer; its outputs satisfy the *step
property* in every quiescent state: ``0 <= y_i - y_j <= 1`` for
``i < j``.  Hanging a local counter on output wire ``i`` that hands out
values ``i, i+w, i+2w, …`` turns it into a counter.

Port to message passing: every balancer is a role hosted on a client
processor (round-robin, no extra processors), one traversal hop = one
message.  Each token crosses ``O(log² w)`` balancers, and the load of a
balancer host is proportional to the tokens crossing its balancers —
width trades total messages against per-host load, but for the paper's
sequential one-shot workload the bottleneck never drops to O(k): the
benchmarks show the crossover structure.
"""

from __future__ import annotations

from repro.api import Capabilities, DistributedCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.messages import Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

KIND_TOKEN = "cn-token"
KIND_VALUE = "cn-value"

Balancer = tuple[int, int]
"""A balancer as ``(top_wire, bottom_wire)``: odd tokens exit on top."""


def bitonic_layers(width: int) -> list[list[Balancer]]:
    """Balancer layers of ``Bitonic[width]`` (width a power of two).

    Uses the iterative bitonic construction: phases ``k = 2, 4, …, w``;
    within a phase, distances ``j = k/2, k/4, …, 1``.  A comparator
    ``(i, i^j)`` is ascending (min exits on the lower wire) when
    ``i & k == 0`` and descending otherwise; the balancer's top output is
    wherever the comparator's minimum went, which is what makes the
    token-count isomorphism to the sorting network work.
    """
    if width < 1 or width & (width - 1):
        raise ConfigurationError(f"width must be a power of two, got {width}")
    layers: list[list[Balancer]] = []
    k = 2
    while k <= width:
        j = k // 2
        while j >= 1:
            layer: list[Balancer] = []
            for i in range(width):
                partner = i ^ j
                if partner > i:
                    if i & k == 0:
                        layer.append((i, partner))
                    else:
                        layer.append((partner, i))
            layers.append(sorted(layer, key=min))
            j //= 2
        k *= 2
    return layers


def step_property_holds(counts: list[int]) -> bool:
    """True if *counts* satisfies the step property of AHS91."""
    return all(
        0 <= counts[i] - counts[j] <= 1
        for i in range(len(counts))
        for j in range(i + 1, len(counts))
    )


class _BalancerHost(Processor):
    """A processor hosting balancer roles and/or output-wire counters."""

    def __init__(self, pid: ProcessorId, counter: "BitonicCountingNetwork") -> None:
        super().__init__(pid)
        self._counter = counter

    def request_inc(self) -> None:
        """Inject a token on this client's input wire."""
        wire = (self.pid - 1) % self._counter.width
        self._counter.route_token(self, origin=self.pid, layer=0, wire=wire)

    def on_message(self, message: Message) -> None:
        if message.kind == KIND_TOKEN:
            self._counter.handle_token(
                self,
                origin=message.payload["origin"],
                layer=message.payload["layer"],
                wire=message.payload["wire"],
            )
        elif message.kind == KIND_VALUE:
            self._counter.deliver_result(self.pid, message.payload["value"])
        else:
            raise ProtocolError(
                f"counting network: unknown message kind {message.kind!r}"
            )


class BitonicCountingNetwork(DistributedCounter):
    """``Bitonic[width]`` with per-wire exit counters, over ``n`` clients.

    Args:
        network: simulator to wire into.
        n: number of clients (ids 1..n).
        width: network width ``w`` (power of two, defaults to the largest
            power of two ≤ √n — a balanced default for the sweep).
    """

    name = "counting-network"
    capabilities = Capabilities()

    def __init__(self, network: Network, n: int, width: int | None = None) -> None:
        super().__init__(network, n)
        if width is None:
            width = 1
            while width * width * 4 <= n:
                width *= 2
            width = max(2, width)
        self.width = width
        self.layers = bitonic_layers(width)
        # Toggle state per (layer, balancer-index-in-layer).
        self._toggles: dict[tuple[int, int], int] = {}
        # Map (layer, wire) -> balancer index in that layer.
        self._wire_to_balancer: list[dict[int, int]] = []
        for layer in self.layers:
            index: dict[int, int] = {}
            for b_index, (top, bottom) in enumerate(layer):
                index[top] = b_index
                index[bottom] = b_index
            self._wire_to_balancer.append(index)
        self.exit_counts = [0] * width
        self._hosts: dict[ProcessorId, _BalancerHost] = {}
        for pid in self.client_ids():
            host = _BalancerHost(pid, self)
            network.register(host)
            self._hosts[pid] = host

    # ------------------------------------------------------------------
    # Hosting layout
    # ------------------------------------------------------------------
    def balancer_host(self, layer: int, b_index: int) -> ProcessorId:
        """Processor hosting balancer *b_index* of *layer*."""
        global_index = layer * (self.width // 2) + b_index
        return (global_index % self.n) + 1

    def wire_counter_host(self, wire: int) -> ProcessorId:
        """Processor hosting the exit counter of output *wire*."""
        offset = len(self.layers) * (self.width // 2)
        return ((offset + wire) % self.n) + 1

    # ------------------------------------------------------------------
    # Token plumbing (executed inside host message handlers)
    # ------------------------------------------------------------------
    def route_token(
        self, at: _BalancerHost, origin: ProcessorId, layer: int, wire: int
    ) -> None:
        """Send a token toward the balancer at (*layer*, *wire*)."""
        if layer == len(self.layers):
            target = self.wire_counter_host(wire)
            at.send(target, KIND_TOKEN, {"origin": origin, "layer": layer, "wire": wire})
            return
        b_index = self._wire_to_balancer[layer][wire]
        target = self.balancer_host(layer, b_index)
        at.send(target, KIND_TOKEN, {"origin": origin, "layer": layer, "wire": wire})

    def handle_token(
        self, at: _BalancerHost, origin: ProcessorId, layer: int, wire: int
    ) -> None:
        """Pass a token through one balancer (or the exit counter)."""
        if layer == len(self.layers):
            value = wire + self.width * self.exit_counts[wire]
            self.exit_counts[wire] += 1
            if at.pid == origin:
                self.deliver_result(origin, value)
            else:
                at.send(origin, KIND_VALUE, {"value": value})
            return
        b_index = self._wire_to_balancer[layer][wire]
        top, bottom = self.layers[layer][b_index]
        toggle = self._toggles.get((layer, b_index), 0)
        out_wire = top if toggle % 2 == 0 else bottom
        self._toggles[(layer, b_index)] = toggle + 1
        self.route_token(at, origin, layer + 1, out_wire)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if pid not in self._hosts:
            raise ConfigurationError(f"processor {pid} is not a client (1..{self.n})")
        host = self._hosts[pid]
        self.network.inject(host.request_inc, op_index=op_index)
