"""Diffracting tree counter — message-passing port of SZ94.

A diffracting tree is a binary tree of balancers.  Two tokens that meet
at a node can *diffract*: one goes left, one goes right, and neither
touches the node's toggle.  A *prism* — an array of rendezvous slots in
front of each toggle — makes such meetings likely under concurrency.
Leaves are exit counters handing out ``leaf + L·j`` (``L`` leaves).

Port to message passing: each node's prism slots and toggle are roles
hosted on client processors (spread round-robin).  A token picks a
random prism slot of the node; if another token is already waiting there
the pair diffracts immediately; otherwise the token waits for a short
window and then falls through to the node's toggle host.

Expected behaviour (shown by the benchmarks): sequential one-shot
operations never meet, so every token visits every toggle on its path —
the root toggle host is a Θ(n) bottleneck; concurrent batches diffract
at the prisms and spread the load.
"""

from __future__ import annotations

import random

from repro.api import Capabilities, DistributedCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.messages import Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

KIND_PRISM = "dt-prism"
KIND_TOGGLE = "dt-toggle"
KIND_EXIT = "dt-exit"
KIND_VALUE = "dt-value"

DEFAULT_PRISM_WAIT = 0.75
"""Default wait of a lone token in a prism slot before it falls through
to the toggle (< 1 unit message delay: sequential tokens never pair,
concurrent ones can).  Tune upward for slower delivery models."""


class _DiffractingHost(Processor):
    """A processor hosting prism slots, toggles and/or exit counters."""

    def __init__(self, pid: ProcessorId, counter: "DiffractingTreeCounter") -> None:
        super().__init__(pid)
        self._counter = counter
        # Waiting token per prism slot key (node, slot):
        # (origin, seq) or None.
        self._waiting: dict[tuple[int, int], tuple[int, int] | None] = {}

    def request_inc(self) -> None:
        """Inject a token at the root node's prism."""
        self._counter.send_to_prism(self, origin=self.pid, node=1)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if message.kind == KIND_PRISM:
            self._on_prism_token(
                node=payload["node"],
                slot=payload["slot"],
                origin=payload["origin"],
                seq=payload["seq"],
            )
        elif message.kind == KIND_TOGGLE:
            self._counter.pass_toggle(self, node=payload["node"], origin=payload["origin"])
        elif message.kind == KIND_EXIT:
            self._counter.exit_token(self, leaf=payload["leaf"], origin=payload["origin"])
        elif message.kind == KIND_VALUE:
            self._counter.deliver_result(self.pid, payload["value"])
        else:
            raise ProtocolError(
                f"diffracting tree: unknown message kind {message.kind!r}"
            )

    # -- prism ----------------------------------------------------------
    def _on_prism_token(self, node: int, slot: int, origin: int, seq: int) -> None:
        key = (node, slot)
        waiting = self._waiting.get(key)
        if waiting is not None:
            # Diffraction: the pair splits without touching the toggle.
            self._waiting[key] = None
            other_origin, _other_seq = waiting
            self._counter.forward_to_child(self, node=node, origin=other_origin, side=0)
            self._counter.forward_to_child(self, node=node, origin=origin, side=1)
            return
        self._waiting[key] = (origin, seq)
        self.network.inject(
            (lambda: self._prism_timeout(key, origin, seq)),
            op_index=self.network.active_op,
            delay=self._counter.prism_wait,
        )

    def _prism_timeout(self, key: tuple[int, int], origin: int, seq: int) -> None:
        """The window closed with no partner: fall through to the toggle."""
        if self._waiting.get(key) != (origin, seq):
            return  # already diffracted
        self._waiting[key] = None
        node = key[0]
        self.send(
            self._counter.toggle_host(node),
            KIND_TOGGLE,
            {"node": node, "origin": origin},
        )


class DiffractingTreeCounter(DistributedCounter):
    """Diffracting tree of depth ``d`` with ``2^d`` exit counters.

    Args:
        network: simulator to wire into.
        n: number of clients (ids 1..n).
        depth: tree depth (default: ``log2(n)/2`` rounded, ≥ 1 — a
            balanced prism/width default).
        prism_size: rendezvous slots per node (default 4).
        seed: seed for the clients' random slot choices.
    """

    name = "diffracting-tree"
    capabilities = Capabilities()

    def __init__(
        self,
        network: Network,
        n: int,
        depth: int | None = None,
        prism_size: int = 4,
        seed: int = 0,
        prism_wait: float = DEFAULT_PRISM_WAIT,
    ) -> None:
        super().__init__(network, n)
        if depth is None:
            depth = max(1, n.bit_length() // 2 - 1)
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if prism_size < 1:
            raise ConfigurationError(f"prism size must be >= 1, got {prism_size}")
        if prism_wait <= 0:
            raise ConfigurationError(f"prism wait must be positive: {prism_wait}")
        self.prism_wait = prism_wait
        self.depth = depth
        self.prism_size = prism_size
        self.leaf_count = 1 << depth
        self.exit_counts = [0] * self.leaf_count
        self._toggles: dict[int, int] = {}
        self._rng = random.Random(seed)
        self._hosts: dict[ProcessorId, _DiffractingHost] = {}
        for pid in self.client_ids():
            host = _DiffractingHost(pid, self)
            network.register(host)
            self._hosts[pid] = host
        self._next_seq = 0

    # ------------------------------------------------------------------
    # Hosting layout (spread roles round-robin over clients)
    # ------------------------------------------------------------------
    def prism_host(self, node: int, slot: int) -> ProcessorId:
        """Processor hosting prism slot (*node*, *slot*)."""
        return ((node * self.prism_size + slot) % self.n) + 1

    def toggle_host(self, node: int) -> ProcessorId:
        """Processor hosting the toggle of internal node *node*."""
        return ((node * 7919) % self.n) + 1

    def exit_host(self, leaf: int) -> ProcessorId:
        """Processor hosting exit counter *leaf* (0-based)."""
        return ((leaf * 104729 + 13) % self.n) + 1

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def send_to_prism(self, at: _DiffractingHost, origin: ProcessorId, node: int) -> None:
        """Route a token to a random prism slot of *node*."""
        slot = self._rng.randrange(self.prism_size)
        seq = self._next_seq
        self._next_seq += 1
        at.send(
            self.prism_host(node, slot),
            KIND_PRISM,
            {"node": node, "slot": slot, "origin": origin, "seq": seq},
        )

    def forward_to_child(
        self, at: _DiffractingHost, node: int, origin: ProcessorId, side: int
    ) -> None:
        """Move a token to child *side* (0/1) of *node*."""
        child = 2 * node + side
        if child >= self.leaf_count * 2:
            raise ProtocolError(f"node {node} has no child {side}")
        if child >= self.leaf_count:
            leaf = child - self.leaf_count
            at.send(self.exit_host(leaf), KIND_EXIT, {"leaf": leaf, "origin": origin})
        else:
            self.send_to_prism(at, origin, child)

    def pass_toggle(self, at: _DiffractingHost, node: int, origin: ProcessorId) -> None:
        """A token passes a node's toggle (no diffraction happened)."""
        toggle = self._toggles.get(node, 0)
        self._toggles[node] = toggle + 1
        self.forward_to_child(at, node=node, origin=origin, side=toggle % 2)

    def exit_rank(self, leaf: int) -> int:
        """Value offset of exit *leaf*: its bit-reversed index.

        A tree of toggles delivers sequential tokens to leaves in
        bit-reversed order (root alternates the top bit, each level the
        next bit down), so leaf ``b_{d-1}…b_0`` is the
        ``reverse(b)``-th exit in token order.
        """
        rank = 0
        for bit in range(self.depth):
            rank = (rank << 1) | ((leaf >> bit) & 1)
        return rank

    def exit_token(self, at: _DiffractingHost, leaf: int, origin: ProcessorId) -> None:
        """A token reached exit counter *leaf*: assign its value."""
        value = self.exit_rank(leaf) + self.leaf_count * self.exit_counts[leaf]
        self.exit_counts[leaf] += 1
        if at.pid == origin:
            self.deliver_result(origin, value)
        else:
            at.send(origin, KIND_VALUE, {"value": value})

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if pid not in self._hosts:
            raise ConfigurationError(f"processor {pid} is not a client (1..{self.n})")
        host = self._hosts[pid]
        self.network.inject(host.request_inc, op_index=op_index)
