"""A Byzantine-resilient counter: phase-king agreement per increment.

The paper's model assumes processors fail, at worst, by stopping.  This
family answers ROADMAP item 3's question — what does counting cost when
processors *lie*?  It ports the synchronous-counting core of the
Lenzen–Rybicki line ("Efficient Counting with Optimal Resilience"): all
``n`` processors replicate the counter value, and every ``inc`` runs one
phase-king agreement instance so the honest replicas move from ``v`` to
``v + 1`` in lockstep no matter what up to ``f < n/3`` Byzantine
replicas inject.

Protocol per operation (``rid`` = the op index):

1. **Propose** — the initiator broadcasts ``propose(rid)``.
2. **Echo** — on the proposal, every replica broadcasts its current
   count; after ``n - f`` echoes a replica sets its preference to the
   median (with all honest replicas agreed on ``v``, at most ``f`` liars
   cannot move the median of ``n - f`` values off ``v``).
3. **Phase king** — ``f + 1`` phases of three all-to-all rounds each
   (king of phase ``p`` is processor ``p``):

   * round A: broadcast the preference; a value seen ``>= n - 2f``
     times among the ``n - f`` collected becomes the *proposal*
     (two conflicting proposals would need ``2(n - 2f) <= n - f``
     votes, impossible for ``n > 3f`` — the quorum-intersection
     argument);
   * round B: broadcast the proposal; adopt a value seen ``f + 1``
     times (at least one honest proposer) and remember its *support*;
   * round C: broadcast the preference again; a replica whose support
     reached ``n - 2f`` keeps its value, anyone else adopts the king's
     round-C value if it arrived among the ``n - f`` collected.

4. **Result** — each replica commits ``count = v + 1`` and reports
   ``v`` to the initiator, which accepts a value once ``f + 1``
   distinct replicas vouch for it (at least one honest witness — a
   forged result can never reach the quorum).

Round synchronisation is by *message counting* (proceed on ``n - f``
messages per round, buffering rounds from faster peers).  Round
messages that race ahead of their propose are buffered too, and a
replica *joins* an instance it never saw the propose for once ``f + 1``
distinct senders vouch for it (Bracha-style amplification: one of them
must be honest) — without the join rule a Byzantine initiator could
withhold its propose from one honest replica and leave its count
permanently behind.  This makes the protocol driven correctly by every
runtime — the lockstep
``"sync"`` runtime realises the synchronous model the protocol is
specified in, and the event-driven/explorer runtimes exercise it under
arbitrary delivery orders.  When honest replicas start an instance
agreed (always, under sequential operation), the round-A/B thresholds
alone carry agreement *unconditionally*; the king round bounds
re-convergence when divergence is injected artificially (see the
``trusting-byz`` mutant).

Agreement instances are identified by ``(origin, rid)`` — the origin
being the *authentic* sender of the propose — so a corrupted rid from a
Byzantine initiator can only ever spawn a parallel bogus instance; it
cannot hijack, redirect or starve an honest initiator's instance.  A
Byzantine *initiator* may still corrupt its own ``propose`` and so
never collect a result quorum for the rid the driver asked for; drivers
treat compromised initiators' operations as optional, exactly like
permanently crashed processors.
"""

from __future__ import annotations

from collections import Counter as _Tally
from functools import partial

from repro.api import Capabilities, DistributedCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.messages import Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

KIND_PROPOSE = "propose"
KIND_ECHO = "echo"
KIND_VOTE = "vote"
KIND_RESULT = "result"

#: Round-step indices within a phase (payload field ``step``).
_STEP_A, _STEP_B, _STEP_C = 0, 1, 2


def _is_value(candidate: object) -> bool:
    """True for genuine integer protocol values (bools are not counts)."""
    return isinstance(candidate, int) and not isinstance(candidate, bool)


class _Instance:
    """One in-flight agreement instance (one ``inc``) at one replica.

    Identity is ``(origin, rid)``: the origin comes from the message
    layer's authentic sender field, so no payload corruption can merge
    two initiators' instances.
    """

    __slots__ = (
        "rid",
        "origin",
        "phase",
        "step",
        "pref",
        "proposal",
        "support",
        "buffers",
        "done",
    )

    def __init__(self, rid: int, origin: ProcessorId) -> None:
        self.rid = rid
        self.origin = origin
        self.phase = 0  # phase 0 = the echo round
        self.step = _STEP_A
        self.pref: int = 0
        self.proposal: int | None = None
        self.support = 0
        # (phase, step) -> sender -> reported value.  Messages for
        # rounds this replica has not reached yet buffer here; keys a
        # corrupted payload invents are never consulted.
        self.buffers: dict[tuple[int, int], dict[ProcessorId, object]] = {}
        self.done = False


class _ByzReplica(Processor):
    """One replica: holds a full copy of the count, votes on every inc."""

    def __init__(self, pid: ProcessorId, counter: "ByzantineCounter") -> None:
        super().__init__(pid)
        self._counter = counter
        self.count = 0
        self._instances: dict[tuple[ProcessorId, int], _Instance] = {}
        self._finished: set[tuple[ProcessorId, int]] = set()
        # Commits tallied by instance origin: a Byzantine initiator can
        # spawn extra (bogus-rid) instances, which commit as *its* incs;
        # the validity oracle uses this to bound honest values.
        self.commits_by_origin: dict[ProcessorId, int] = {}
        # Round messages that raced ahead of their propose: under
        # adversarial delivery an echo/vote can arrive before the
        # propose that creates its instance; dropping it would stall
        # the n-f quorum forever (a liveness hole, not a safety one).
        self._pending: dict[
            tuple[ProcessorId, int],
            list[tuple[ProcessorId, int, int, object]],
        ] = {}
        # Initiator-side result collection: rid -> value -> voucher pids.
        self._result_votes: dict[int, dict[int, set[ProcessorId]]] = {}
        self._delivered: set[int] = set()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def request_inc(self, rid: int) -> None:
        """Initiate one ``inc`` (local event, not a message)."""
        self._broadcast(KIND_PROPOSE, {"rid": rid})
        self._on_propose(self.pid, rid)

    def on_message(self, message: Message) -> None:
        kind = message.kind
        payload = message.payload
        if kind == KIND_VOTE:
            self._on_round(
                message.sender,
                payload.get("origin"),
                payload.get("rid"),
                payload.get("phase"),
                payload.get("step"),
                payload.get("value"),
            )
        elif kind == KIND_ECHO:
            self._on_round(
                message.sender, payload.get("origin"), payload.get("rid"),
                0, _STEP_A, payload.get("value"),
            )
        elif kind == KIND_PROPOSE:
            self._on_propose(message.sender, payload.get("rid"))
        elif kind == KIND_RESULT:
            self._on_result(
                message.sender, payload.get("rid"), payload.get("value")
            )
        else:
            raise ProtocolError(
                f"byz-counter: unknown message kind {message.kind!r}"
            )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def _broadcast(self, kind: str, payload: dict) -> None:
        for pid in self._counter.client_ids():
            if pid != self.pid:
                self.send(pid, kind, payload)

    def _record_own(self, inst: _Instance, value: object) -> None:
        key = (inst.phase, inst.step)
        inst.buffers.setdefault(key, {})[self.pid] = value

    def _on_propose(self, origin: ProcessorId, rid: object) -> None:
        if not _is_value(rid):
            return
        key = (origin, rid)
        if key in self._finished or key in self._instances:
            return
        inst = _Instance(rid, origin)
        self._instances[key] = inst
        self._broadcast(
            KIND_ECHO, {"rid": rid, "origin": origin, "value": self.count}
        )
        self._record_own(inst, self.count)
        for sender, phase, step, value in self._pending.pop(key, ()):
            inst.buffers.setdefault((phase, step), {})[sender] = value
        self._advance(inst)

    def _on_round(
        self,
        sender: ProcessorId,
        origin: object,
        rid: object,
        phase: object,
        step: object,
        value: object,
    ) -> None:
        if (
            not _is_value(origin)
            or not _is_value(rid)
            or not _is_value(phase)
            or not _is_value(step)
        ):
            return
        key = (origin, rid)
        inst = self._instances.get(key)
        if inst is None:
            if key in self._finished:
                return
            pending = self._pending.setdefault(key, [])
            pending.append((sender, phase, step, value))
            if len({entry[0] for entry in pending}) > self._counter.f:
                # f+1 distinct senders vouch for this instance: at
                # least one of them is honest, so a genuine propose
                # exists somewhere — join without waiting for ours
                # (it may have been withheld by a Byzantine origin).
                self._on_propose(origin, rid)
            return
        if inst.done:
            return
        inst.buffers.setdefault((phase, step), {})[sender] = value
        if (phase, step) == (inst.phase, inst.step):
            self._advance(inst)

    def _advance(self, inst: _Instance) -> None:
        counter = self._counter
        need = counter.need
        f = counter.f
        while not inst.done:
            votes = inst.buffers.get((inst.phase, inst.step))
            if votes is None or len(votes) < need:
                return
            values = [v for v in votes.values() if _is_value(v)]
            if inst.phase == 0:
                # Echo: resynchronise on the median of n-f reported
                # counts — f liars cannot move it off the honest value.
                inst.pref = (
                    sorted(values)[len(values) // 2] if values else self.count
                )
                self._enter(inst, 1, _STEP_A)
            elif inst.step == _STEP_A:
                best, top = self._plurality(values)
                inst.proposal = best if top >= need - f else None
                self._enter(inst, inst.phase, _STEP_B)
            elif inst.step == _STEP_B:
                best, top = self._plurality(values)
                if top >= f + 1:
                    inst.pref = best  # type: ignore[assignment]
                    inst.support = top
                else:
                    inst.support = 0
                self._enter(inst, inst.phase, _STEP_C)
            else:  # _STEP_C — the king round
                if inst.support < need - f:
                    king_value = votes.get(inst.phase)
                    if _is_value(king_value):
                        inst.pref = king_value
                if inst.phase == counter.phases:
                    self._finish(inst)
                else:
                    self._enter(inst, inst.phase + 1, _STEP_A)

    @staticmethod
    def _plurality(values: list[int]) -> tuple[int | None, int]:
        """The most common value (ties: smallest) and its multiplicity."""
        if not values:
            return None, 0
        tally = _Tally(values)
        top = max(tally.values())
        return min(v for v, c in tally.items() if c == top), top

    def _enter(self, inst: _Instance, phase: int, step: int) -> None:
        inst.phase = phase
        inst.step = step
        value = inst.proposal if step == _STEP_B else inst.pref
        self._broadcast(
            KIND_VOTE,
            {
                "rid": inst.rid,
                "origin": inst.origin,
                "phase": phase,
                "step": step,
                "value": value,
            },
        )
        self._record_own(inst, value)

    def _finish(self, inst: _Instance) -> None:
        inst.done = True
        agreed = inst.pref
        self.count = agreed + 1
        self.commits_by_origin[inst.origin] = (
            self.commits_by_origin.get(inst.origin, 0) + 1
        )
        key = (inst.origin, inst.rid)
        self._finished.add(key)
        del self._instances[key]
        if inst.origin == self.pid:
            self._add_result_vote(inst.rid, agreed, self.pid)
        else:
            self.send(
                inst.origin, KIND_RESULT, {"rid": inst.rid, "value": agreed}
            )

    def _on_result(
        self, sender: ProcessorId, rid: object, value: object
    ) -> None:
        if not _is_value(rid) or not _is_value(value):
            return
        self._add_result_vote(rid, value, sender)

    def _add_result_vote(
        self, rid: int, value: int, sender: ProcessorId
    ) -> None:
        if rid in self._delivered:
            return
        vouchers = self._result_votes.setdefault(rid, {}).setdefault(
            value, set()
        )
        vouchers.add(sender)
        if len(vouchers) >= self._counter.result_quorum:
            self._delivered.add(rid)
            self._result_votes.pop(rid, None)
            self._counter.deliver_result(self.pid, value)


class ByzantineCounter(DistributedCounter):
    """Replicated counter agreeing on every increment via phase king.

    Args:
        network: simulator to wire into.
        n: number of replica/client processors (ids 1..n).
        f: declared Byzantine tolerance.  ``0`` (the default) means
            *auto*: the maximum the population admits, ``(n - 1) // 3``.
            An explicit ``f`` must satisfy ``n > 3f``.
    """

    name = "byz-counter"
    capabilities = Capabilities(
        sequential_only=True,
        tolerates_byzantine=True,
        restriction=(
            "phase-king agreement runs one inc at a time; concurrent "
            "instances would race on the replicated count"
        ),
    )

    def __init__(self, network: Network, n: int, f: int = 0) -> None:
        super().__init__(network, n)
        if f < 0:
            raise ConfigurationError(
                f"byz-counter tolerance must be >= 0, got f={f}"
            )
        if f == 0:
            f = (n - 1) // 3
        elif n <= 3 * f:
            raise ConfigurationError(
                f"byz-counter needs n > 3f: n={n} cannot tolerate f={f} "
                f"(max f for this n is {(n - 1) // 3})"
            )
        self.f = f
        self.phases = f + 1
        self.need = n - f
        self.result_quorum = f + 1
        self._replicas: dict[ProcessorId, _ByzReplica] = {}
        for pid in self.client_ids():
            replica = _ByzReplica(pid, self)
            network.register(replica)
            self._replicas[pid] = replica

    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if pid not in self._replicas:
            raise ConfigurationError(
                f"processor {pid} is not a replica of this counter"
            )
        replica = self._replicas[pid]
        self.network.inject(
            partial(replica.request_inc, op_index), op_index=op_index
        )

    def replica_counts(self) -> dict[ProcessorId, int]:
        """Each replica's committed count (the agreement oracle's view)."""
        return {pid: r.count for pid, r in self._replicas.items()}

    def commit_origins(self) -> dict[ProcessorId, dict[ProcessorId, int]]:
        """Per-replica commit tallies keyed by instance origin.

        A Byzantine initiator's corrupted propose can spawn extra
        agreement instances — each a legitimate ``inc`` *by that liar*
        as far as honest replicas can tell.  The validity oracle adds
        commits traceable to Byzantine origins to its upper bound, so
        honest values inflated by a liar's incs pass while genuinely
        invented values still fail.
        """
        return {
            pid: dict(r.commits_by_origin)
            for pid, r in self._replicas.items()
        }
