"""Arrow-protocol counter: token mobility via path reversal (Raymond 89).

A different point in the design space: instead of a fixed value-holder,
the counter value travels with a *token*.  A binary tree spans the
processors; every node keeps an *arrow* pointing toward the current
token owner.  An ``inc`` request climbs along arrows, reversing each
arrow to point back toward the requester as it passes; when it reaches
the owner, the token (carrying the value) is sent directly to the
requester, who increments and becomes the new owner.

Why it belongs in this reproduction: the protocol's load is *order
sensitive*.  Requests between nearby leaves never reach the top of the
tree, so the friendly identity order produces O(1) load on the root
host — seemingly beating the paper's bound.  It does not, of course:
the Lower Bound Theorem quantifies over operation orders, and an
adversarial order (alternating across the root) drives the root host
straight back to Θ(n).  Benchmark E13 plays both orders plus the §3
greedy adversary against it.

Restriction: like the paper's model, operations are sequential (one
``inc`` finishes before the next starts).  Concurrent requests would
need Raymond's request queues; the sequential reproduction keeps the
protocol minimal and raises on overlap instead of misbehaving silently.
"""

from __future__ import annotations

from repro.api import Capabilities, DistributedCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.messages import Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

KIND_REQUEST = "arrow-request"
KIND_TOKEN = "arrow-token"

_HERE = -1
"""Arrow value meaning: the token is at (or below, via the leaf) this node."""


class _ArrowHost(Processor):
    """A processor hosting tree-node arrow state and its own leaf."""

    def __init__(self, pid: ProcessorId, counter: "ArrowCounter") -> None:
        super().__init__(pid)
        self._counter = counter
        # Arrow per hosted tree node: node -> neighbour node id, or _HERE.
        self.arrows: dict[int, int] = {}
        # Leaf-side state.
        self.has_token = False
        self.value_in_token = 0

    # -- client side -----------------------------------------------------
    def request_inc(self) -> None:
        if self.has_token:
            # Owner increments locally: no messages, like the central
            # counter's server case.
            value = self.value_in_token
            self.value_in_token += 1
            self._counter.deliver_result(self.pid, value)
            return
        # The entry leaf is co-hosted with the client: its step is a
        # local action, not a message (the first message is the hop to
        # the parent's host).
        entry = self._counter.leaf_node_of(self.pid)
        self._counter.host_step(self, node=entry, origin=self.pid, came_from=None)

    # -- node side -------------------------------------------------------
    def on_message(self, message: Message) -> None:
        if message.kind == KIND_REQUEST:
            self._counter.host_step(
                self,
                node=message.payload["node"],
                origin=message.payload["origin"],
                came_from=message.payload["came_from"],
            )
        elif message.kind == KIND_TOKEN:
            self.has_token = True
            self.value_in_token = message.payload["value"]
            value = self.value_in_token
            self.value_in_token += 1
            self._counter.deliver_result(self.pid, value)
        else:
            raise ProtocolError(f"arrow counter: unknown kind {message.kind!r}")

    def _forward_request(
        self, node: int, origin: ProcessorId, came_from: int | None
    ) -> None:
        """Send the climbing request to the host of *node*."""
        self.send(
            self._counter.host_of(node),
            KIND_REQUEST,
            {"node": node, "origin": origin, "came_from": came_from},
        )


class ArrowCounter(DistributedCounter):
    """Token-mobile counter on a binary spanning tree with path reversal.

    Args:
        network: simulator to wire into.
        n: number of client processors (1..n).
        initial_owner: leaf that starts with the token (and value 0).
    """

    name = "arrow"
    capabilities = Capabilities(
        sequential_only=True,
        restriction=(
            "the arrow protocol serializes operations: overlapping incs "
            "would need Raymond-style request queues, which the paper's "
            "sequential model does not include"
        ),
    )

    def __init__(
        self, network: Network, n: int, initial_owner: ProcessorId = 1
    ) -> None:
        super().__init__(network, n)
        if not 1 <= initial_owner <= n:
            raise ConfigurationError(
                f"initial owner {initial_owner} outside 1..{n}"
            )
        self.initial_owner = initial_owner
        self._hosts: dict[ProcessorId, _ArrowHost] = {}
        for pid in self.client_ids():
            host = _ArrowHost(pid, self)
            network.register(host)
            self._hosts[pid] = host
        self._build_tree()
        self._in_flight = False

    # ------------------------------------------------------------------
    # Topology: a heap-shaped binary tree with one leaf node per client.
    # Node ids: 1..(2^ceil(log2 n) * 2 - 1) heap indices; leaves at the
    # bottom level map to clients (extra leaves unused).
    # ------------------------------------------------------------------
    def _build_tree(self) -> None:
        leaves = 1
        while leaves < self.n:
            leaves *= 2
        self.leaf_base = leaves  # heap index of the first leaf
        self.node_count = 2 * leaves - 1
        # Arrows: every node initially points toward the initial owner's
        # leaf node.
        owner_leaf = self.leaf_node_of(self.initial_owner)
        owner_path = set(self._path_to_root(owner_leaf))
        for node in range(1, self.node_count + 1):
            host = self._hosts[self.host_of(node)]
            if node in owner_path:
                # Point down toward the owner (child on the path), or
                # _HERE at the owner's leaf itself.
                if node == owner_leaf:
                    host.arrows[node] = _HERE
                else:
                    child = self._child_toward(node, owner_leaf)
                    host.arrows[node] = child
            else:
                host.arrows[node] = self._parent(node)
        self._hosts[self.initial_owner].has_token = True
        self._hosts[self.initial_owner].value_in_token = 0

    def _parent(self, node: int) -> int:
        return node // 2

    def _child_toward(self, node: int, descendant: int) -> int:
        child = descendant
        while child // 2 != node:
            child //= 2
        return child

    def _path_to_root(self, node: int) -> list[int]:
        path = []
        while node >= 1:
            path.append(node)
            node //= 2
        return path

    def leaf_node_of(self, pid: ProcessorId) -> int:
        """Heap index of client *pid*'s leaf node."""
        return self.leaf_base + pid - 1

    def host_of(self, node: int) -> ProcessorId:
        """Processor hosting tree node *node*.

        Leaves are hosted by their own client; inner nodes round-robin.
        """
        if node >= self.leaf_base:
            pid = node - self.leaf_base + 1
            return pid if pid <= self.n else ((pid - 1) % self.n) + 1
        return ((node - 1) % self.n) + 1

    # ------------------------------------------------------------------
    # Protocol step, executed inside host handlers
    # ------------------------------------------------------------------
    def host_step(
        self,
        at: _ArrowHost,
        node: int,
        origin: ProcessorId,
        came_from: int | None,
    ) -> None:
        """One hop of a climbing request at *node* (hosted by *at*)."""
        arrow = at.arrows.get(node)
        if arrow is None:
            raise ProtocolError(f"host {at.pid} does not own node {node}")
        # Reverse: the arrow now points back toward the requester.
        if came_from is None:
            # The request entered at the origin's own leaf.
            at.arrows[node] = _HERE if node >= self.leaf_base else came_from
        else:
            at.arrows[node] = came_from
        if arrow == _HERE:
            # This node is the owner's leaf: the owner hands the token
            # directly to the requester.
            owner_pid = node - self.leaf_base + 1
            owner_host = self._hosts[owner_pid]
            if not owner_host.has_token:
                raise ProtocolError(
                    f"arrow pointed HERE at {node} but processor "
                    f"{owner_pid} has no token"
                )
            owner_host.has_token = False
            if owner_pid == origin:
                # Degenerate self-request (cannot happen: owners answer
                # locally), kept as a guard.
                raise ProtocolError("owner requested the token it holds")
            at.send(origin, KIND_TOKEN, {"value": owner_host.value_in_token})
            return
        # Forward along the old arrow.
        at.send(
            self.host_of(arrow),
            KIND_REQUEST,
            {"node": arrow, "origin": origin, "came_from": node},
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if pid not in self._hosts:
            raise ConfigurationError(f"processor {pid} is not a client (1..{self.n})")
        host = self._hosts[pid]
        self.network.inject(host.request_inc, op_index=op_index)

    @property
    def owner(self) -> ProcessorId:
        """The client currently holding the token (test introspection)."""
        for pid, host in self._hosts.items():
            if host.has_token:
                return pid
        raise ProtocolError("no processor holds the token")

    @property
    def value(self) -> int:
        """Current counter value, read from the token."""
        return self._hosts[self.owner].value_in_token
