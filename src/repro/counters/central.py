"""The central counter: message-optimal, bottleneck-pessimal.

This is the strawman from the paper's introduction: "a data structure
implementing a distributed counter could be message optimal by just
storing the counter value with a single processor and having all other
processors access the counter with only one message exchange ... This
solution does not scale" (§1).

Exactly two messages per remote ``inc`` (request + reply), zero for the
server's own ``inc`` — but the server's load is ``2(n-1)`` over the
one-shot workload, a Θ(n) bottleneck.  Every comparison in the benchmark
suite is anchored against this implementation.
"""

from __future__ import annotations

from repro.api import Capabilities, DistributedCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.messages import Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

KIND_INC = "inc"
KIND_VALUE = "value"


class _CentralClient(Processor):
    """A client: forwards ``inc`` requests to the server, receives values."""

    def __init__(self, pid: ProcessorId, counter: "CentralCounter") -> None:
        super().__init__(pid)
        self._counter = counter

    def request_inc(self) -> None:
        """Initiate one ``inc`` (local event, not a message)."""
        if self.pid == self._counter.server_id:
            # The server increments locally: it already holds the value.
            value = self._counter.take_value()
            self._counter.deliver_result(self.pid, value)
            return
        self.send(self._counter.server_id, KIND_INC, {})

    def on_message(self, message: Message) -> None:
        if message.kind == KIND_VALUE:
            self._counter.deliver_result(self.pid, message.payload["value"])
            return
        if message.kind == KIND_INC:
            # Only the server receives inc requests.
            if self.pid != self._counter.server_id:
                raise ProtocolError(
                    f"non-server processor {self.pid} received an inc request"
                )
            value = self._counter.take_value()
            self.send(message.sender, KIND_VALUE, {"value": value})
            return
        raise ProtocolError(f"central counter: unknown message kind {message.kind!r}")


class CentralCounter(DistributedCounter):
    """Counter value held by a single server processor.

    Args:
        network: simulator to wire into.
        n: number of client processors (ids 1..n).
        server_id: which processor holds the value (defaults to 1).
    """

    name = "central"
    capabilities = Capabilities()

    def __init__(self, network: Network, n: int, server_id: ProcessorId = 1) -> None:
        super().__init__(network, n)
        if not 1 <= server_id <= n:
            raise ConfigurationError(
                f"server id {server_id} outside processor range 1..{n}"
            )
        self.server_id = server_id
        self._value = 0
        self._clients: dict[ProcessorId, _CentralClient] = {}
        for pid in self.client_ids():
            client = _CentralClient(pid, self)
            network.register(client)
            self._clients[pid] = client

    def take_value(self) -> int:
        """Return the current value and increment (server-side helper)."""
        value = self._value
        self._value += 1
        return value

    @property
    def value(self) -> int:
        """Current counter value (test introspection only)."""
        return self._value

    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if pid not in self._clients:
            raise ConfigurationError(f"processor {pid} is not a client of this counter")
        client = self._clients[pid]
        self.network.inject(client.request_inc, op_index=op_index)
