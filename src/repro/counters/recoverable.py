"""Crash-tolerant counter variants: hot-standby central, bypassing tree.

The paper's protocols assume the §2 failure-free model; PR 3's fault
layer lets the adversary crash processors, and these variants are the
protocol-side answer.  Both implement the
:class:`~repro.sim.recovery.Recoverable` contract and declare
``Capabilities.tolerates_crash``, so the registry's
:class:`~repro.registry.RunSession` wires them to a
:class:`~repro.sim.recovery.RecoveryManager` whenever the fault plan
contains crash rules.

``central[standby]`` — :class:`StandbyCentralCounter`
    The central counter with a hot standby: the primary assigns values
    and *chain-replicates* each assignment to the standby, which is the
    only role that answers clients.  A client's value therefore exists
    on two processors before anyone sees it, which is what makes a
    primary crash survivable.  The failure detector triggers failover
    (standby promotes itself under a higher epoch and announces to all
    clients); end-to-end client retries plus request-id deduplication
    give exactly-once results under drops, duplicates, partitions and
    crashes — values are never skipped and never handed out twice.

``combining-tree[bypass]`` — :class:`BypassCombiningTreeCounter`
    The combining tree where a crashed host is *routed around*: every
    requester re-links to its first live ancestor (or straight to the
    root), in-flight combines whose upward request targeted the dead
    host are re-issued under fresh batch ids, and stale grants for
    re-issued batches are silently discarded instead of raising.
    Semantics are at-most-once: a value parked in a crashed combine can
    be *burned* (a gap in the handed-out sequence), but no value is ever
    delivered twice — the uniqueness half of counter correctness
    survives, which is the honest best a combining structure offers
    without replicating every node.

Both variants are loss-tolerant *bare* (no
:class:`~repro.sim.transport.ReliableTransport` needed): their
end-to-end retries are the recovery mechanism, so the transport's
per-link retransmission would be redundant — and against a permanently
crashed peer it would abort the run with
:class:`~repro.errors.DeliveryAbandonedError` before the failover had a
chance to make the peer irrelevant.
"""

from __future__ import annotations

from typing import Any

from repro.api import Capabilities, DistributedCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.counters.combining_tree import (
    DEFAULT_WINDOW,
    KIND_REQUEST,
    CombiningTreeCounter,
    _CombiningHost,
    _NodeState,
)
from repro.sim.messages import Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor
from repro.sim.recovery import Recoverable, RecoveryManager

__all__ = ["BypassCombiningTreeCounter", "StandbyCentralCounter"]

KIND_SC_INC = "sc.inc"
KIND_SC_COMMIT = "sc.commit"
KIND_SC_RESULT = "sc.result"
KIND_SC_ANNOUNCE = "sc.announce"
KIND_SC_REDIRECT = "sc.redirect"
KIND_SC_JOIN = "sc.join"
KIND_SC_SNAPSHOT = "sc.snapshot"

DEFAULT_RETRY = 20.0
"""Default end-to-end retry timeout for the standby central counter:
comfortably above one clean request round trip (two hops) under every
built-in delivery policy, low enough that a handful of retries bridge
any finite crash window."""

DEFAULT_TREE_RETRY = 90.0
"""Default end-to-end retry timeout for the bypass combining tree.
A clean combining-tree operation spans several up-and-down hops plus
a combining window per level (~40 time units at n=8 under random
delays), so the tree's timeout must sit well above that — a spurious
retry is not just wasted traffic here, it burns a counter value."""

RETRY_CAP = 25
"""Attempts per operation before a client gives up silently.  Spans
hundreds of simulated time units — only a destination that is dead
forever (and never failed over) exhausts it."""


class _StandbyNode(Processor):
    """One processor of the standby-replicated central counter.

    Every pid is a client; pids holding the primary/standby role layer
    the server behaviour on top.  Roles move at runtime (promotion,
    demotion, rejoin), so behaviour keys off ``self._role``, never off
    the pid.
    """

    def __init__(self, pid: ProcessorId, counter: "StandbyCentralCounter") -> None:
        super().__init__(pid)
        self._counter = counter
        self._role = "client"
        self._epoch = 1
        self._believed_primary = counter.primary_id
        # Primary state.  `_standby_pid` is this node's *own view* of who
        # mirrors it — deliberately not the counter's global bookkeeping,
        # so a deposed primary's stale pointer sends its commits to the
        # new primary, which rejects them by epoch and demotes it.
        self._next_value = 0
        self._assigned: dict[tuple[int, int], int] = {}
        self._standby_pid: ProcessorId | None = None
        self._solo = False
        # Standby state.
        self._mirror_next = 0
        self._committed: dict[tuple[int, int], int] = {}
        # Client state: rid -> retry attempts so far.
        self._next_seq = 0
        self._outstanding: dict[tuple[int, int], int] = {}
        self._joining = False

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def request_inc(self) -> None:
        rid = (self.pid, self._next_seq)
        self._next_seq += 1
        self._outstanding[rid] = 0
        self._send_inc(rid)
        self._schedule_retry(rid)

    def _send_inc(self, rid: tuple[int, int]) -> None:
        # Retries rotate through the believed primary and both initial
        # server seats, so a lost failover announcement cannot strand a
        # client retrying into a permanently dead ex-primary.
        counter = self._counter
        candidates = list(
            dict.fromkeys(
                (self._believed_primary, counter.primary_id, counter.standby_id)
            )
        )
        target = candidates[self._outstanding.get(rid, 0) % len(candidates)]
        self.send(target, KIND_SC_INC, {"rid": rid})

    def _schedule_retry(self, rid: tuple[int, int]) -> None:
        self.network.inject(
            lambda: self._retry(rid),
            op_index=self.network.active_op,
            delay=self._counter.retry,
        )

    def _retry(self, rid: tuple[int, int]) -> None:
        attempts = self._outstanding.get(rid)
        if attempts is None:
            return  # completed
        if attempts + 1 >= RETRY_CAP:
            return  # destination dead forever; stop generating traffic
        self._outstanding[rid] = attempts + 1
        self._send_inc(rid)
        self._schedule_retry(rid)

    def _on_result(self, message: Message) -> None:
        rid = message.payload["rid"]
        if self._outstanding.pop(rid, None) is not None:
            self._counter.deliver_result(self.pid, message.payload["value"])
        # else: duplicate of an already-delivered result — drop.

    # ------------------------------------------------------------------
    # Primary side
    # ------------------------------------------------------------------
    def _on_inc(self, message: Message) -> None:
        if self._role != "primary":
            self.send(
                message.sender,
                KIND_SC_REDIRECT,
                {"primary": self._believed_primary, "epoch": self._epoch},
            )
            return
        rid = message.payload["rid"]
        value = self._assigned.get(rid)
        if value is None:
            value = self._next_value
            self._next_value += 1
            self._assigned[rid] = value
            self._checkpoint()
        if self._solo:
            # No standby to replicate to: answer directly.  Retried rids
            # re-send the same assigned value, keeping exactly-once.
            self.send(rid[0], KIND_SC_RESULT, {"rid": rid, "value": value})
        elif self._standby_pid is not None:
            self.send(
                self._standby_pid,
                KIND_SC_COMMIT,
                {"rid": rid, "value": value, "epoch": self._epoch},
            )
        # else: roles are mid-shuffle (e.g. this node only *thinks* it is
        # primary); stay silent — answering directly here is exactly the
        # split-brain that duplicates values.  The client retries.

    def _checkpoint(self) -> None:
        manager = self._counter.recovery_manager
        if manager is not None:
            # Stable-storage write *before* the commit leaves this
            # processor: a post-crash restore can never reuse a value.
            manager.save_checkpoint(
                self.pid,
                {"next_value": self._next_value, "epoch": self._epoch},
            )

    # ------------------------------------------------------------------
    # Standby side
    # ------------------------------------------------------------------
    def _on_commit(self, message: Message) -> None:
        epoch = message.payload["epoch"]
        if epoch < self._epoch:
            # A deposed primary does not know it was deposed: tell it.
            self.send(
                message.sender,
                KIND_SC_ANNOUNCE,
                {"primary": self._believed_primary, "epoch": self._epoch},
            )
            return
        if epoch > self._epoch:
            self._epoch = epoch
            self._believed_primary = message.sender
        rid = message.payload["rid"]
        committed = self._committed.get(rid)
        if committed is None:
            committed = message.payload["value"]
            self._committed[rid] = committed
            if committed + 1 > self._mirror_next:
                self._mirror_next = committed + 1
        # Answer with the *committed* value: a retried commit after a
        # failover round-trip must not hand out a second value.
        self.send(rid[0], KIND_SC_RESULT, {"rid": rid, "value": committed})

    # ------------------------------------------------------------------
    # Epoch / role traffic
    # ------------------------------------------------------------------
    def _learn_primary(self, primary: ProcessorId, epoch: int) -> None:
        if epoch < self._epoch:
            return
        if epoch == self._epoch and primary == self._believed_primary:
            return  # nothing new — resending here would loop forever
        self._epoch = epoch
        self._believed_primary = primary
        if self._role == "primary" and primary != self.pid:
            # Demoted.  Uncommitted assignments die with the role (their
            # clients retry against the new primary); the assignment map
            # must go too, or a later re-promotion could resurrect stale
            # values.
            self._role = "client"
            self._assigned.clear()
            self._solo = False
        if self._joining and primary != self.pid:
            self.send(primary, KIND_SC_JOIN, {})
        # Nudge outstanding ops toward the newly learned primary.
        for rid in list(self._outstanding):
            self.send(primary, KIND_SC_INC, {"rid": rid})

    def _on_join(self, message: Message) -> None:
        if self._role != "primary":
            self.send(
                message.sender,
                KIND_SC_REDIRECT,
                {"primary": self._believed_primary, "epoch": self._epoch},
            )
            return
        self._standby_pid = message.sender
        self._solo = False
        self._counter.adopt_standby(message.sender)
        self.send(
            message.sender,
            KIND_SC_SNAPSHOT,
            {"next_value": self._next_value, "epoch": self._epoch},
        )

    def _on_snapshot(self, message: Message) -> None:
        epoch = message.payload["epoch"]
        if epoch < self._epoch:
            return  # stale snapshot from a deposed primary
        self._joining = False
        self._role = "standby"
        self._epoch = epoch
        self._believed_primary = message.sender
        self._mirror_next = message.payload["next_value"]
        self._committed.clear()
        self._assigned.clear()
        self._solo = False

    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == KIND_SC_RESULT:
            self._on_result(message)
        elif kind == KIND_SC_INC:
            self._on_inc(message)
        elif kind == KIND_SC_COMMIT:
            self._on_commit(message)
        elif kind in (KIND_SC_ANNOUNCE, KIND_SC_REDIRECT):
            self._learn_primary(
                message.payload["primary"], message.payload["epoch"]
            )
        elif kind == KIND_SC_JOIN:
            self._on_join(message)
        elif kind == KIND_SC_SNAPSHOT:
            self._on_snapshot(message)
        else:
            raise ProtocolError(
                f"central[standby]: unknown message kind {kind!r}"
            )


class StandbyCentralCounter(DistributedCounter, Recoverable):
    """Central counter with a hot standby and detector-driven failover.

    Message flow per ``inc`` (clean run)::

        client --sc.inc--> primary --sc.commit--> standby --sc.result--> client

    Three messages instead of the bare central counter's two: the extra
    hop is the price of a value existing on two processors before it is
    visible.  On a primary crash the standby promotes itself (epoch
    bump, announcement broadcast), clients re-route, and every value the
    old primary committed is preserved; values assigned but never
    committed are reassigned — nobody ever saw them, so exactly-once
    holds.

    Args:
        network: simulator to wire into (the raw network; the variant
            carries its own retries).
        n: number of client processors (ids 1..n, must be >= 2).
        primary_id: initial primary seat (default 1).
        standby_id: initial standby seat (default 2).
        retry: end-to-end client retry timeout.
    """

    name = "central[standby]"
    capabilities = Capabilities(
        tolerates_message_loss=True,
        tolerates_crash=True,
        restriction=(
            "needs n >= 2 (a primary and a hot standby); exactly-once "
            "via request-id deduplication"
        ),
    )

    def __init__(
        self,
        network: Network,
        n: int,
        primary_id: ProcessorId = 1,
        standby_id: ProcessorId = 2,
        retry: float = DEFAULT_RETRY,
    ) -> None:
        super().__init__(network, n)
        if n < 2:
            raise ConfigurationError(
                f"central[standby] needs n >= 2 (primary + standby), got {n}"
            )
        if not 1 <= primary_id <= n or not 1 <= standby_id <= n:
            raise ConfigurationError(
                f"server seats must lie in 1..{n}, got primary={primary_id} "
                f"standby={standby_id}"
            )
        if primary_id == standby_id:
            raise ConfigurationError(
                "primary and standby must be different processors"
            )
        if retry <= 0:
            raise ConfigurationError(f"retry must be positive, got {retry}")
        self.primary_id = primary_id
        self.standby_id = standby_id
        self.retry = float(retry)
        self._current_primary = primary_id
        self._current_standby: ProcessorId | None = standby_id
        self._recovery_manager: RecoveryManager | None = None
        self._nodes: dict[ProcessorId, _StandbyNode] = {}
        for pid in self.client_ids():
            node = _StandbyNode(pid, self)
            network.register(node)
            self._nodes[pid] = node
        self._nodes[primary_id]._role = "primary"
        self._nodes[primary_id]._standby_pid = standby_id
        self._nodes[standby_id]._role = "standby"

    # ------------------------------------------------------------------
    # Role bookkeeping
    # ------------------------------------------------------------------
    @property
    def current_primary(self) -> ProcessorId:
        """The pid currently holding the primary role."""
        return self._current_primary

    @property
    def current_standby(self) -> ProcessorId | None:
        """The pid currently mirroring, or ``None`` while solo."""
        return self._current_standby

    @property
    def recovery_manager(self) -> RecoveryManager | None:
        """The attached manager (``None`` on crash-free runs)."""
        return self._recovery_manager

    def adopt_standby(self, pid: ProcessorId) -> None:
        """The primary accepted *pid* as its (re)joined standby."""
        self._current_standby = pid

    # ------------------------------------------------------------------
    # Recoverable contract
    # ------------------------------------------------------------------
    def critical_pids(self) -> tuple[ProcessorId, ...]:
        return (self.primary_id, self.standby_id)

    def attach_recovery(self, manager: RecoveryManager) -> None:
        self._recovery_manager = manager

    def on_processor_suspected(self, pid: ProcessorId, time: float) -> None:
        if pid == self._current_primary:
            standby_pid = self._current_standby
            if standby_pid is None:
                return  # both seats down: nothing left to promote
            standby = self._nodes[standby_pid]
            standby._epoch += 1
            standby._role = "primary"
            standby._next_value = max(standby._mirror_next, standby._next_value)
            standby._believed_primary = standby_pid
            standby._standby_pid = None
            standby._solo = True  # nobody mirrors the new primary (yet)
            self._current_primary = standby_pid
            self._current_standby = None
            if self._recovery_manager is not None:
                self._recovery_manager.note_failover(pid, standby_pid)
            for client in self.client_ids():
                if client != standby_pid:
                    standby.send(
                        client,
                        KIND_SC_ANNOUNCE,
                        {"primary": standby_pid, "epoch": standby._epoch},
                    )
        elif pid == self._current_standby:
            self._current_standby = None
            primary = self._nodes[self._current_primary]
            primary._standby_pid = None
            primary._solo = True

    def on_processor_restored(self, pid: ProcessorId, time: float) -> None:
        self._reattach(pid)

    def on_processor_recovered(
        self, pid: ProcessorId, time: float, checkpoint: Any
    ) -> None:
        node = self._nodes[pid]
        if checkpoint is not None:
            # The stable-storage floor: never reuse a value the crashed
            # incarnation may have assigned.
            node._next_value = max(node._next_value, checkpoint["next_value"])
            node._epoch = max(node._epoch, checkpoint["epoch"])
        if pid != self._current_primary:
            # A recovering replica never resumes leadership on its own:
            # anything short of that reopens split brain.  (If nobody
            # failed over — the crash was shorter than detection — the
            # seat is still formally the primary and keeps its role.)
            node._role = "client"
            node._assigned.clear()
            node._solo = False
        self._reattach(pid)

    def _reattach(self, pid: ProcessorId) -> None:
        """A server seat is back: rejoin it as standby if the seat is open."""
        if pid == self._current_primary or pid == self._current_standby:
            return
        if pid not in (self.primary_id, self.standby_id):
            return  # plain clients recover by their own retries
        node = self._nodes[pid]
        node._joining = True
        # Probe both initial seats: one of them is the primary or knows
        # who is (a non-primary seat redirects, which re-issues the join).
        for seat in (self.primary_id, self.standby_id):
            if seat != pid:
                node.send(seat, KIND_SC_JOIN, {})

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if pid not in self._nodes:
            raise ConfigurationError(
                f"processor {pid} is not a client of this counter"
            )
        self.network.inject(self._nodes[pid].request_inc, op_index=op_index)


class _BypassHost(_CombiningHost):
    """Combining host that tolerates crashes around it.

    Adds: routing via live ancestors, per-batch target tracking (so
    combines aimed at a dead host can be re-issued), silent discarding
    of grants for re-issued batches, direct client→root requests when a
    client's whole ancestor chain is dead, and end-to-end client
    retries.
    """

    def __init__(self, pid: ProcessorId, counter: "BypassCombiningTreeCounter") -> None:
        super().__init__(pid, counter)
        self._outstanding = 0
        self._batch_targets: dict[tuple[int, int], ProcessorId] = {}

    # -- client side ---------------------------------------------------
    def request_inc(self) -> None:
        self._outstanding += 1
        self._send_request()
        self._schedule_retry(1)

    def _send_request(self) -> None:
        counter = self._counter
        entry = counter.effective_entry(self.pid)
        if entry is None:
            # Whole ancestor chain is dead: go straight to the root.
            self.send(
                counter.root_host,
                KIND_REQUEST,
                {"node": -1, "count": 1, "client": self.pid},
            )
        else:
            self.send(
                counter.host_of(entry),
                KIND_REQUEST,
                {
                    "node": entry,
                    "from_kind": "client",
                    "from_id": self.pid,
                    "count": 1,
                },
            )

    def _schedule_retry(self, attempt: int) -> None:
        self.network.inject(
            lambda: self._retry(attempt),
            op_index=self.network.active_op,
            delay=self._counter.retry,
        )

    def _retry(self, attempt: int) -> None:
        if self._outstanding <= 0 or attempt >= RETRY_CAP:
            return
        self._send_request()
        self._schedule_retry(attempt + 1)

    # -- node side -----------------------------------------------------
    def _on_request(self, message: Message) -> None:
        payload = message.payload
        if payload["node"] == -1 and "client" in payload:
            # Orphaned client talking to the root directly.
            base = self._counter.take_values(payload["count"])
            self._counter.grant_client(self, payload["client"], base)
            return
        super()._on_request(message)

    def _close_window(self, state: _NodeState) -> None:
        state.window_armed = False
        if not state.pending:
            return
        batch = state.pending
        state.pending = []
        batch_id = state.next_batch_id
        state.next_batch_id += 1
        state.batches[batch_id] = batch
        total = sum(count for _, _, count, _ in batch)
        counter = self._counter
        parent = counter.effective_parent(state.node)
        if parent is None:
            target = counter.root_host
            self.send(
                target,
                KIND_REQUEST,
                {
                    "node": -1,
                    "count": total,
                    "reply_node": state.node,
                    "batch": batch_id,
                },
            )
        else:
            target = counter.host_of(parent)
            self.send(
                target,
                KIND_REQUEST,
                {
                    "node": parent,
                    "from_kind": "node",
                    "from_id": state.node,
                    "count": total,
                    "batch": batch_id,
                },
            )
        self._batch_targets[(state.node, batch_id)] = target

    def _on_grant(self, message: Message) -> None:
        node_id = message.payload["node"]
        batch_id = message.payload["batch"]
        state = self._nodes.get(node_id)
        if state is None or batch_id not in state.batches:
            # A grant for a batch re-issued around a crash: its values
            # were already reserved at the root — burn them (a gap, not
            # a duplicate) instead of raising.
            self._counter.note_discarded_grant()
            return
        self._batch_targets.pop((node_id, batch_id), None)
        super()._on_grant(message)


class BypassCombiningTreeCounter(CombiningTreeCounter, Recoverable):
    """Combining tree that routes around crashed hosts.

    The tree structure is static (node → host assignment never moves);
    what moves is the *routing*: once the failure detector suspects a
    host, every node whose effective parent chain passes through it
    re-links to the first live ancestor (or ships straight to the root
    holder), combines awaiting a grant from the dead host are re-issued
    under fresh batch ids, and the root-holder role itself migrates to a
    live host if its seat crashes.

    Semantics under faults are **at-most-once**: values reserved by a
    combine that died with a host are burned (gaps in the handed-out
    sequence), and surplus grants caused by retries are burned at the
    client — but no value is ever delivered twice, which the uniqueness
    checker verifies.  The root value itself is modelled as stable
    (checkpointed counter-side state), mirroring the standby variant's
    stable-storage assumption.

    Args:
        network: simulator to wire into.
        n: number of clients (ids 1..n).
        arity: tree fan-in.
        window: combining-window length.
        retry: end-to-end client retry timeout.
    """

    name = "combining-tree[bypass]"
    capabilities = Capabilities(
        tolerates_message_loss=True,
        tolerates_crash=True,
        restriction=(
            "at-most-once under crashes: combines that die with a host "
            "burn their reserved values (gaps, never duplicates)"
        ),
    )

    host_class = _BypassHost

    def __init__(
        self,
        network: Network,
        n: int,
        arity: int = 2,
        window: float = DEFAULT_WINDOW,
        retry: float = DEFAULT_TREE_RETRY,
    ) -> None:
        if retry <= 0:
            raise ConfigurationError(f"retry must be positive, got {retry}")
        self.retry = float(retry)
        self._dead_hosts: set[ProcessorId] = set()
        self._granted: set[int] = set()
        self._discarded_grants = 0
        self._recovery_manager: RecoveryManager | None = None
        super().__init__(network, n, arity=arity, window=window)

    # ------------------------------------------------------------------
    # Fault-aware routing
    # ------------------------------------------------------------------
    def effective_parent(self, node: int) -> int | None:
        """First ancestor of *node* hosted on a live processor.

        ``None`` means the whole chain is dead (or *node* is the top):
        talk to the root holder directly.
        """
        parent = self.parent_of(node)
        while parent is not None and self.host_of(parent) in self._dead_hosts:
            parent = self.parent_of(parent)
        return parent

    def effective_entry(self, pid: ProcessorId) -> int | None:
        """The live node client *pid* should enter the tree through.

        ``None`` sends the client straight to the root holder.
        """
        entry = self.entry_node_of(pid)
        if self.host_of(entry) not in self._dead_hosts:
            return entry
        return self.effective_parent(entry)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def burned_values(self) -> int:
        """Values reserved at the root but never delivered (the gaps)."""
        return self._value - len(self._granted)

    @property
    def discarded_grants(self) -> int:
        """Stale grants dropped after their batch was re-issued."""
        return self._discarded_grants

    @property
    def recovery_manager(self) -> RecoveryManager | None:
        """The attached manager (``None`` on crash-free runs)."""
        return self._recovery_manager

    def note_discarded_grant(self) -> None:
        self._discarded_grants += 1

    def deliver_result(self, pid: ProcessorId, value: int) -> None:
        host = self._hosts[pid]
        if value in self._granted or host._outstanding <= 0:
            # A duplicated grant, or a surplus one caused by a retry
            # racing the original: burn it.  Root intervals are
            # disjoint, so a repeated value always means a duplicate
            # delivery attempt, never a second legitimate grant.
            return
        self._granted.add(value)
        host._outstanding -= 1
        super().deliver_result(pid, value)

    # ------------------------------------------------------------------
    # Recoverable contract
    # ------------------------------------------------------------------
    def critical_pids(self) -> tuple[ProcessorId, ...]:
        return tuple(sorted({self.host_of(node) for node in range(self.node_count)}))

    def attach_recovery(self, manager: RecoveryManager) -> None:
        self._recovery_manager = manager

    def on_processor_suspected(self, pid: ProcessorId, time: float) -> None:
        self._dead_hosts.add(pid)
        if self.root_host in self._dead_hosts:
            for candidate in self.client_ids():
                if candidate not in self._dead_hosts:
                    old = self.root_host
                    self.root_host = candidate
                    if self._recovery_manager is not None:
                        self._recovery_manager.note_failover(old, candidate)
                    break
        # Re-issue every combine whose upward request targeted the dead
        # host: merge its entries back into the sending node's window so
        # they re-combine and ship via the bypass route.
        for host in self._hosts.values():
            stale = [
                key
                for key, target in host._batch_targets.items()
                if target == pid
            ]
            for node_id, batch_id in stale:
                del host._batch_targets[(node_id, batch_id)]
                state = host._nodes[node_id]
                entries = state.batches.pop(batch_id, None)
                if not entries:
                    continue
                state.pending.extend(entries)
                if not state.window_armed:
                    state.window_armed = True
                    self.network.inject(
                        lambda s=state, h=host: h._close_window(s),
                        delay=self.window,
                    )

    def on_processor_restored(self, pid: ProcessorId, time: float) -> None:
        # False suspicion cleared (or a transient crash's links came
        # back): resume routing through the host.  The root-holder role
        # stays where it moved — re-migration would buy nothing.
        self._dead_hosts.discard(pid)

    def on_processor_recovered(
        self, pid: ProcessorId, time: float, checkpoint: Any
    ) -> None:
        # Links were restored at the recovery point; the host resumes
        # its node roles with empty combining state (its pre-crash
        # batches are garbage nobody waits on — requesters already
        # re-issued around it).
        self._dead_hosts.discard(pid)
