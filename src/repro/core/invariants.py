"""Executable versions of the paper's §4 lemmas for the tree counter.

Each checker inspects a finished run of a :class:`~repro.core.TreeCounter`
and verifies one lemma's claim, returning a small report (and optionally
raising).  Together they are the mechanized counterpart of the paper's
correctness and load analysis:

* **Retirement Lemma** — no node retires more than once during a single
  ``inc`` operation.
* **Tenure bound** (Grow Old + Inner Node Work Lemmas) — a worker's node
  age never exceeds the retirement threshold by more than the per-message
  increment slack, so each tenure handles O(k) messages.
* **Number of Retirements Lemma** — a level-``i`` node retires at most
  ``width(i) − 1`` times, where ``width(i) = arity^(depth−i)`` is its
  preallocated interval (strict mode enforces this at runtime; the
  checker re-verifies from the event log).
* **Leaf Node Work Lemma** — a processor that never worked for any inner
  node handles only its own two operation messages plus one id-update per
  retirement of its leaf parent.
* **Bottleneck Theorem** — the maximum per-processor load is at most
  ``C·k`` for a configurable constant ``C``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.tree.counter import TreeCounter
from repro.errors import InvariantViolationError
from repro.sim.messages import NO_OP, ProcessorId
from repro.workloads.driver import RunResult


@dataclass(frozen=True, slots=True)
class LemmaReport:
    """Outcome of one lemma check."""

    lemma: str
    holds: bool
    detail: str

    def require(self) -> "LemmaReport":
        """Raise :class:`InvariantViolationError` unless the lemma holds."""
        if not self.holds:
            raise InvariantViolationError(f"{self.lemma}: {self.detail}")
        return self


def check_retirement_lemma(counter: TreeCounter) -> LemmaReport:
    """No node retires more than once during a single inc operation."""
    per_op_node: Counter[tuple[int, object]] = Counter()
    for event in counter.retirements:
        if event.op_index == NO_OP:
            continue
        per_op_node[(event.op_index, event.addr)] += 1
    worst = max(per_op_node.values(), default=0)
    offenders = [key for key, count in per_op_node.items() if count > 1]
    return LemmaReport(
        lemma="Retirement Lemma",
        holds=worst <= 1,
        detail=(
            "every (operation, node) pair retired at most once"
            if worst <= 1
            else f"double retirements at {offenders[:5]}"
        ),
    )


def check_tenure_bound(counter: TreeCounter, slack: int = 2) -> LemmaReport:
    """Node age at retirement stays within threshold + per-message slack.

    A handler increments the age by at most two (receive + send) before
    the retirement check runs, so the recorded age can overshoot the
    threshold by at most *slack*.
    """
    threshold = counter.policy.retire_threshold
    if threshold is None:
        return LemmaReport(
            lemma="Tenure bound",
            holds=True,
            detail="retirement disabled; tenure is unbounded by design",
        )
    worst = max(
        (event.age_at_retirement for event in counter.retirements), default=0
    )
    return LemmaReport(
        lemma="Tenure bound (Grow Old / Inner Node Work)",
        holds=worst <= threshold + slack,
        detail=f"max age at retirement {worst} vs threshold {threshold}+{slack}",
    )


def check_number_of_retirements(counter: TreeCounter) -> LemmaReport:
    """Level-``i`` nodes retire at most ``arity^(depth-i) − 1`` times.

    (That is: every node stays within its preallocated replacement
    interval, the executable content of the Number of Retirements
    Lemma.)  The root is checked against its walk budget instead.
    """
    geometry = counter.geometry
    offenders: list[str] = []
    for role in counter.registry.all_roles():
        if role.addr.is_root:
            budget = geometry.root_walk_budget()
        else:
            budget = len(geometry.id_interval(role.addr)) - 1
        if role.retire_count > budget:
            offenders.append(
                f"{role.addr} retired {role.retire_count}x (budget {budget})"
            )
    return LemmaReport(
        lemma="Number of Retirements Lemma",
        holds=not offenders,
        detail="all nodes within interval budgets" if not offenders
        else "; ".join(offenders[:5]),
    )


def pure_leaves(counter: TreeCounter) -> set[ProcessorId]:
    """Processors that never worked for any inner node during the run."""
    ever_workers: set[ProcessorId] = set()
    geometry = counter.geometry
    for role in counter.registry.all_roles():
        if role.addr.is_root:
            ever_workers.update(range(1, counter.registry.root_ids_used() + 1))
            ever_workers.add(geometry.initial_worker(role.addr))
        else:
            interval = geometry.id_interval(role.addr)
            used = min(len(interval), role.retire_count + 1)
            ever_workers.update(interval[offset] for offset in range(used))
    return set(range(1, geometry.leaf_count + 1)) - ever_workers


def check_leaf_work(counter: TreeCounter, result: RunResult) -> LemmaReport:
    """Pure-leaf load ≤ 2 (its own inc) + retirements of its leaf parent."""
    geometry = counter.geometry
    retire_count_by_addr: Counter = Counter(
        event.addr for event in counter.retirements
    )
    incs_by_pid: Counter[ProcessorId] = Counter(
        outcome.initiator for outcome in result.outcomes
    )
    offenders: list[str] = []
    for pid in pure_leaves(counter):
        load = result.trace.load(pid)
        parent_retires = retire_count_by_addr[geometry.leaf_parent(pid)]
        budget = 2 * incs_by_pid[pid] + parent_retires
        if load > budget:
            offenders.append(f"leaf {pid}: load {load} > budget {budget}")
    return LemmaReport(
        lemma="Leaf Node Work Lemma",
        holds=not offenders,
        detail="all pure leaves within budget" if not offenders
        else "; ".join(offenders[:5]),
    )


def check_bottleneck_theorem(
    counter: TreeCounter, result: RunResult, constant: float = 24.0
) -> LemmaReport:
    """Max load ≤ ``constant · k`` — the Bottleneck Theorem's O(k).

    The default constant 24 comfortably covers the implementation's
    measured ≈18.5·k (two tenures at threshold 4k plus hand-off traffic
    plus the leaf's own messages); the benchmark suite tracks the exact
    constant across k.
    """
    bound = constant * counter.k
    observed = result.bottleneck_load()
    return LemmaReport(
        lemma="Bottleneck Theorem",
        holds=observed <= bound,
        detail=f"max load {observed} vs {constant}·k = {bound:.0f}",
    )


def check_all(counter: TreeCounter, result: RunResult) -> list[LemmaReport]:
    """Run every lemma check; returns the reports (none raised)."""
    return [
        check_retirement_lemma(counter),
        check_tenure_bound(counter),
        check_number_of_retirements(counter),
        check_leaf_work(counter, result),
        check_bottleneck_theorem(counter, result),
    ]


def require_all(counter: TreeCounter, result: RunResult) -> None:
    """Run every lemma check, raising on the first failure."""
    for report in check_all(counter, result):
        report.require()
