"""Tunable policies of the communication-tree counter.

The paper fixes one design point: retire a worker once its node's age
reaches ``2k``, replace it with the next id of a preallocated interval.
The ablation experiments (E9, E10) need the knobs around that point, so
the policy is explicit instead of hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError


class IntervalMode(Enum):
    """What to do when a node exhausts its replacement-id interval."""

    STRICT = "strict"
    """Raise: the paper's Number-of-Retirements Lemma says this cannot
    happen in the one-shot workload, so exhaustion signals a bug."""

    WRAP = "wrap"
    """Reuse the interval cyclically.  Needed for multi-round extension
    workloads, where the one-shot guarantee deliberately does not apply."""


@dataclass(frozen=True, slots=True)
class TreePolicy:
    """Configuration of retirement behaviour.

    Attributes:
        retire_threshold: node age that triggers retirement.  ``None``
            means never retire — the static-tree baseline that experiment
            E9 uses to show retirement is what removes the bottleneck.
            The paper's choice is ``2 * arity`` (see
            :meth:`paper_default`).
        count_handoff_in_age: whether the hand-off messages a new worker
            receives count toward its node age.  The paper's arithmetic
            ("k+2 < 2k for k > 2", Retirement Lemma) is agnostic for
            k > 2 but the ``False`` default also supports k = 2 without
            an immediate re-retirement cascade.
        interval_mode: see :class:`IntervalMode`.
    """

    retire_threshold: int | None
    count_handoff_in_age: bool = False
    interval_mode: IntervalMode = IntervalMode.STRICT

    def __post_init__(self) -> None:
        if self.retire_threshold is not None and self.retire_threshold < 1:
            raise ConfigurationError(
                f"retire threshold must be positive or None, "
                f"got {self.retire_threshold}"
            )

    @classmethod
    def paper_default(cls, arity: int) -> "TreePolicy":
        """The shipped design point: retire at age ``4·arity``.

        The paper's OCR drops the threshold constant ("it will retire if
        and only if it has age ≥ ⟨?⟩k").  A capacity check pins it down:
        with threshold ``2k`` a level-``k`` node ages ``2k`` from the incs
        of its own ``k`` leaves plus at least one parent id-update, so it
        must retire at least once — but its replacement interval has width
        ``k^(k-k) = 1``, i.e. zero spares.  With threshold ``4k`` the
        retirement counts of every level fit the paper's interval widths
        (level ``i`` retires ≈ ``k^(k-i)/2 < k^(k-i)`` times) and the
        bottleneck stays Θ(k), only with a constant twice as large.
        Experiment E9 sweeps the factor and reports where exhaustion
        starts.
        """
        return cls(retire_threshold=4 * arity)

    @classmethod
    def never_retire(cls) -> "TreePolicy":
        """Static relay tree: workers are permanent (baseline/ablation)."""
        return cls(retire_threshold=None)

    @classmethod
    def with_threshold_factor(cls, arity: int, factor: float) -> "TreePolicy":
        """Retire at age ``ceil(factor · arity)`` — the E9 threshold sweep."""
        if factor <= 0:
            raise ConfigurationError(f"threshold factor must be positive: {factor}")
        threshold = max(1, round(factor * arity))
        return cls(retire_threshold=threshold)

    @property
    def retires(self) -> bool:
        """True if workers ever retire under this policy."""
        return self.retire_threshold is not None
