"""The paper's communication-tree counter, decomposed.

* :mod:`~repro.core.tree.geometry` — tree shape and the identifier
  intervals of §4's replacement scheme.
* :mod:`~repro.core.tree.policy` — retirement knobs (threshold, interval
  exhaustion behaviour).
* :mod:`~repro.core.tree.roles` — migrating node state and the registry
  enforcing the id discipline.
* :mod:`~repro.core.tree.protocol` — wire format of the four message
  kinds.
* :mod:`~repro.core.tree.worker` — the per-processor program.
* :mod:`~repro.core.tree.counter` — the assembled
  :class:`~repro.api.DistributedCounter`.
"""

from repro.core.tree.counter import TreeCounter
from repro.core.tree.geometry import (
    ROOT,
    NodeAddr,
    TreeGeometry,
    lower_bound_k,
    paper_k_for,
)
from repro.core.tree.policy import IntervalMode, TreePolicy
from repro.core.tree.roles import NodeRole, RetirementEvent, RoleRegistry

__all__ = [
    "IntervalMode",
    "NodeAddr",
    "NodeRole",
    "ROOT",
    "RetirementEvent",
    "RoleRegistry",
    "TreeCounter",
    "TreeGeometry",
    "TreePolicy",
    "lower_bound_k",
    "paper_k_for",
]
