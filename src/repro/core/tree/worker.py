"""The processor program of the communication-tree counter.

One :class:`TreeWorker` is registered per processor id.  Every worker
always plays its *leaf* role (it can initiate ``inc`` and receive values
and parent id-updates); in addition it may currently work for inner nodes
— at most one non-root node plus possibly the root, per the identifier
scheme.

The program implements §4 of the paper verbatim where the paper is
explicit, and fills the two gaps the paper waves off:

* **Stale addressing.**  A neighbour's belief of where a node lives can
  lag behind retirements.  A worker that receives a message for a role it
  retired from forwards it to its successor (one extra message — the
  paper's "handshaking protocol with a constant number of extra messages").
* **Early arrival.**  A message can reach the successor before its
  hand-off batch does.  The successor defers it and replays it (as a local
  event, not a new message) once the role activates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.tree.protocol import (
    KIND_HANDOFF,
    KIND_ID_UPDATE,
    KIND_INC,
    KIND_VALUE,
    RoleKey,
    addr_of,
    is_leaf_key,
    node_key,
)
from repro.core.tree.roles import NodeRole
from repro.errors import ProtocolError
from repro.sim.messages import Message, ProcessorId
from repro.sim.processor import Processor

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.tree.counter import TreeCounter


class TreeWorker(Processor):
    """A processor of the tree counter: leaf + whatever roles it holds."""

    def __init__(self, pid: ProcessorId, counter: "TreeCounter") -> None:
        super().__init__(pid)
        self._counter = counter
        self._roles: dict[RoleKey, NodeRole] = {}
        self._forward: dict[RoleKey, ProcessorId] = {}
        self._pending: dict[RoleKey, list[Message]] = {}
        self._leaf_parent_worker: ProcessorId | None = None
        self.forwarded_messages = 0
        self.deferred_messages = 0

    # ------------------------------------------------------------------
    # Wiring (called by the counter during construction)
    # ------------------------------------------------------------------
    def adopt_role(self, role: NodeRole) -> None:
        """Take up work for *role* (initial assignment or hand-off)."""
        key = node_key(role.addr)
        self._roles[key] = role
        self._forward.pop(key, None)

    def set_leaf_parent(self, worker: ProcessorId) -> None:
        """Set the initial belief of where this leaf's parent node lives."""
        self._leaf_parent_worker = worker

    def active_role_keys(self) -> list[RoleKey]:
        """Role keys this worker currently plays (test introspection)."""
        return list(self._roles)

    # ------------------------------------------------------------------
    # Operation entry point (a local event, not a message)
    # ------------------------------------------------------------------
    def request_inc(self, request: object = None) -> None:
        """Initiate one operation: send the request to the parent node.

        *request* is an opaque operation descriptor interpreted at the
        root (``None`` = the counter's plain ``inc``; the generalized
        data structures of :mod:`repro.datatypes` pass their own ops —
        the paper's §2 remark that the bound covers "a bit that can be
        accessed and flipped and a priority queue" made concrete).
        """
        if self._leaf_parent_worker is None:
            raise ProtocolError(f"processor {self.pid} has no leaf parent set")
        parent_addr = self._counter.geometry.leaf_parent(self.pid)
        self.send(
            self._leaf_parent_worker,
            KIND_INC,
            {"origin": self.pid, "role": node_key(parent_addr), "request": request},
        )

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == KIND_VALUE:
            self._counter.deliver_result(self.pid, message.payload["value"])
            return
        role_key: RoleKey = tuple(message.payload["role"])
        if is_leaf_key(role_key):
            self._handle_leaf_update(message)
            return
        if kind == KIND_HANDOFF:
            self._handle_handoff(role_key, message)
            return
        role = self._roles.get(role_key)
        if role is not None:
            self._handle_role_message(role, message)
            return
        successor = self._forward.get(role_key)
        if successor is not None:
            # Stale addressing: pass the message along to the new worker.
            self.forwarded_messages += 1
            self.send(successor, message.kind, message.payload)
            return
        # Early arrival: the hand-off naming us the new worker is still in
        # flight.  Defer; replay when the role activates.
        self.deferred_messages += 1
        self._pending.setdefault(role_key, []).append(message)

    # ------------------------------------------------------------------
    # Leaf role
    # ------------------------------------------------------------------
    def _handle_leaf_update(self, message: Message) -> None:
        if message.kind != KIND_ID_UPDATE:
            raise ProtocolError(
                f"leaf {self.pid} cannot handle message kind {message.kind!r}"
            )
        self._leaf_parent_worker = message.payload["new_worker"]

    # ------------------------------------------------------------------
    # Inner-node roles
    # ------------------------------------------------------------------
    def _handle_role_message(self, role: NodeRole, message: Message) -> None:
        if message.kind == KIND_INC:
            self._handle_inc(
                role, message.payload["origin"], message.payload.get("request")
            )
        elif message.kind == KIND_ID_UPDATE:
            self._handle_id_update(role, message)
        else:
            raise ProtocolError(
                f"node {role.addr} cannot handle message kind {message.kind!r}"
            )

    def _handle_inc(
        self, role: NodeRole, origin: ProcessorId, request: object = None
    ) -> None:
        """Receive an operation climbing the tree; answer or forward it."""
        role.age += 1  # received the request
        if role.is_root:
            reply = self._counter.apply_at_root(role, request)
            self.send(origin, KIND_VALUE, {"value": reply})
        else:
            assert role.parent_addr is not None and role.parent_worker is not None
            self.send(
                role.parent_worker,
                KIND_INC,
                {
                    "origin": origin,
                    "role": node_key(role.parent_addr),
                    "request": request,
                },
            )
        role.age += 1  # sent the answer/forward
        self._maybe_retire(role)

    def _handle_id_update(self, role: NodeRole, message: Message) -> None:
        """A neighbour node moved: update the local belief of its worker."""
        changed: RoleKey = tuple(message.payload["node"])
        new_worker: ProcessorId = message.payload["new_worker"]
        if role.parent_addr is not None and changed == node_key(role.parent_addr):
            role.parent_worker = new_worker
        elif changed in role.children_workers:
            role.children_workers[changed] = new_worker
        else:
            raise ProtocolError(
                f"node {role.addr} got an id-update for non-neighbour {changed!r}"
            )
        role.age += 1
        self._maybe_retire(role)

    # ------------------------------------------------------------------
    # Hand-off handling
    # ------------------------------------------------------------------
    def _handle_handoff(self, role_key: RoleKey, message: Message) -> None:
        role = self._roles.get(role_key)
        if role is None:
            registry_role = self._counter.registry.role(addr_of(role_key))
            if registry_role.worker != self.pid:
                # A stale hand-off from a past tenure (possible only under
                # wrapped intervals with heavy reordering).  Receiving it
                # already cost load; there is nothing to do.
                return
            self.adopt_role(registry_role)
            role = registry_role
            self._replay_pending(role_key)
        if self._counter.policy.count_handoff_in_age:
            role.age += 1
            self._maybe_retire(role)

    def _replay_pending(self, role_key: RoleKey) -> None:
        """Re-dispatch messages that arrived before the role did.

        Replays run as injected local events attributed to the deferred
        message's own operation, so footprints stay exact and no new
        messages are charged.
        """
        pending = self._pending.pop(role_key, None)
        if not pending:
            return
        for deferred in pending:
            self.network.inject(
                (lambda msg=deferred: self.on_message(msg)),
                op_index=deferred.op_index,
            )

    # ------------------------------------------------------------------
    # Retirement (§4's hand-off procedure)
    # ------------------------------------------------------------------
    def _maybe_retire(self, role: NodeRole) -> None:
        threshold = self._counter.policy.retire_threshold
        if threshold is None or role.age < threshold:
            return
        registry = self._counter.registry
        successor = registry.next_worker_for(role)
        key = node_key(role.addr)
        registry.commit_retirement(
            role,
            successor,
            op_index=self.network.active_op,
            time=self.network.now,
        )
        del self._roles[key]
        self._forward[key] = successor
        # k+2 hand-off messages (k+3 for the root, which also ships val):
        # the new job, the parent id, the k child ids — each O(log n) bits.
        handoff_total = self._counter.geometry.arity + 2
        if role.is_root:
            handoff_total += 1
        for seq in range(handoff_total):
            self.send(
                successor,
                KIND_HANDOFF,
                {"role": key, "seq": seq, "total": handoff_total},
            )
        # One id-update to the parent (the root saves this message) ...
        if role.parent_addr is not None and role.parent_worker is not None:
            self.send(
                role.parent_worker,
                KIND_ID_UPDATE,
                {
                    "role": node_key(role.parent_addr),
                    "node": key,
                    "new_worker": successor,
                },
            )
        # ... and one to each child (leaves included).
        for child_key, believed_worker in role.children_workers.items():
            self.send(
                believed_worker,
                KIND_ID_UPDATE,
                {"role": child_key, "node": key, "new_worker": successor},
            )
