"""Node roles and the role registry.

§4 of the paper separates *nodes* (logical positions in the communication
tree) from the *processors currently working for them*.  A
:class:`NodeRole` is a node's migrating state: its age, its interval
position, its local view of where its neighbours currently live, and — for
the root — the counter value.

The :class:`RoleRegistry` owns all roles and enforces the identifier
discipline: replacement ids come from the node's preallocated interval
(or the root's increasing walk), and no two inner nodes may ever be worked
by the same processor at the same time — the invariant behind the
Bottleneck Theorem's "at most once for the root and at most once for
another inner node" accounting.

Knowledge locality note: role state is a Python object handed from worker
to worker, while the paper transfers it inside the k+2 hand-off messages.
The counter *does* send those k+2 messages (they are counted like any
traffic); sharing the object merely avoids re-serializing state the
successor is entitled to.  Message counts — the paper's metric — are
unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import ConfigurationError, ProtocolError
from repro.core.tree.geometry import ROOT, NodeAddr, TreeGeometry
from repro.core.tree.policy import IntervalMode, TreePolicy
from repro.sim.messages import OpIndex, ProcessorId


@dataclass(slots=True)
class NodeRole:
    """The migrating state of one inner node.

    Attributes:
        addr: which node this is.
        worker: processor currently working for the node.
        age: messages the node sent/received under the current worker.
        parent_addr: address of the parent node (None for the root).
        parent_worker: this node's local belief of the parent's worker.
        child_addrs: inner-node children (empty on the last inner level).
        children_workers: local belief of each child's worker, keyed by the
            child's address key; for last-level nodes the "children" are
            leaves, keyed by ``("leaf", pid)`` with fixed worker = pid.
        value: the counter value (root only; None elsewhere).
        retire_count: how many times this node has retired a worker.
        tenure_start_load: bookkeeping for per-tenure statistics.
    """

    addr: NodeAddr
    worker: ProcessorId
    age: int = 0
    parent_addr: NodeAddr | None = None
    parent_worker: ProcessorId | None = None
    child_addrs: list[NodeAddr] = field(default_factory=list)
    children_workers: dict[tuple, ProcessorId] = field(default_factory=dict)
    value: int | None = None
    retire_count: int = 0

    @property
    def is_root(self) -> bool:
        """True for the root role."""
        return self.addr.is_root

    def child_keys(self) -> list[tuple]:
        """Payload-safe keys of all children (inner or leaf)."""
        return list(self.children_workers.keys())

    def believed_child_worker(self, key: tuple) -> ProcessorId:
        """The worker this node believes currently serves child *key*."""
        try:
            return self.children_workers[key]
        except KeyError:
            raise ProtocolError(f"{self.addr} has no child {key!r}") from None


@dataclass(frozen=True, slots=True)
class RetirementEvent:
    """One retirement, for the invariant checkers and E5 statistics."""

    op_index: OpIndex
    addr: NodeAddr
    old_worker: ProcessorId
    new_worker: ProcessorId
    age_at_retirement: int
    time: float


@lru_cache(maxsize=64)
def _role_plan(
    arity: int, depth: int
) -> tuple[tuple[NodeAddr, ProcessorId, int, tuple, int], ...]:
    """The immutable construction plan of one tree shape.

    One row per inner node in level order: ``(addr, initial_worker,
    parent_row_index, node_key, leaf_base)`` — ``parent_row_index`` is
    -1 for the root, ``leaf_base`` is the pid preceding the node's first
    leaf child on the last inner level and -1 elsewhere.  Everything in
    a row is immutable (``NodeAddr`` is frozen), so the plan is shared
    across every :class:`RoleRegistry` built for the same shape —
    session construction replays the plan instead of redoing the
    interval arithmetic (the measured RunSession-rate bottleneck).
    """
    rows: list[tuple[NodeAddr, ProcessorId, int, tuple, int]] = [
        (ROOT, 1, -1, ("node", 0, 0), -1)
    ]
    band = arity**depth
    row_of_addr = {ROOT: 0}
    for level in range(1, depth + 1):
        # id_interval(level, index) starts at
        # (level-1)*band + index*width + 1 with width ids per node.
        width = arity ** (depth - level)
        level_base = (level - 1) * band + 1
        last_level = level == depth
        for index in range(arity**level):
            addr = NodeAddr(level, index)
            worker = level_base + index * width
            parent_row = row_of_addr[NodeAddr(level - 1, index // arity)]
            leaf_base = index * arity if last_level else -1
            row_of_addr[addr] = len(rows)
            rows.append(
                (addr, worker, parent_row, ("node", level, index), leaf_base)
            )
    return tuple(rows)


class RoleRegistry:
    """Creates, tracks and retires all node roles of one tree counter."""

    def __init__(self, geometry: TreeGeometry, policy: TreePolicy) -> None:
        self._geometry = geometry
        self._policy = policy
        self._roles: dict[NodeAddr, NodeRole] = {}
        self._worker_of_role: dict[NodeAddr, ProcessorId] = {}
        self._inner_worker_index: dict[ProcessorId, NodeAddr] = {}
        self._retirements: list[RetirementEvent] = []
        self._root_walk_next: ProcessorId = 0
        self._build_roles()

    def _build_roles(self) -> None:
        """Create and wire every role by replaying the shape's plan.

        Parents exist before their children, so each non-root role wires
        itself into its parent at creation — no second wiring pass over
        the whole tree.  All shape arithmetic lives in the cached
        :func:`_role_plan`, so building the 10^5-leaf tree is O(nodes)
        dict and list appends — and repeat constructions of the same
        shape skip the arithmetic entirely.  Orders match the old
        two-pass construction exactly: ``child_addrs`` and
        ``children_workers`` fill in child index order.
        """
        geometry = self._geometry
        arity = geometry.arity
        roles = self._roles
        worker_of_role = self._worker_of_role
        inner_worker_index = self._inner_worker_index
        built: list[NodeRole] = []
        for addr, worker, parent_row, key, leaf_base in _role_plan(
            arity, geometry.depth
        ):
            if parent_row < 0:
                role = NodeRole(addr=addr, worker=worker)
                role.value = 0
                self._root_walk_next = worker + 1
            else:
                parent = built[parent_row]
                role = NodeRole(
                    addr=addr,
                    worker=worker,
                    parent_addr=parent.addr,
                    parent_worker=parent.worker,
                )
                parent.child_addrs.append(addr)
                parent.children_workers[key] = worker
                inner_worker_index[worker] = addr
                if leaf_base >= 0:
                    leaf_workers = role.children_workers
                    for c in range(arity):
                        leaf_workers[("leaf", leaf_base + c + 1)] = (
                            leaf_base + c + 1
                        )
            built.append(role)
            roles[addr] = role
            worker_of_role[addr] = worker

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def geometry(self) -> TreeGeometry:
        """The tree shape this registry manages."""
        return self._geometry

    @property
    def policy(self) -> TreePolicy:
        """The retirement policy in force."""
        return self._policy

    def role(self, addr: NodeAddr) -> NodeRole:
        """The role object of inner node *addr*."""
        try:
            return self._roles[addr]
        except KeyError:
            raise ConfigurationError(f"no inner node at {addr}") from None

    def root(self) -> NodeRole:
        """The root role (holder of the counter value)."""
        return self._roles[ROOT]

    def all_roles(self) -> list[NodeRole]:
        """Every role, root first, in level order.

        ``_roles`` is populated in exactly this order (see
        :meth:`_build_roles`), so this is a plain dict walk — no address
        materialization.
        """
        return list(self._roles.values())

    def last_level_roles(self) -> list[NodeRole]:
        """Roles of the last inner level (the leaves' parents), in index
        order — the counter wires leaf workers from these."""
        depth = self._geometry.depth
        return [role for role in self._roles.values() if role.addr.level == depth]

    @property
    def retirements(self) -> list[RetirementEvent]:
        """All retirement events in chronological order."""
        return self._retirements

    def retirement_counts_by_level(self) -> dict[int, int]:
        """Total retirements per tree level (E5's per-level table)."""
        counts: dict[int, int] = {level: 0 for level in self._geometry.inner_levels()}
        for event in self._retirements:
            counts[event.addr.level] += 1
        return counts

    def root_ids_used(self) -> int:
        """How many ids the root's replacement walk has consumed."""
        return self._root_walk_next - 1

    # ------------------------------------------------------------------
    # Retirement (the id-discipline part; messaging lives in the worker)
    # ------------------------------------------------------------------
    def next_worker_for(self, role: NodeRole) -> ProcessorId:
        """The id the paper's scheme assigns as *role*'s next worker."""
        if role.is_root:
            candidate = self._root_walk_next
            limit = self._geometry.processor_requirement()
            if candidate > limit:
                if self._policy.interval_mode is IntervalMode.WRAP:
                    return ((candidate - 1) % limit) + 1
                raise ProtocolError(
                    f"root replacement walk exhausted the id space "
                    f"(next={candidate}, limit={limit}); the workload is "
                    "not one-shot — use IntervalMode.WRAP"
                )
            return candidate
        interval = self._geometry.id_interval(role.addr)
        offset = role.retire_count + 1
        if offset < len(interval):
            return interval[offset]
        if self._policy.interval_mode is IntervalMode.WRAP:
            return interval[offset % len(interval)]
        raise ProtocolError(
            f"{role.addr} exhausted its replacement interval "
            f"{interval.start}..{interval.stop - 1} after "
            f"{role.retire_count} retirements (Number-of-Retirements "
            f"Lemma violated, or workload is not one-shot; use "
            f"IntervalMode.WRAP for repeated workloads)"
        )

    def commit_retirement(
        self,
        role: NodeRole,
        new_worker: ProcessorId,
        op_index: OpIndex,
        time: float,
    ) -> RetirementEvent:
        """Record that *role* moves to *new_worker*; reset its age.

        Enforces the no-aliasing invariant: the new worker must not be
        working for any other inner node right now.
        """
        if not role.is_root:
            current_owner = self._inner_worker_index.get(new_worker)
            if current_owner is not None and current_owner != role.addr:
                raise ProtocolError(
                    f"processor {new_worker} would work for both "
                    f"{current_owner} and {role.addr} — interval discipline "
                    "broken"
                )
        event = RetirementEvent(
            op_index=op_index,
            addr=role.addr,
            old_worker=role.worker,
            new_worker=new_worker,
            age_at_retirement=role.age,
            time=time,
        )
        self._retirements.append(event)
        old_worker = role.worker
        role.worker = new_worker
        role.age = 0
        role.retire_count += 1
        self._worker_of_role[role.addr] = new_worker
        if role.is_root:
            self._root_walk_next = new_worker + 1
        else:
            if self._inner_worker_index.get(old_worker) == role.addr:
                del self._inner_worker_index[old_worker]
            self._inner_worker_index[new_worker] = role.addr
        return event
