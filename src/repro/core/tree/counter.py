"""The paper's distributed counter: a communication tree with retirement.

This is the matching upper bound of §4.  The root holds the counter
value; leaves are the processors that request ``inc``; inner nodes relay
requests rootward; and every node retires its current processor after a
bounded amount of traffic, replacing it with the next id of a statically
preallocated interval.  Over the paper's workload — each of the ``n``
processors increments exactly once — every processor sends and receives
O(k) messages, where ``k·kᵏ = n`` (Bottleneck Theorem), matching the
lower bound of §3.
"""

from __future__ import annotations

from repro.api import Capabilities, DistributedCounter
from repro.core.tree.geometry import TreeGeometry
from repro.core.tree.policy import TreePolicy
from repro.core.tree.roles import RetirementEvent, RoleRegistry
from repro.core.tree.worker import TreeWorker
from repro.errors import ConfigurationError
from repro.sim.messages import OpIndex, ProcessorId
from repro.sim.network import Network


class TreeCounter(DistributedCounter):
    """Wattenhofer–Widmayer communication-tree counter.

    Args:
        network: simulator to wire into.
        n: number of client processors (1..n may initiate ``inc``).  If
            *n* is not of the form ``k^(k+1)`` the tree is built for the
            next such size, exactly as the paper prescribes ("otherwise
            simply increase n to the next higher value of the form
            k·kᵏ"); the extra leaves simply never increment.
        geometry: explicit tree shape (defaults to the smallest paper
            shape covering *n*; the E10 ablation passes custom shapes).
        policy: retirement policy (defaults to
            :meth:`TreePolicy.paper_default` for the shape's arity).
    """

    name = "ww-tree"
    capabilities = Capabilities(supports_retirement=True)

    def __init__(
        self,
        network: Network,
        n: int,
        geometry: TreeGeometry | None = None,
        policy: TreePolicy | None = None,
    ) -> None:
        super().__init__(network, n)
        self.geometry = geometry or TreeGeometry.for_processors(n)
        if n > self.geometry.leaf_count:
            raise ConfigurationError(
                f"tree with {self.geometry.leaf_count} leaves cannot serve "
                f"n={n} clients"
            )
        self.policy = policy or TreePolicy.paper_default(self.geometry.arity)
        self.registry = RoleRegistry(self.geometry, self.policy)
        self._workers: dict[ProcessorId, TreeWorker] = {}
        self._build_workers()

    def _build_workers(self) -> None:
        geometry = self.geometry
        requirement = geometry.processor_requirement()
        workers = self._workers
        network = self.network
        for pid in range(1, requirement + 1):
            worker = TreeWorker(pid, self)
            network.register(worker)
            workers[pid] = worker
        all_roles = self.registry.all_roles()
        for role in all_roles:
            workers[role.worker].adopt_role(role)
        # Wire each leaf's belief of its parent's worker by walking the
        # last-level roles once (the trailing arity^depth entries of the
        # level-ordered role list); last-level node index i parents
        # leaves i*arity+1 .. (i+1)*arity, so no address lookups needed.
        arity = geometry.arity
        leaf_pid = 1
        for role in all_roles[-(arity**geometry.depth):]:
            role_worker = role.worker
            for _ in range(arity):
                workers[leaf_pid].set_leaf_parent(role_worker)
                leaf_pid += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The paper's parameter k (the tree arity)."""
        return self.geometry.arity

    def worker(self, pid: ProcessorId) -> TreeWorker:
        """The worker program of processor *pid* (test introspection)."""
        return self._workers[pid]

    @property
    def value(self) -> int:
        """Current counter value, read off the root role."""
        value = self.registry.root().value
        assert value is not None
        return value

    @property
    def retirements(self) -> list[RetirementEvent]:
        """All retirement events so far, chronologically."""
        return self.registry.retirements

    def total_forwarded(self) -> int:
        """Messages re-sent due to stale addressing (handshake overhead)."""
        return sum(worker.forwarded_messages for worker in self._workers.values())

    def total_deferred(self) -> int:
        """Messages that arrived before their role's hand-off did."""
        return sum(worker.deferred_messages for worker in self._workers.values())

    # ------------------------------------------------------------------
    # Root semantics (overridden by the generalized data structures)
    # ------------------------------------------------------------------
    def apply_at_root(self, role, request: object) -> object:
        """Apply one operation at the root; return the reply.

        The counter's semantics: return the current value, then
        increment (§2's test-and-increment).  Subclasses in
        :mod:`repro.datatypes` override this to realize the other
        sequentially dependent data types the paper's §2 mentions; the
        whole tree/retirement machinery is shared.
        """
        assert role.value is not None
        value = role.value
        role.value = value + 1
        return value

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if not 1 <= pid <= self.n:
            raise ConfigurationError(
                f"processor {pid} is not a client of this counter (1..{self.n})"
            )
        worker = self._workers[pid]
        self.network.inject(worker.request_inc, op_index=op_index)
