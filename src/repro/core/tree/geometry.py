"""Tree geometry and the paper's identifier-interval scheme (§4).

The paper's communication tree: every inner node has ``k`` children, the
root is on level 0, all leaves are on level ``k+1``, so there are
``n = k·kᵏ = k^(k+1)`` leaves — one per processor.  We generalize to an
``arity``-ary tree with inner levels ``0 .. depth`` (leaves on level
``depth+1``); the paper's shape is ``arity = depth = k``, and the shape
ablation (experiment E10) sweeps the generalization.

Identifier scheme, reconstructed from §4: leaves are processors ``1..n``
left to right.  The level-``i`` (1 ≤ i ≤ depth) inner node number ``j``
(0-based) initially uses processor ``(i-1)·arityᵈ + j·arity^(d-i) + 1``
(with ``d = depth``) and owns the following ``arity^(d-i)`` ids as
replacement candidates.  Bands of ``arityᵈ`` ids per level make intervals
disjoint across levels, sub-intervals of ``arity^(d-i)`` ids make them
disjoint within a level, and the largest id used is ``depth·arityᵈ``,
which for the paper's shape equals ``k·kᵏ = n``.  The root walks ids
``1, 2, 3, …`` independently; the paper's accounting ("each processor
starts working at most once for the root and at most once for another
inner node", Bottleneck Theorem) is preserved because the root's walk is
strictly increasing and each inner interval is consumed left to right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.messages import ProcessorId


@dataclass(frozen=True, slots=True, order=True)
class NodeAddr:
    """Address of an inner node: ``(level, index)``.

    ``level`` 0 is the root; ``index`` runs 0 .. arity^level - 1 left to
    right.  Leaves are not :class:`NodeAddr`; they are identified by their
    processor id.
    """

    level: int
    index: int

    @property
    def is_root(self) -> bool:
        """True for the root node ``(0, 0)``."""
        return self.level == 0

    def key(self) -> tuple[int, int]:
        """A plain-tuple form safe to embed in message payloads."""
        return (self.level, self.index)

    def __str__(self) -> str:
        return "root" if self.is_root else f"node({self.level},{self.index})"


ROOT = NodeAddr(0, 0)

_PAPER_SHAPES: dict[int, "TreeGeometry"] = {}


class TreeGeometry:
    """Shape, adjacency and id intervals of a communication tree.

    Args:
        arity: children per inner node (the paper's ``k``), at least 2.
        depth: last inner level (the paper's ``k``); leaves live on
            ``depth + 1``.  At least 1, so there is at least one level of
            non-root inner nodes.
    """

    def __init__(self, arity: int, depth: int) -> None:
        if arity < 2:
            raise ConfigurationError(f"tree arity must be at least 2, got {arity}")
        if depth < 1:
            raise ConfigurationError(f"tree depth must be at least 1, got {depth}")
        self.arity = arity
        self.depth = depth
        self.leaf_count = arity ** (depth + 1)
        self._band = arity**depth  # ids per level band = leaf_count / arity

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_shape(cls, k: int) -> "TreeGeometry":
        """The paper's tree for parameter ``k``: arity = depth = k.

        Paper shapes are interned: the geometry is immutable after
        construction, so repeated sessions at the same ``k`` share one
        instance (this is what makes per-shape construction plans — the
        role-wiring cache in :mod:`repro.core.tree.roles` — pay off).
        """
        shape = _PAPER_SHAPES.get(k)
        if shape is None:
            shape = cls(arity=k, depth=k)
            _PAPER_SHAPES[k] = shape
        return shape

    @classmethod
    def for_processors(cls, n: int) -> "TreeGeometry":
        """Smallest paper-shape tree with at least *n* leaves.

        The paper: "for simplicity let us assume that n = k·kᵏ; otherwise
        simply increase n to the next higher value of the form k·kᵏ".
        """
        if n < 1:
            raise ConfigurationError(f"need at least one processor, got n={n}")
        k = 2
        while k ** (k + 1) < n:
            k += 1
        return cls.paper_shape(k)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def inner_levels(self) -> range:
        """Levels that hold inner nodes (0 = root .. depth)."""
        return range(self.depth + 1)

    def nodes_on_level(self, level: int) -> int:
        """Number of inner nodes on *level*."""
        self._check_level(level)
        return self.arity**level

    def total_inner_nodes(self) -> int:
        """Inner nodes over all levels: (arity^(depth+1) - 1)/(arity - 1)."""
        return (self.arity ** (self.depth + 1) - 1) // (self.arity - 1)

    def all_nodes(self) -> list[NodeAddr]:
        """Every inner node, root first, in level order."""
        return [
            NodeAddr(level, index)
            for level in self.inner_levels()
            for index in range(self.nodes_on_level(level))
        ]

    def leaves_under(self, addr: NodeAddr) -> int:
        """Number of leaves in the subtree of *addr* (paths through it)."""
        self._check_addr(addr)
        return self.arity ** (self.depth + 1 - addr.level)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def parent(self, addr: NodeAddr) -> NodeAddr:
        """Parent of inner node *addr*; the root has no parent."""
        self._check_addr(addr)
        if addr.is_root:
            raise ConfigurationError("the root has no parent")
        return NodeAddr(addr.level - 1, addr.index // self.arity)

    def children(self, addr: NodeAddr) -> list[NodeAddr]:
        """Inner-node children of *addr*; empty for level-``depth`` nodes."""
        self._check_addr(addr)
        if addr.level == self.depth:
            return []
        base = addr.index * self.arity
        return [NodeAddr(addr.level + 1, base + c) for c in range(self.arity)]

    def leaf_children(self, addr: NodeAddr) -> list[ProcessorId]:
        """Leaf (processor id) children of a level-``depth`` node."""
        self._check_addr(addr)
        if addr.level != self.depth:
            raise ConfigurationError(f"{addr} is not on the last inner level")
        base = addr.index * self.arity
        return [base + c + 1 for c in range(self.arity)]

    def leaf_parent(self, leaf_pid: ProcessorId) -> NodeAddr:
        """The level-``depth`` inner node above leaf processor *leaf_pid*."""
        if not 1 <= leaf_pid <= self.leaf_count:
            raise ConfigurationError(
                f"leaf id {leaf_pid} outside 1..{self.leaf_count}"
            )
        return NodeAddr(self.depth, (leaf_pid - 1) // self.arity)

    def path_to_root(self, leaf_pid: ProcessorId) -> list[NodeAddr]:
        """Inner nodes on the path from *leaf_pid*'s parent up to the root."""
        path = [self.leaf_parent(leaf_pid)]
        while not path[-1].is_root:
            path.append(self.parent(path[-1]))
        return path

    # ------------------------------------------------------------------
    # Identifier intervals (§4's replacement-processor scheme)
    # ------------------------------------------------------------------
    def id_interval(self, addr: NodeAddr) -> range:
        """Replacement-id interval of a non-root inner node.

        The first id of the interval is the node's initial worker; retired
        workers are replaced by the next id.  Intervals are pairwise
        disjoint over all non-root inner nodes.
        """
        self._check_addr(addr)
        if addr.is_root:
            raise ConfigurationError(
                "the root walks ids 1, 2, 3, ... and has no static interval"
            )
        width = self.arity ** (self.depth - addr.level)
        start = (addr.level - 1) * self._band + addr.index * width + 1
        return range(start, start + width)

    def initial_worker(self, addr: NodeAddr) -> ProcessorId:
        """Initial processor id working for inner node *addr*.

        The root starts at processor 1 (it shares ids with other roles by
        design; the Bottleneck Theorem's accounting allows one root tenure
        plus one inner tenure per processor).
        """
        if addr.is_root:
            return 1
        return self.id_interval(addr)[0]

    def max_interval_id(self) -> ProcessorId:
        """Largest id any non-root interval contains: depth · arity^depth."""
        return self.depth * self._band

    def root_walk_budget(self, slack: int = 8) -> ProcessorId:
        """Upper bound on root ids needed for one one-shot workload.

        The root handles about three messages per operation (receive the
        forwarded inc, send the value, and occasionally a child's
        id-update) and retires every ``2·arity`` messages, so about
        ``2n/arity`` ids suffice; *slack* absorbs cascade effects at tiny
        ``k``.
        """
        return 2 * self.leaf_count // self.arity + slack

    def processor_requirement(self) -> int:
        """Processor ids the tree may touch (leaves, intervals, root walk).

        For the paper's shape this is ``n`` plus a small root-walk margin
        at ``k = 2``; for ablation shapes with ``depth > arity`` it can
        exceed the leaf count (reserve processors, reported by E10).
        """
        return max(self.leaf_count, self.max_interval_id(), self.root_walk_budget())

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------
    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.depth:
            raise ConfigurationError(
                f"level {level} outside inner levels 0..{self.depth}"
            )

    def _check_addr(self, addr: NodeAddr) -> None:
        self._check_level(addr.level)
        if not 0 <= addr.index < self.arity**addr.level:
            raise ConfigurationError(
                f"index {addr.index} outside level {addr.level} "
                f"(0..{self.arity ** addr.level - 1})"
            )

    def __repr__(self) -> str:
        return (
            f"TreeGeometry(arity={self.arity}, depth={self.depth}, "
            f"leaves={self.leaf_count})"
        )


def paper_k_for(n: int) -> int:
    """The paper's ``k`` for *n* processors: the smallest k with k^(k+1) ≥ n."""
    return TreeGeometry.for_processors(n).arity


def lower_bound_k(n: int) -> float:
    """Real-valued solution ``k`` of ``k·kᵏ = n`` — the lower-bound curve.

    Solved by bisection on the strictly increasing map k ↦ (k+1)·ln k.
    Returns 1.0 for n ≤ 1.
    """
    if n <= 1:
        return 1.0
    target = math.log(n)
    lo, hi = 1.0, 2.0
    while (hi + 1.0) * math.log(hi) < target:
        hi *= 2.0
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if (mid + 1.0) * math.log(mid) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
