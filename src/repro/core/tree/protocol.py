"""Wire protocol of the communication-tree counter.

Four message kinds implement §4's counter:

* ``inc`` — an increment request climbing toward the root.  Carries the
  originating leaf's id and the address of the node role it is meant for.
* ``value`` — the root's answer, sent directly to the originating leaf.
* ``handoff`` — one of the ``k+2`` (``k+3`` for the root) messages a
  retiring worker sends its successor: the new job, the parent id, the
  ``k`` child ids (and the counter value for the root).  Each fits in
  O(log n) bits, as the paper requires.
* ``id-update`` — a retiring worker telling the node's parent and children
  where the role now lives.

Role addressing: messages meant for a node role carry the node's address
key so a processor playing several roles (leaf + inner + root is possible
by design) can dispatch, and so a processor that no longer plays the role
can forward the message to its successor — the "proper handshaking
protocol with a constant number of extra messages" the paper appeals to.
"""

from __future__ import annotations

from repro.core.tree.geometry import NodeAddr
from repro.sim.messages import ProcessorId

KIND_INC = "inc"
KIND_VALUE = "value"
KIND_HANDOFF = "handoff"
KIND_ID_UPDATE = "id-update"

RoleKey = tuple
"""Payload-safe role identifier: ``("node", level, index)`` or
``("leaf", pid)``."""


def node_key(addr: NodeAddr) -> RoleKey:
    """Role key for inner node *addr*."""
    return ("node", addr.level, addr.index)


def leaf_key(pid: ProcessorId) -> RoleKey:
    """Role key for the leaf role of processor *pid*."""
    return ("leaf", pid)


def is_leaf_key(key: RoleKey) -> bool:
    """True if *key* addresses a leaf role."""
    return key[0] == "leaf"


def addr_of(key: RoleKey) -> NodeAddr:
    """Recover the :class:`NodeAddr` from an inner-node role key."""
    if key[0] != "node":
        raise ValueError(f"{key!r} is not an inner-node role key")
    return NodeAddr(key[1], key[2])

