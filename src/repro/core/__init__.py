"""The paper's primary contribution: the bottleneck-optimal tree counter.

Re-exports the public pieces of :mod:`repro.core.tree` plus the lemma
checkers of :mod:`repro.core.invariants`.
"""

from repro.core.tree import (
    ROOT,
    IntervalMode,
    NodeAddr,
    NodeRole,
    RetirementEvent,
    RoleRegistry,
    TreeCounter,
    TreeGeometry,
    TreePolicy,
    lower_bound_k,
    paper_k_for,
)

__all__ = [
    "IntervalMode",
    "NodeAddr",
    "NodeRole",
    "ROOT",
    "RetirementEvent",
    "RoleRegistry",
    "TreeCounter",
    "TreeGeometry",
    "TreePolicy",
    "lower_bound_k",
    "paper_k_for",
]
