"""Exploration strategies: who answers the scheduler's questions.

A strategy is asked two kinds of questions by the
:class:`~repro.explore.controller.ScheduleController`:

* ``choose_delay(message, menu_size, controller)`` — index into the
  delay menu for one message;
* ``choose_tiebreak(ready, controller)`` — index into the equal-time
  ready list (entries in default FIFO order, so 0 = baseline).

Three searching strategies ship, matching the tentpole:

* :class:`RandomWalkStrategy` — seeded uniform choices; the classic
  random-walk schedule fuzzer.
* :class:`PermutationStrategy` — delay-order permutation sampling: each
  episode draws one permutation of the delay menu and applies it
  cyclically over the message stream, so consecutive messages get
  systematically *different* delays — the cheapest way to invert
  delivery orders — while tie-breaks stay at baseline.
* :class:`GuidedStrategy` — reuses the lower-bound proof's weight
  function (:func:`repro.lowerbound.weights.weight_of`) to steer toward
  high-contention schedules: candidates touching the currently loaded
  processors score geometrically higher, and the strategy picks
  proportionally to score.  The intuition is the adversary argument
  itself — schedules that keep hammering the hot spot are where
  stale-value and ordering bugs live.

Plus two auxiliary ones: :class:`BaselineStrategy` (all defaults; the
uncontrolled execution) and :class:`ReplayStrategy` (answers from a
recorded decision list; this is how repro files re-run and how
shrinking evaluates candidates).

Determinism: every strategy derives all randomness from ``(seed,
episode)`` via :func:`episode_rng`, never from global state, so an
exploration is a pure function of its configuration.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.lowerbound.weights import weight_of
from repro.sim.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.explore.controller import ScheduleController

STRATEGY_NAMES = ("random", "permute", "guided", "baseline")
"""Strategies the budget/strategy grammar accepts."""

_SEED_STRIDE = 2_654_435_761
"""Odd multiplier (Knuth's) spreading (seed, episode) pairs across the
generator's seed space; plain ``seed + episode`` would make episode 1 of
seed 0 identical to episode 0 of seed 1."""


def episode_rng(seed: int, episode: int) -> random.Random:
    """A deterministic, process-independent generator for one episode."""
    return random.Random(seed * _SEED_STRIDE + episode)


class Strategy(ABC):
    """One source of scheduling decisions (see module docstring)."""

    name: str = "strategy"

    def begin_episode(self, episode: int) -> None:
        """Re-seed / re-position for episode *episode* (0-based)."""

    @abstractmethod
    def choose_delay(
        self, message: Message, menu_size: int, controller: "ScheduleController"
    ) -> int:
        """Menu index for *message*'s delay (clamped by the controller)."""

    @abstractmethod
    def choose_tiebreak(
        self,
        ready: list[tuple[float, int, Callable[..., None], Any]],
        controller: "ScheduleController",
    ) -> int:
        """Ready-list index to run first (clamped by the controller)."""

    def choose_adversary(
        self, kind: str, count: int, controller: "ScheduleController"
    ) -> int:
        """Index into an adversary choice point (clamped by the controller).

        Byzantine fault plans expose *their* degrees of freedom through
        the same controller the scheduler uses: ``"byz-pid"`` picks
        which processor joins the compromised set (asked once per
        Byzantine rule at binding time, before any traffic), and
        ``"byz-rule"`` picks a mixed rule's per-message behaviour.  The
        default is 0 — deterministic strategies (baseline, permutation)
        leave the adversary on its first choice, searching strategies
        override with seeded draws, and replay answers from its recorded
        stream like every other decision.
        """
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BaselineStrategy(Strategy):
    """Always the default: unit delay, FIFO ties — the uncontrolled run."""

    name = "baseline"

    def choose_delay(
        self, message: Message, menu_size: int, controller: "ScheduleController"
    ) -> int:
        return 0

    def choose_tiebreak(
        self,
        ready: list[tuple[float, int, Callable[..., None], Any]],
        controller: "ScheduleController",
    ) -> int:
        return 0


class ReplayStrategy(Strategy):
    """Answers every question from a fixed decision list.

    Decisions past the end of the list are 0 (the baseline), so a
    truncated — e.g. shrunk — schedule is still a complete answer sheet:
    the run it induces simply rejoins the baseline after the list runs
    out.
    """

    name = "replay"

    def __init__(self, decisions: Sequence[int]) -> None:
        self._decisions = tuple(int(d) for d in decisions)
        self._cursor = 0

    def begin_episode(self, episode: int) -> None:
        self._cursor = 0

    def _next(self) -> int:
        if self._cursor >= len(self._decisions):
            return 0
        decision = self._decisions[self._cursor]
        self._cursor += 1
        return decision

    def choose_delay(
        self, message: Message, menu_size: int, controller: "ScheduleController"
    ) -> int:
        return self._next()

    def choose_tiebreak(
        self,
        ready: list[tuple[float, int, Callable[..., None], Any]],
        controller: "ScheduleController",
    ) -> int:
        return self._next()

    def choose_adversary(
        self, kind: str, count: int, controller: "ScheduleController"
    ) -> int:
        return self._next()

    def __repr__(self) -> str:
        return f"ReplayStrategy({len(self._decisions)} decisions)"


class RandomWalkStrategy(Strategy):
    """Uniform seeded choices at every decision point."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = episode_rng(seed, 0)

    def begin_episode(self, episode: int) -> None:
        self._rng = episode_rng(self._seed, episode)

    def choose_delay(
        self, message: Message, menu_size: int, controller: "ScheduleController"
    ) -> int:
        return self._rng.randrange(menu_size)

    def choose_tiebreak(
        self,
        ready: list[tuple[float, int, Callable[..., None], Any]],
        controller: "ScheduleController",
    ) -> int:
        return self._rng.randrange(len(ready))

    def choose_adversary(
        self, kind: str, count: int, controller: "ScheduleController"
    ) -> int:
        return self._rng.randrange(count)

    def __repr__(self) -> str:
        return f"RandomWalkStrategy(seed={self._seed})"


class PermutationStrategy(Strategy):
    """Delay-order permutation sampling (see module docstring).

    Each episode shuffles the menu indices into one permutation and
    deals it out cyclically, so within every window of ``menu_size``
    consecutive messages all delays differ — maximally order-inverting
    for neighbouring sends.  Episode 0 uses the identity permutation
    (the baseline), so the first episode of any exploration doubles as a
    sanity run.
    """

    name = "permute"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._episode = 0
        self._permutation: list[int] = []
        self._cursor = 0

    def begin_episode(self, episode: int) -> None:
        self._cursor = 0
        self._episode = episode
        self._permutation = []  # sized lazily: menu size arrives per call

    def _deal(self, menu_size: int) -> int:
        if len(self._permutation) != menu_size:
            self._permutation = list(range(menu_size))
            if self._episode > 0:
                episode_rng(self._seed, self._episode).shuffle(self._permutation)
            self._cursor = 0
        choice = self._permutation[self._cursor % menu_size]
        self._cursor += 1
        return choice

    def choose_delay(
        self, message: Message, menu_size: int, controller: "ScheduleController"
    ) -> int:
        return self._deal(menu_size)

    def choose_tiebreak(
        self,
        ready: list[tuple[float, int, Callable[..., None], Any]],
        controller: "ScheduleController",
    ) -> int:
        return 0

    def __repr__(self) -> str:
        return f"PermutationStrategy(seed={self._seed})"


class GuidedStrategy(Strategy):
    """Weight-guided contention steering (see module docstring).

    Args:
        seed: randomness source (softmax-style sampling needs ties
            broken and exploration kept alive).
        base: geometric base of the weight function; the proof ties it
            to the bottleneck load, here it is simply how sharply the
            strategy prefers hot processors (must exceed 1).
    """

    name = "guided"

    def __init__(self, seed: int = 0, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ConfigurationError(f"guided base must exceed 1, got {base}")
        self._seed = seed
        self._base = base
        self._rng = episode_rng(seed, 0)

    def begin_episode(self, episode: int) -> None:
        self._rng = episode_rng(self._seed, episode)

    def _score(self, message: Message, controller: "ScheduleController") -> float:
        # The proof's per-list weight, applied to the message's
        # receiver-then-sender "list": messages into the hot spot carry
        # the most weight, exactly the contention the adversary farms.
        loads = controller.loads()
        return weight_of((message[1], message[0]), loads, self._base)

    def choose_delay(
        self, message: Message, menu_size: int, controller: "ScheduleController"
    ) -> int:
        # Hot-target messages get spread across the menu (piling distinct
        # delays onto the hot spot's in-box maximizes overlap there);
        # cold traffic mostly keeps the unit delay.
        score = self._score(message, controller)
        weights = [1.0 + score * index for index in range(menu_size)]
        return self._rng.choices(range(menu_size), weights=weights)[0]

    def choose_tiebreak(
        self,
        ready: list[tuple[float, int, Callable[..., None], Any]],
        controller: "ScheduleController",
    ) -> int:
        # Prefer running the heaviest-weighted delivery first, keeping
        # the hot spot saturated; non-message events score the floor.
        best_index = 0
        best_score = -1.0
        for index, entry in enumerate(ready):
            arg = entry[3]
            if isinstance(arg, tuple) and len(arg) == 7:
                score = self._score(arg, controller)  # type: ignore[arg-type]
            else:
                score = 0.0
            score += self._rng.random() * 1e-9  # deterministic tie noise
            if score > best_score:
                best_score = score
                best_index = index
        return best_index

    def choose_adversary(
        self, kind: str, count: int, controller: "ScheduleController"
    ) -> int:
        # Compromising low pids is the adversary's strongest opening:
        # protocol infrastructure (central servers, tree roots, phase
        # kings of early phases) sits at small ids across this repo's
        # counters, so weight the draw geometrically toward index 0
        # while keeping every choice reachable.
        if kind == "byz-pid":
            weights = [self._base ** (count - 1 - i) for i in range(count)]
            return self._rng.choices(range(count), weights=weights)[0]
        return self._rng.randrange(count)

    def __repr__(self) -> str:
        return f"GuidedStrategy(seed={self._seed}, base={self._base})"


def make_strategy(name: str, seed: int = 0, **params: Any) -> Strategy:
    """Instantiate a strategy by grammar name."""
    if name == "random":
        return RandomWalkStrategy(seed=seed, **params)
    if name == "permute":
        return PermutationStrategy(seed=seed, **params)
    if name == "guided":
        return GuidedStrategy(seed=seed, **params)
    if name == "baseline":
        if params:
            raise ConfigurationError("baseline strategy takes no parameters")
        return BaselineStrategy()
    raise ConfigurationError(
        f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}"
    )


def parse_plan(
    text: str, default_budget: int, seed: int = 0
) -> list[tuple[Strategy, int]]:
    """Parse the budget/strategy grammar into (strategy, episodes) legs.

    Grammar: a comma-separated list of legs, each
    ``NAME[:BUDGET][?key=value&...]`` — e.g. ``"guided"``,
    ``"random:50"``, ``"guided:100?base=4"``, or the mixed plan
    ``"random:50,permute:50,guided:100"``.  A leg without an explicit
    budget gets *default_budget* episodes.  Episode indices are global
    across legs, so the same plan always explores the same schedules.
    """
    if not text.strip():
        raise ConfigurationError("empty strategy plan")
    legs: list[tuple[Strategy, int]] = []
    for raw_leg in text.split(","):
        leg = raw_leg.strip()
        if not leg:
            raise ConfigurationError(f"empty leg in strategy plan {text!r}")
        params: dict[str, Any] = {}
        if "?" in leg:
            leg, _, query = leg.partition("?")
            for pair in query.split("&"):
                if "=" not in pair:
                    raise ConfigurationError(
                        f"malformed strategy parameter {pair!r} "
                        "(expected key=value)"
                    )
                key, _, value = pair.partition("=")
                try:
                    params[key.strip()] = float(value)
                except ValueError:
                    raise ConfigurationError(
                        f"strategy parameter {key.strip()!r} must be "
                        f"numeric, got {value!r}"
                    ) from None
        budget = default_budget
        if ":" in leg:
            leg, _, budget_text = leg.partition(":")
            try:
                budget = int(budget_text)
            except ValueError:
                raise ConfigurationError(
                    f"malformed budget {budget_text!r} in leg {raw_leg.strip()!r}"
                ) from None
        if budget <= 0:
            raise ConfigurationError(
                f"leg {raw_leg.strip()!r} has non-positive budget {budget}"
            )
        try:
            strategy = make_strategy(leg.strip(), seed=seed, **params)
        except TypeError:
            raise ConfigurationError(
                f"strategy {leg.strip()!r} rejects parameters {sorted(params)}"
            ) from None
        legs.append((strategy, budget))
    return legs
