"""The controlled scheduler: one object owning both decision points.

The simulator exposes exactly two degrees of scheduling freedom its
model permits: per-message delays (the delivery policy) and the order of
equal-time events (the queue's tie-break).  A
:class:`ScheduleController` plugs into both at once — it *is* a
:class:`~repro.sim.policies.DeliveryPolicy` (handed to the session's
network) and a :class:`~repro.sim.events.SchedulerHook` (installed on
the same network) — and funnels every choice through one strategy,
recording the decision stream as it goes.

Recording and replaying are the same code path: a
:class:`~repro.explore.strategies.ReplayStrategy` simply answers each
decision point from a fixed list.  The controller clamps every strategy
answer into range (modulo), so arbitrary integer lists — in particular
shrunk ones — are always legal schedules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import SchedulerHook
from repro.sim.messages import Message
from repro.sim.policies import DeliveryPolicy
from repro.explore.schedule import DEFAULT_DELAY_MENU, Schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.explore.strategies import Strategy
    from repro.sim.network import Network


class ScheduleController(DeliveryPolicy, SchedulerHook):
    """Routes every scheduling decision of one episode through a strategy.

    Args:
        strategy: decision source (random walk, permutation, guided,
            replay...); already seeded/positioned for this episode.
        delay_menu: the delays a delay decision may index.

    The controller must be installed on *both* control points::

        controller = ScheduleController(strategy)
        session = RunSession(spec, n, policy=controller, ...)
        controller.attach(session.network)   # installs the tie-break hook

    After the run, :attr:`recorded` is the episode's full schedule.
    """

    constant_delay = None  # every delay is a decision; no fast path

    def __init__(
        self,
        strategy: "Strategy",
        delay_menu: tuple[float, ...] = DEFAULT_DELAY_MENU,
    ) -> None:
        if not delay_menu:
            raise ValueError("delay menu must not be empty")
        self._strategy = strategy
        self._menu = delay_menu
        self._decisions: list[int] = []
        self._kinds: list[str] = []
        self._loads: Callable[[], dict[int, int]] | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        """Install the tie-break hook and expose the network's loads.

        Loads (the paper's ``m_p``) are what the guided strategy steers
        on; they come from the live trace, so the strategy always sees
        the contention profile *so far*.
        """
        network.install_scheduler_hook(self)
        trace = network.trace
        if trace.keeps_loads:
            self._loads = trace.loads

    def loads(self) -> dict[int, int]:
        """Per-processor message loads so far (empty before attach)."""
        if self._loads is None:
            return {}
        return self._loads()

    @property
    def delay_menu(self) -> tuple[float, ...]:
        """The delays a delay decision indexes."""
        return self._menu

    @property
    def recorded(self) -> Schedule:
        """The decision stream consumed so far."""
        return Schedule(
            decisions=tuple(self._decisions), kinds=tuple(self._kinds)
        )

    @property
    def decision_count(self) -> int:
        """Number of decisions made so far."""
        return len(self._decisions)

    # ------------------------------------------------------------------
    # DeliveryPolicy: the delay decision point
    # ------------------------------------------------------------------
    def delay(self, message: Message) -> float:
        choice = self._strategy.choose_delay(message, len(self._menu), self)
        choice %= len(self._menu)
        self._decisions.append(choice)
        self._kinds.append("delay")
        return self._menu[choice]

    def fork(self) -> "ScheduleController":
        """Identity: the controller records one episode's stream.

        :meth:`Network.reset` forks the policy; a controller is
        per-episode, so forking must keep (not restart) the recording.
        """
        return self

    # ------------------------------------------------------------------
    # Adversary choice points (Byzantine fault plans)
    # ------------------------------------------------------------------
    def choose_adversary(self, kind: str, count: int) -> int:
        """Answer one adversary decision (``"byz-pid"``, ``"byz-rule"``).

        Byzantine plans route their free choices — which processors to
        compromise at binding time, which behaviour a ``mixed`` rule
        picks per message — through the episode's strategy, recorded in
        the same decision stream as delays and tie-breaks, so a repro
        file replays the adversary along with the schedule.
        """
        choice = self._strategy.choose_adversary(kind, count, self)
        choice %= count
        self._decisions.append(choice)
        self._kinds.append(kind)
        return choice

    # ------------------------------------------------------------------
    # SchedulerHook: the tie-break decision point
    # ------------------------------------------------------------------
    def choose(self, ready: list[tuple[float, int, Callable[..., None], Any]]) -> int:
        choice = self._strategy.choose_tiebreak(ready, self)
        choice %= len(ready)
        self._decisions.append(choice)
        self._kinds.append("tie")
        return choice

    def __repr__(self) -> str:
        return (
            f"ScheduleController(strategy={self._strategy!r}, "
            f"decisions={len(self._decisions)})"
        )
