"""Schedules as data: decision streams and replayable repro files.

A *schedule* is the explorer's entire influence over one execution,
flattened into a list of small integers consumed in a deterministic
order: each time the controlled scheduler must decide something — which
delay a message gets, which of several equal-time events runs first — it
consumes the next decision.  Two runs of the same configuration with the
same decision list are identical executions (the simulator has no other
nondeterminism), which is what makes failures shrinkable and repro files
replayable.

Decisions are *indices*, not raw values: a delay decision indexes the
episode's delay menu, a tie-break decision indexes the ready list.  An
index past the end of either is clamped (modulo), so any integer list is
a legal schedule — a property delta-shrinking relies on, since zeroing a
chunk must never produce an invalid schedule.  Decision ``0`` always
means "what the default scheduler would have done" (the first menu entry
/ FIFO order), so the all-zero schedule reproduces the baseline
execution and shrinking moves failures *toward* the baseline.

A :class:`ReproFile` bundles a failing schedule with everything needed
to re-run it — counter spec, ``n``, seed, fault spec, workload shape,
delay menu — plus the oracle that failed, as a small JSON document
suitable for checking into a regression corpus.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError

REPRO_SCHEMA = "explore-repro-v1"
"""Schema tag written into every repro file; bump on layout changes."""

DEFAULT_DELAY_MENU = (1.0, 2.0, 4.0, 7.0)
"""Delays a schedule may assign per message.  Index 0 is the unit delay,
so an all-default schedule reproduces the ``UnitDelay`` baseline; the
largest entry is kept below every shipped counter's retry timeout so an
adversarial-but-loss-free schedule cannot trigger spurious retransmits.
"""


@dataclass(frozen=True, slots=True)
class Schedule:
    """An immutable decision stream (see module docstring).

    ``kinds`` is optional provenance — a parallel tuple of ``"delay"`` /
    ``"tie"`` labels recorded during exploration.  It aids reading repro
    files but is ignored on replay: the consuming run re-derives each
    decision's meaning from its own decision points.
    """

    decisions: tuple[int, ...] = ()
    kinds: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for decision in self.decisions:
            if decision < 0:
                raise ConfigurationError(
                    f"schedule decisions must be non-negative, got {decision}"
                )
        if self.kinds and len(self.kinds) != len(self.decisions):
            raise ConfigurationError(
                f"kinds ({len(self.kinds)}) and decisions "
                f"({len(self.decisions)}) must have equal length"
            )

    def __len__(self) -> int:
        return len(self.decisions)

    def trimmed(self) -> "Schedule":
        """Drop trailing zero decisions (they equal the implicit default)."""
        end = len(self.decisions)
        while end > 0 and self.decisions[end - 1] == 0:
            end -= 1
        return Schedule(decisions=self.decisions[:end])

    def nonzero_count(self) -> int:
        """Decisions that deviate from the baseline scheduler."""
        return sum(1 for decision in self.decisions if decision != 0)


@dataclass(frozen=True, slots=True)
class ReproFile:
    """A replayable witness of one oracle failure.

    Attributes:
        counter: counter spec the episode ran (a registry spec string or
            a ``mutant[...]`` name from :mod:`repro.explore.mutants`).
        n: processor count.
        seed: exploration seed (fault plans are seeded from it).
        faults: fault-spec string (``""`` = failure-free).
        transport: ``"bare"`` or ``"reliable"``.
        workload: ``"staggered"`` or ``"sequential"``.
        gap: stagger gap (staggered workloads).
        rounds: incs per client.
        delay_menu: the per-message delay choices the schedule indexes.
        decisions: the (shrunk) schedule.
        oracle: name of the failing oracle.
        message: the failure message at record time (informational; the
            replay match is on the oracle name — messages may embed
            floats formatted differently across platforms).
        strategy: which strategy found it (provenance).
        episode: episode index within the exploration (provenance).
    """

    counter: str
    n: int
    seed: int
    oracle: str
    decisions: tuple[int, ...]
    faults: str = ""
    transport: str = "bare"
    workload: str = "staggered"
    gap: float = 3.0
    rounds: int = 1
    delay_menu: tuple[float, ...] = DEFAULT_DELAY_MENU
    message: str = ""
    strategy: str = ""
    episode: int = -1
    kinds: tuple[str, ...] = field(default=())

    def to_json(self) -> dict[str, Any]:
        """Plain-JSON form (stable key order comes from the dumper)."""
        return {
            "schema": REPRO_SCHEMA,
            "counter": self.counter,
            "n": self.n,
            "seed": self.seed,
            "faults": self.faults,
            "transport": self.transport,
            "workload": self.workload,
            "gap": self.gap,
            "rounds": self.rounds,
            "delay_menu": list(self.delay_menu),
            "decisions": list(self.decisions),
            "failure": {"oracle": self.oracle, "message": self.message},
            "provenance": {"strategy": self.strategy, "episode": self.episode},
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ReproFile":
        """Inverse of :meth:`to_json`; rejects unknown schemas."""
        schema = payload.get("schema")
        if schema != REPRO_SCHEMA:
            raise ConfigurationError(
                f"unsupported repro schema {schema!r} "
                f"(this build reads {REPRO_SCHEMA!r})"
            )
        failure = payload.get("failure", {})
        provenance = payload.get("provenance", {})
        return cls(
            counter=payload["counter"],
            n=int(payload["n"]),
            seed=int(payload["seed"]),
            faults=str(payload.get("faults", "")),
            transport=str(payload.get("transport", "bare")),
            workload=str(payload.get("workload", "staggered")),
            gap=float(payload.get("gap", 3.0)),
            rounds=int(payload.get("rounds", 1)),
            delay_menu=tuple(
                float(d) for d in payload.get("delay_menu", DEFAULT_DELAY_MENU)
            ),
            decisions=tuple(int(d) for d in payload["decisions"]),
            oracle=str(failure.get("oracle", "")),
            message=str(failure.get("message", "")),
            strategy=str(provenance.get("strategy", "")),
            episode=int(provenance.get("episode", -1)),
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the repro as pretty JSON (atomic: tmp + replace)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "ReproFile":
        """Read a repro file written by :meth:`save`."""
        return cls.from_json(json.loads(pathlib.Path(path).read_text()))
