"""Parallel, cacheable exploration: the SweepRunner pattern for schedules.

Explorations partition perfectly: episode ``i`` is a pure function of
``(configuration, i)``, so a budget of 200 episodes can run as eight
windows of 25 on eight forked workers and concatenate to *exactly* the
serial result.  An :class:`ExploreTask` names one window by value (the
same discipline as :class:`~repro.workloads.sweep.SweepPoint` — spec
strings, not live objects), :func:`execute_task` recreates and runs it
from scratch in a worker process, and :class:`ExploreRunner` adds the
on-disk JSON cache keyed by :meth:`ExploreTask.config_hash`.

Execution fans out through the same
:func:`~repro.workloads.sweep.fan_out` engine the sweep runner uses, so
process-pool behavior (fork context, pool sizing, input-order results)
is identical across both subsystems.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.explore.engine import (
    DEFAULT_EPISODE_EVENT_LIMIT,
    ExploreConfig,
    ExplorationReport,
    Explorer,
)
from repro.explore.mutants import is_mutant_spec
from repro.explore.schedule import DEFAULT_DELAY_MENU, ReproFile

_CACHE_SCHEMA = "explore-v1"
"""Version tag mixed into every task hash; bump when episode semantics
change (strategy seeding, oracle suite, workload shapes) so stale cached
explorations are never reused."""

_DEFAULT_WINDOW = 25
"""Episodes per partition window: small enough to spread a default
budget across a workstation's cores, large enough that per-process
import/fork overhead stays amortized."""


@dataclass(frozen=True, slots=True)
class ExploreTask:
    """One exploration window, named entirely by value.

    ``episode_start``/``episode_count`` select the window;
    ``episode_count=None`` means "to the end of the plan".  All other
    fields mirror :class:`~repro.explore.engine.ExploreConfig`.
    """

    counter: str
    n: int = 8
    seed: int = 0
    strategy: str = "random"
    budget: int = 100
    faults: str = ""
    transport: str = "bare"
    workload: str = "staggered"
    gap: float = 3.0
    rounds: int = 1
    delay_menu: tuple[float, ...] = DEFAULT_DELAY_MENU
    event_limit: int = DEFAULT_EPISODE_EVENT_LIMIT
    shrink: bool = True
    max_failures: int = 5
    episode_start: int = 0
    episode_count: int | None = None

    def to_config(self) -> ExploreConfig:
        """The engine configuration this task re-creates in a worker."""
        payload = asdict(self)
        payload.pop("episode_start")
        payload.pop("episode_count")
        payload["delay_menu"] = tuple(self.delay_menu)
        return ExploreConfig(**payload)

    def canonical_counter(self) -> str:
        """Canonical spec (mutant names are already canonical)."""
        if is_mutant_spec(self.counter):
            return self.counter.strip()
        from repro.registry import canonical_spec

        return canonical_spec(self.counter)

    def canonical_faults(self) -> str:
        """The fault spec in canonical form (``""`` when fault-free)."""
        if not self.faults.strip():
            return ""
        from repro.sim.faults import canonical_fault_spec

        return canonical_fault_spec(self.faults)

    def config_hash(self) -> str:
        """Stable hex digest naming this task (the cache key)."""
        payload = {
            **asdict(self),
            "counter": self.canonical_counter(),
            "faults": self.canonical_faults(),
            "delay_menu": list(self.delay_menu),
        }
        blob = json.dumps({"schema": _CACHE_SCHEMA, **payload}, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True, slots=True)
class ExploreTaskOutcome:
    """What one exploration window produced (cache file payload)."""

    task: ExploreTask
    episodes: int
    decisions: int
    failures: tuple[ReproFile, ...] = ()
    verdict_counts: Mapping[str, Mapping[str, int]] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "task": asdict(self.task),
            "episodes": self.episodes,
            "decisions": self.decisions,
            "failures": [repro.to_json() for repro in self.failures],
            "verdicts": {
                oracle: dict(counts)
                for oracle, counts in self.verdict_counts.items()
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ExploreTaskOutcome":
        task_payload = dict(payload["task"])
        task_payload["delay_menu"] = tuple(task_payload["delay_menu"])
        return cls(
            task=ExploreTask(**task_payload),
            episodes=int(payload["episodes"]),
            decisions=int(payload["decisions"]),
            failures=tuple(
                ReproFile.from_json(item) for item in payload.get("failures", [])
            ),
            verdict_counts={
                oracle: dict(counts)
                for oracle, counts in payload.get("verdicts", {}).items()
            },
        )


def execute_task(task: ExploreTask) -> ExploreTaskOutcome:
    """Run one window from scratch (module-level, hence picklable)."""
    explorer = Explorer(task.to_config())
    report = explorer.run(start=task.episode_start, count=task.episode_count)
    return ExploreTaskOutcome(
        task=task,
        episodes=report.episodes,
        decisions=report.decisions,
        failures=tuple(report.failures),
        verdict_counts=report.verdict_counts,
    )


def partition(task: ExploreTask, window: int = _DEFAULT_WINDOW) -> list[ExploreTask]:
    """Split *task* into fixed-size episode windows.

    The partition depends only on the plan's total budget and *window*
    — never on the worker count — so any parallelism degree reproduces
    the serial exploration.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    total = Explorer(task.to_config()).total_episodes
    start = task.episode_start
    end = total if task.episode_count is None else min(
        total, start + task.episode_count
    )
    tasks: list[ExploreTask] = []
    while start < end:
        count = min(window, end - start)
        tasks.append(
            ExploreTask(
                **{
                    **asdict(task),
                    "episode_start": start,
                    "episode_count": count,
                    "delay_menu": tuple(task.delay_menu),
                }
            )
        )
        start += count
    return tasks


def merge_outcomes(
    task: ExploreTask, outcomes: Sequence[ExploreTaskOutcome]
) -> ExplorationReport:
    """Concatenate window outcomes back into one exploration report.

    Windows are merged in episode order; ``max_failures`` is re-applied
    across the merged stream so the result matches the serial run's
    early-stop behavior when failures cluster early.
    """
    report = ExplorationReport(config=task.to_config())
    for outcome in sorted(outcomes, key=lambda o: o.task.episode_start):
        report.episodes += outcome.episodes
        report.decisions += outcome.decisions
        for oracle, counts in outcome.verdict_counts.items():
            merged = report.verdict_counts.setdefault(
                oracle, {"pass": 0, "fail": 0, "skip": 0}
            )
            for key, value in counts.items():
                merged[key] += value
        for repro in outcome.failures:
            if len(report.failures) < task.max_failures:
                report.failures.append(repro)
    return report


class ExploreRunner:
    """Executes exploration tasks, optionally in parallel and/or cached.

    Mirrors :class:`~repro.workloads.sweep.SweepRunner`: ``workers=1``
    runs serially, ``None`` uses every core; ``cache_dir`` enables the
    on-disk JSON cache keyed by :meth:`ExploreTask.config_hash` (atomic
    tmp-then-replace writes, corrupt entries recomputed).
    """

    def __init__(
        self,
        workers: int | None = 1,
        cache_dir: str | pathlib.Path | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._cache_dir = pathlib.Path(cache_dir) if cache_dir else None

    @property
    def workers(self) -> int | None:
        """Configured worker-process count (``None`` = all cores)."""
        return self._workers

    def run(self, tasks: Sequence[ExploreTask]) -> list[ExploreTaskOutcome]:
        """Execute every task (cache-aware); outcomes in input order."""
        from repro.workloads.sweep import fan_out

        outcomes: list[ExploreTaskOutcome | None] = [None] * len(tasks)
        missing: list[int] = []
        for index, task in enumerate(tasks):
            cached = self._cache_load(task)
            if cached is not None:
                outcomes[index] = cached
            else:
                missing.append(index)
        if missing:
            fresh = fan_out(
                execute_task, [tasks[i] for i in missing], self._workers
            )
            for index, outcome in zip(missing, fresh):
                self._cache_store(outcome)
                outcomes[index] = outcome
        return outcomes  # type: ignore[return-value]

    def explore(
        self, task: ExploreTask, window: int = _DEFAULT_WINDOW
    ) -> ExplorationReport:
        """Partition *task*, fan the windows out, merge the report."""
        return merge_outcomes(task, self.run(partition(task, window)))

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_path(self, task: ExploreTask) -> pathlib.Path | None:
        if self._cache_dir is None:
            return None
        return self._cache_dir / f"{task.config_hash()}.json"

    def _cache_load(self, task: ExploreTask) -> ExploreTaskOutcome | None:
        path = self._cache_path(task)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            return ExploreTaskOutcome.from_json(payload)
        except (OSError, KeyError, ValueError):  # corrupt entry: recompute
            return None

    def _cache_store(self, outcome: ExploreTaskOutcome) -> None:
        path = self._cache_path(outcome.task)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(outcome.to_json(), sort_keys=True))
        tmp.replace(path)
