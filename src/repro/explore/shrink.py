"""Delta-shrinking failing schedules toward the baseline.

A found failure is typically a long decision stream where only a couple
of decisions matter.  Shrinking here is *zeroing*, not deletion:
decision ``0`` means "what the default scheduler would have done", so
setting a window of decisions to zero moves the schedule toward the
baseline execution without shifting the positions — and hence the
meaning — of the decisions that follow.  (Deleting entries would
re-align every later decision with a different decision point, making
candidates incomparable to the original failure.)  Trailing zeros are
then trimmed for free, because a replayed schedule is implicitly
zero-padded.

The algorithm is classic ddmin over windows: try to zero halves, then
quarters, down to single decisions, keeping every candidate that still
fails the *same oracle*.  The result is 1-minimal under zeroing: no
single remaining non-zero decision can be defaulted without losing the
failure.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.explore.schedule import Schedule

DEFAULT_MAX_EVALS = 400
"""Replay budget per shrink; a schedule of d decisions needs O(d log d)
evaluations in the worst case, so this caps pathological cases only."""


def shrink_schedule(
    decisions: Sequence[int],
    still_fails: Callable[[Sequence[int]], bool],
    max_evals: int = DEFAULT_MAX_EVALS,
) -> Schedule:
    """Zero out as much of *decisions* as possible, keeping the failure.

    Args:
        decisions: the failing schedule (assumed to fail — it is never
            re-evaluated itself).
        still_fails: replays a candidate and reports whether the *same*
            failure (same oracle) recurs.
        max_evals: replay budget; on exhaustion the best schedule found
            so far is returned (still a failing one).

    Returns the shrunk :class:`Schedule`, trailing zeros trimmed.
    """
    current = list(Schedule(tuple(decisions)).trimmed().decisions)
    evals = 0
    window = max(1, len(current) // 2)
    while window >= 1 and current:
        index = 0
        while index < len(current):
            end = min(index + window, len(current))
            if any(current[index:end]):
                candidate = list(current)
                candidate[index:end] = [0] * (end - index)
                if evals >= max_evals:
                    return Schedule(tuple(current)).trimmed()
                evals += 1
                if still_fails(candidate):
                    current = list(
                        Schedule(tuple(candidate)).trimmed().decisions
                    )
                    # Positions up to `index` are already minimal for
                    # this window size; continue from the same spot.
            index += window
        window //= 2
    return Schedule(tuple(current)).trimmed()
