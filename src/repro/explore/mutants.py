"""Seeded-bug counters: known-broken protocols the explorer must catch.

A schedule explorer that never fails is indistinguishable from one that
never looks.  This module keeps a small registry of *mutants* — counters
with one deliberate, schedule-dependent bug each — used to validate the
whole pipeline end to end: exploration finds a failing schedule, the
oracle suite names the broken invariant, shrinking reduces the schedule,
and the saved repro replays to the same failure.

Mutants deliberately live in their *own* registry, resolved only by the
explorer and the ``repro explore`` CLI: they must never appear in
``repro counters``, sweeps, or the registry completeness check — nobody
should be able to benchmark a counter that is wrong on purpose.

Shipped mutants:

* ``mutant[stale-central]`` — a central counter whose server answers
  from a *stale* value whenever a request arrives while a previous
  reply is still in flight (a read-increment race, as if the server
  read the counter before its last write landed).  Sequentially
  correct — every exploration baseline passes — but any schedule that
  overlaps two requests at the server yields a duplicate value, caught
  by the ``no-lost-increment`` (and ``linearizability``) oracles.
* ``mutant[cached-central]`` — a central counter whose clients cache
  the value they last saw and answer later incs locally from the cache.
  Correct for one inc per client; any workload revisiting a client
  (``rounds >= 2``) returns values with no message footprint — caught
  by the ``hot-spot`` oracle on sequential episodes.
* ``mutant[trusting-byz]`` — a Byzantine counter whose initiators trust
  the *first* result message instead of waiting for the ``f + 1``
  matching vouchers that guarantee an honest witness.  Correct without
  liars (every exploration baseline passes, and so does any clean
  fault-free run); under a ``byz=f@corrupt``-style plan, a schedule
  that lands a compromised replica's corrupted result first hands the
  client an invented value or an invented instance — caught by the
  ``validity``/``agreement`` oracles, or by the driver's strict
  result-count check (the ``runtime`` oracle) when the invention is a
  whole extra delivery.  This is the one mutant explored *with* a
  fault plan: the bug is in how the protocol weighs liars, so it needs
  liars to weigh.
"""

from __future__ import annotations

from typing import Callable

from repro.api import DistributedCounter
from repro.counters.byzantine import ByzantineCounter
from repro.counters.central import KIND_VALUE, CentralCounter, _CentralClient
from repro.errors import ConfigurationError
from repro.sim.messages import Message, ProcessorId
from repro.sim.network import Network


class _StaleReadClient(_CentralClient):
    """Server-side mutant: replies race the increment (see module doc)."""

    def on_message(self, message: Message) -> None:
        counter = self._counter
        if (
            message.kind == KIND_VALUE
            and self.pid != counter.server_id  # genuine client receiving
        ):
            counter.note_reply_landed()
            super().on_message(message)
            return
        if message.kind != KIND_VALUE and self.pid == counter.server_id:
            # An inc request at the server.  THE BUG: while any earlier
            # reply is still in flight the server answers with the value
            # *before* that reply's increment — a stale read — and skips
            # its own increment, so two clients learn the same value.
            if counter.replies_in_flight > 0:
                stale = counter.value - 1
                counter.note_reply_sent()
                self.send(message.sender, KIND_VALUE, {"value": stale})
                return
            counter.note_reply_sent()
        super().on_message(message)


class StaleReadCentralCounter(CentralCounter):
    """``mutant[stale-central]``: duplicate values under request overlap."""

    name = "mutant[stale-central]"

    def __init__(self, network: Network, n: int, server_id: ProcessorId = 1) -> None:
        self._replies_in_flight = 0
        super().__init__(network, n, server_id)
        # Rewire the processors to the buggy client class: registration
        # happened in the base constructor, so swap in place.
        for pid, client in list(self._clients.items()):
            mutant = _StaleReadClient(pid, self)
            mutant.attach(network)
            self._clients[pid] = mutant
            network._processors[pid] = mutant

    @property
    def replies_in_flight(self) -> int:
        """Replies sent but not yet received (the race window)."""
        return self._replies_in_flight

    def note_reply_sent(self) -> None:
        self._replies_in_flight += 1

    def note_reply_landed(self) -> None:
        self._replies_in_flight -= 1


class _CachedReadClient(_CentralClient):
    """Client-side mutant: answers repeat incs from a local cache."""

    def __init__(self, pid: ProcessorId, counter: CentralCounter) -> None:
        super().__init__(pid, counter)
        self._cached: int | None = None

    def request_inc(self) -> None:
        if self._cached is not None and self.pid != self._counter.server_id:
            # THE BUG: trust the cached value instead of the server.
            self._cached += 1
            self._counter.deliver_result(self.pid, self._cached)
            return
        super().request_inc()

    def on_message(self, message: Message) -> None:
        if message.kind == KIND_VALUE and self.pid != self._counter.server_id:
            self._cached = message.payload["value"]
        super().on_message(message)


class CachedReadCentralCounter(CentralCounter):
    """``mutant[cached-central]``: message-free stale answers on revisit."""

    name = "mutant[cached-central]"

    def __init__(self, network: Network, n: int, server_id: ProcessorId = 1) -> None:
        super().__init__(network, n, server_id)
        for pid in list(self._clients):
            mutant = _CachedReadClient(pid, self)
            mutant.attach(network)
            self._clients[pid] = mutant
            network._processors[pid] = mutant


class TrustingByzCounter(ByzantineCounter):
    """``mutant[trusting-byz]``: first result wins (see module docstring)."""

    name = "mutant[trusting-byz]"

    def __init__(self, network: Network, n: int, f: int = 0) -> None:
        super().__init__(network, n, f)
        # THE BUG: accept the very first result message instead of
        # waiting for f + 1 distinct vouchers, so one lying replica
        # whose (corrupted) result is scheduled first decides the
        # client's value with no honest witness.
        self.result_quorum = 1


MUTANT_FACTORIES: dict[str, Callable[[Network, int], DistributedCounter]] = {
    StaleReadCentralCounter.name: StaleReadCentralCounter,
    CachedReadCentralCounter.name: CachedReadCentralCounter,
    TrustingByzCounter.name: TrustingByzCounter,
}
"""The mutant mini-registry (explorer/CLI only; see module docstring)."""


def is_mutant_spec(text: str) -> bool:
    """True iff *text* names a mutant rather than a registry counter."""
    return text.strip() in MUTANT_FACTORIES


def build_mutant(text: str, network: Network, n: int) -> DistributedCounter:
    """Build the named mutant on *network*."""
    name = text.strip()
    try:
        factory = MUTANT_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(MUTANT_FACTORIES))
        raise ConfigurationError(
            f"unknown mutant {name!r}; known mutants: {known}"
        ) from None
    return factory(network, n)
