"""The exploration engine: drive one counter through many schedules.

One *episode* is one complete, controlled execution: a fresh
:class:`~repro.registry.RunSession` (or mutant wiring) whose delivery
policy and tie-breaking are both routed through a
:class:`~repro.explore.controller.ScheduleController`, driven through a
staggered (overlapping) or sequential workload, then judged by the
invariant-oracle suite (:mod:`repro.analysis.oracles`).  Episodes are
pure functions of ``(configuration, episode index)`` — strategies derive
all randomness from the exploration seed and the episode index — so an
exploration is deterministic, partitionable across processes, and every
failure is replayable from its recorded decision stream alone.

Failures are delta-shrunk (:mod:`repro.explore.shrink`) and wrapped into
:class:`~repro.explore.schedule.ReproFile` witnesses; replaying a repro
re-runs one episode with a
:class:`~repro.explore.strategies.ReplayStrategy` and checks the same
oracle fails again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.analysis.linearizability import TimedOp, run_staggered_timed
from repro.analysis.oracles import (
    Oracle,
    OracleContext,
    OracleVerdict,
    first_failure,
    run_oracles,
)
from repro.api import DistributedCounter
from repro.errors import CapabilityError, ConfigurationError, ReproError
from repro.explore.controller import ScheduleController
from repro.explore.mutants import build_mutant, is_mutant_spec
from repro.explore.schedule import DEFAULT_DELAY_MENU, ReproFile, Schedule
from repro.explore.shrink import shrink_schedule
from repro.explore.strategies import ReplayStrategy, Strategy, parse_plan
from repro.sim.faults import FaultPlan, parse_fault_spec
from repro.sim.messages import ProcessorId
from repro.sim.network import Network
from repro.workloads.driver import RunResult, run_sequence
from repro.workloads.sequences import one_shot, round_robin

DEFAULT_EPISODE_EVENT_LIMIT = 500_000
"""Per-episode event budget: adversarial schedules on a retrying counter
can livelock, and an exploration must bound every episode's cost.  A
blown budget is reported by the ``runtime`` oracle, not raised."""

EXPLORE_WORKLOADS = ("staggered", "sequential")
"""Workload shapes an episode may drive: ``"staggered"`` overlaps
operations (timed ops; linearizability territory), ``"sequential"``
quiesces between them (footprints; Hot-Spot territory)."""


@dataclass(frozen=True, slots=True)
class ExploreConfig:
    """Everything that names one exploration (the cache-key surface).

    Attributes:
        counter: registry spec string or ``mutant[...]`` name.
        n: processor count.
        seed: master seed — strategies and fault plans derive from it.
        strategy: budget/strategy plan text
            (:func:`~repro.explore.strategies.parse_plan` grammar).
        budget: default episodes for plan legs without an explicit one.
        faults: fault-spec string (``""`` = failure-free).
        transport: ``"bare"`` or ``"reliable"``.
        workload: ``"staggered"`` (overlapping, timed — the default) or
            ``"sequential"`` (quiescing, footprint-checked).
        gap: stagger gap between request injections.
        rounds: incs per client (``round_robin`` when > 1).
        delay_menu: delays a schedule may choose per message.
        event_limit: per-episode event budget.
        shrink: delta-shrink failing schedules (disable for raw speed).
        max_failures: stop exploring after this many distinct failures.
    """

    counter: str
    n: int = 8
    seed: int = 0
    strategy: str = "random"
    budget: int = 100
    faults: str = ""
    transport: str = "bare"
    workload: str = "staggered"
    gap: float = 3.0
    rounds: int = 1
    delay_menu: tuple[float, ...] = DEFAULT_DELAY_MENU
    event_limit: int = DEFAULT_EPISODE_EVENT_LIMIT
    shrink: bool = True
    max_failures: int = 5


@dataclass(slots=True)
class EpisodeOutcome:
    """One explored execution: its schedule and every verdict."""

    episode: int
    strategy: str
    schedule: Schedule
    verdicts: list[OracleVerdict]

    @property
    def failure(self) -> OracleVerdict | None:
        """The first failing verdict, or ``None``."""
        return first_failure(self.verdicts)


@dataclass(slots=True)
class ExplorationReport:
    """Aggregate result of one exploration."""

    config: ExploreConfig
    episodes: int = 0
    decisions: int = 0
    failures: list[ReproFile] = field(default_factory=list)
    verdict_counts: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff no oracle failed on any explored schedule."""
        return not self.failures

    def to_json(self) -> dict[str, Any]:
        """Plain-JSON form (CLI ``--json`` and bench reporting)."""
        return {
            "counter": self.config.counter,
            "n": self.config.n,
            "seed": self.config.seed,
            "strategy": self.config.strategy,
            "workload": self.config.workload,
            "faults": self.config.faults,
            "episodes": self.episodes,
            "decisions": self.decisions,
            "failures": [repro.to_json() for repro in self.failures],
            "verdicts": self.verdict_counts,
        }


class Explorer:
    """Runs episodes, judges them, shrinks failures (see module doc).

    Args:
        config: the exploration configuration.
        oracles: override the oracle suite (default:
            :func:`~repro.analysis.oracles.default_oracles`).

    Raises:
        ConfigurationError: malformed plan/workload/transport, faults on
            a mutant.
        CapabilityError: counter opted out of exploration
            (``explorable=False``) or is sequential-only under the
            staggered workload.
    """

    def __init__(
        self, config: ExploreConfig, oracles: Sequence[Oracle] | None = None
    ) -> None:
        if config.workload not in EXPLORE_WORKLOADS:
            raise ConfigurationError(
                f"unknown exploration workload {config.workload!r}; "
                f"expected one of {EXPLORE_WORKLOADS}"
            )
        if config.rounds < 1:
            raise ConfigurationError(
                f"rounds must be >= 1, got {config.rounds}"
            )
        self._config = config
        self._oracles = oracles
        self._is_mutant = is_mutant_spec(config.counter)
        if self._is_mutant:
            if config.transport != "bare":
                raise ConfigurationError(
                    "mutants are explored bare: no reliable transport "
                    "(the bug is the experiment)"
                )
            if config.faults:
                # A Byzantine-only plan is the one exception to "mutants
                # are explored bare": Byzantine-tolerance mutants (e.g.
                # mutant[trusting-byz]) only misbehave when there are
                # liars to trust.  Crash/loss rules stay rejected.
                probe = parse_fault_spec(config.faults, seed=config.seed)
                if not probe.byzantine_rules or len(probe.byzantine_rules) != len(
                    probe.rules
                ):
                    raise ConfigurationError(
                        "mutants are explored bare: no fault plans except "
                        "Byzantine-only ones (the bug is the experiment; "
                        "Byzantine mutants need liars to trust)"
                    )
            self._canonical = config.counter.strip()
        else:
            from repro.registry import parse_spec

            ref = parse_spec(config.counter)
            capabilities = ref.capabilities
            if not capabilities.explorable:
                raise CapabilityError(
                    f"counter {ref.canonical!r} opted out of schedule "
                    "exploration (explorable=False): its correctness "
                    "depends on delay assumptions the explorer violates"
                )
            if capabilities.sequential_only and config.workload == "staggered":
                raise CapabilityError(
                    f"counter {ref.canonical!r} is sequential-only; "
                    "explore it with workload='sequential'"
                )
            self._canonical = ref.canonical
        # Parse eagerly so malformed plans fail at construction.
        self._plan = parse_plan(config.strategy, config.budget, config.seed)

    @property
    def config(self) -> ExploreConfig:
        return self._config

    @property
    def canonical(self) -> str:
        """Canonical counter spec (mutant names are their own canon)."""
        return self._canonical

    @property
    def total_episodes(self) -> int:
        """Episodes the full plan runs (sum of leg budgets)."""
        return sum(budget for _, budget in self._plan)

    # ------------------------------------------------------------------
    # Episode assembly
    # ------------------------------------------------------------------
    def _episode_plan(
        self, controller: ScheduleController
    ) -> FaultPlan | None:
        """Parse a fresh fault plan and hand its adversary to *controller*.

        Parsed per episode (not once) because Byzantine binding is
        one-shot per plan: every episode must re-choose its compromised
        set through the episode's own strategy.  The ``"byz-pid"`` and
        ``"byz-rule"`` choices land in the recorded decision stream, so
        repro files replay the adversary along with the schedule.
        """
        config = self._config
        if not config.faults:
            return None
        plan = parse_fault_spec(config.faults, seed=config.seed)
        if plan.byzantine_rules:
            plan.bind_clients(config.n, chooser=controller.choose_adversary)
            plan.install_adversary(controller.choose_adversary)
        return plan

    def _build(
        self, controller: ScheduleController
    ) -> tuple[
        DistributedCounter,
        Network,
        frozenset[ProcessorId],
        bool,
        frozenset[ProcessorId],
        bool,
    ]:
        """Wire one episode; returns (counter, network, optional-pids,
        at-most-once, byzantine-pids, value-burning)."""
        config = self._config
        plan = self._episode_plan(controller)
        byz = plan.byzantine_pids if plan is not None else frozenset()
        # Crash/loss rules can orphan reserved values, so the validity
        # bound is only judgeable on Byzantine-only (or clean) plans.
        burning = plan is not None and len(plan.byzantine_rules) != len(
            plan.rules
        )
        if self._is_mutant:
            kwargs: dict = {"event_limit": config.event_limit}
            if plan is not None:
                kwargs["fault_plan"] = plan
            network = Network(policy=controller, **kwargs)
            network.run_context = self._canonical
            counter = build_mutant(config.counter, network, config.n)
            controller.attach(network)
            return counter, network, byz, plan is not None, byz, burning
        from repro.registry import RunSession, parse_spec

        ref = parse_spec(config.counter)
        if byz and not ref.capabilities.tolerates_byzantine:
            # The session gate would (rightly) refuse this pairing; the
            # explorer's whole point here is to produce the witness the
            # gate is protecting users from, so assemble directly.
            network = Network(
                policy=controller,
                event_limit=config.event_limit,
                fault_plan=plan,
            )
            network.run_context = self._canonical
            counter = ref.build(network, config.n)
            controller.attach(network)
            return counter, network, byz, True, byz, burning
        session = RunSession(
            config.counter,
            config.n,
            policy=controller,
            seed=config.seed,
            event_limit=config.event_limit,
            faults=plan,
            reliable=config.transport == "reliable",
        )
        controller.attach(session.network)
        plan = session.fault_plan
        optional = (
            plan.permanent_crash_pids | plan.byzantine_pids
            if plan is not None
            else frozenset()
        )
        # Under an active fault plan values may be burned (orphaned
        # combines, re-assigned reservations), so the value set need not
        # be dense — only duplicate-free.
        return (
            session.counter,
            session.network,
            optional,
            plan is not None,
            byz,
            burning,
        )

    def _batch(self) -> list[ProcessorId]:
        config = self._config
        if config.rounds == 1:
            return one_shot(config.n)
        return round_robin(config.n, config.rounds)

    def run_episode(self, strategy: Strategy, episode: int) -> EpisodeOutcome:
        """Execute and judge one episode under *strategy*."""
        config = self._config
        strategy.begin_episode(episode)
        controller = ScheduleController(strategy, config.delay_menu)
        counter, network, optional, at_most_once, byz, burning = self._build(
            controller
        )
        batch = self._batch()
        ops: list[TimedOp] | None = None
        result: RunResult | None = None
        exception: ReproError | None = None
        try:
            if config.workload == "staggered":
                ops = run_staggered_timed(
                    counter, batch, config.gap, optional=optional
                )
            else:
                result = run_sequence(
                    counter, batch, check_values=False, optional=optional
                )
        except ReproError as error:
            exception = error
        context = OracleContext(
            counter=counter,
            ops=ops,
            result=result,
            expected_ops=len(batch),
            at_most_once=at_most_once,
            byzantine_pids=byz,
            value_burning_faults=burning,
            exception=exception,
        )
        verdicts = run_oracles(context, self._oracles)
        return EpisodeOutcome(
            episode=episode,
            strategy=strategy.name,
            schedule=controller.recorded,
            verdicts=verdicts,
        )

    # ------------------------------------------------------------------
    # Replay + shrink
    # ------------------------------------------------------------------
    def replay(self, decisions: Sequence[int], episode: int = -1) -> EpisodeOutcome:
        """Re-run one episode answering every decision from *decisions*."""
        return self.run_episode(ReplayStrategy(decisions), max(episode, 0))

    def shrink(self, schedule: Schedule, oracle: str) -> Schedule:
        """Delta-shrink *schedule* preserving a failure of *oracle*."""

        def still_fails(candidate: Sequence[int]) -> bool:
            failure = self.replay(candidate).failure
            return failure is not None and failure.oracle == oracle

        return shrink_schedule(schedule.decisions, still_fails)

    # ------------------------------------------------------------------
    # The exploration loop
    # ------------------------------------------------------------------
    def _episodes(self) -> Iterator[tuple[int, Strategy]]:
        """Yield (global episode index, strategy) across all plan legs."""
        index = 0
        for strategy, budget in self._plan:
            for _ in range(budget):
                yield index, strategy
                index += 1

    def run(
        self, start: int = 0, count: int | None = None
    ) -> ExplorationReport:
        """Explore; optionally only the episode window ``[start, start+count)``.

        Windowing exists for deterministic parallel partitioning
        (:mod:`repro.explore.parallel`): episode ``i`` is the same
        execution whichever window runs it, so concatenating disjoint
        windows reproduces the serial exploration exactly.
        """
        report = ExplorationReport(config=self._config)
        remaining = count
        for episode, strategy in self._episodes():
            if episode < start:
                continue
            if remaining is not None:
                if remaining <= 0:
                    break
                remaining -= 1
            outcome = self.run_episode(strategy, episode)
            report.episodes += 1
            report.decisions += len(outcome.schedule)
            for verdict in outcome.verdicts:
                counts = report.verdict_counts.setdefault(
                    verdict.oracle, {"pass": 0, "fail": 0, "skip": 0}
                )
                if verdict.skipped:
                    counts["skip"] += 1
                elif verdict.ok:
                    counts["pass"] += 1
                else:
                    counts["fail"] += 1
            failure = outcome.failure
            if failure is None:
                continue
            schedule = outcome.schedule.trimmed()
            if self._config.shrink:
                schedule = self.shrink(schedule, failure.oracle)
                # Re-derive the message from the shrunk schedule: the
                # witness users replay is the shrunk one.
                replayed = self.replay(schedule.decisions).failure
                if replayed is not None:
                    failure = replayed
            report.failures.append(
                ReproFile(
                    counter=self._config.counter,
                    n=self._config.n,
                    seed=self._config.seed,
                    faults=self._config.faults,
                    transport=self._config.transport,
                    workload=self._config.workload,
                    gap=self._config.gap,
                    rounds=self._config.rounds,
                    delay_menu=self._config.delay_menu,
                    decisions=schedule.decisions,
                    oracle=failure.oracle,
                    message=failure.message,
                    strategy=strategy.name,
                    episode=episode,
                )
            )
            if len(report.failures) >= self._config.max_failures:
                break
        return report


# ----------------------------------------------------------------------
# Repro files
# ----------------------------------------------------------------------
def explorer_for_repro(repro: ReproFile) -> Explorer:
    """An :class:`Explorer` configured exactly as the repro's episode."""
    config = ExploreConfig(
        counter=repro.counter,
        n=repro.n,
        seed=repro.seed,
        strategy="baseline:1",  # replay never consults the plan
        budget=1,
        faults=repro.faults,
        transport=repro.transport,
        workload=repro.workload,
        gap=repro.gap,
        rounds=repro.rounds,
        delay_menu=repro.delay_menu,
    )
    return Explorer(config)


def replay_repro(repro: ReproFile) -> EpisodeOutcome:
    """Re-run a repro file's schedule; returns the judged episode."""
    explorer = explorer_for_repro(repro)
    return explorer.replay(repro.decisions, episode=max(repro.episode, 0))


def reproduces(repro: ReproFile) -> bool:
    """True iff replaying *repro* fails the same oracle it recorded."""
    failure = replay_repro(repro).failure
    return failure is not None and failure.oracle == repro.oracle
