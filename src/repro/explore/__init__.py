"""Schedule exploration: adversarial interleaving search with oracles.

The paper's lower bound is an *adversary argument over schedules* — the
proof wins by choosing message timings.  This package turns that
viewpoint into correctness tooling: it seizes the simulator's two
scheduling freedoms (per-message delays, equal-time tie-breaks), drives
a counter through many controlled interleavings, judges every execution
with the invariant-oracle suite (:mod:`repro.analysis.oracles`), and
delta-shrinks any failure into a minimal, replayable repro file.

Layers:

* :mod:`~repro.explore.schedule` — schedules as decision streams;
  :class:`ReproFile` witnesses.
* :mod:`~repro.explore.controller` — the
  :class:`~repro.sim.policies.DeliveryPolicy` +
  :class:`~repro.sim.events.SchedulerHook` adapter recording decisions.
* :mod:`~repro.explore.strategies` — random walks, delay-order
  permutation sampling, weight-guided contention steering, replay.
* :mod:`~repro.explore.engine` — episodes, oracle judging, shrinking.
* :mod:`~repro.explore.parallel` — windowed fan-out + on-disk cache
  (the :class:`~repro.workloads.sweep.SweepRunner` pattern).
* :mod:`~repro.explore.mutants` — known-broken counters validating the
  pipeline end to end (never registered in the public registry).
"""

from repro.explore.controller import ScheduleController
from repro.explore.engine import (
    EXPLORE_WORKLOADS,
    EpisodeOutcome,
    ExplorationReport,
    ExploreConfig,
    Explorer,
    explorer_for_repro,
    replay_repro,
    reproduces,
)
from repro.explore.mutants import (
    MUTANT_FACTORIES,
    build_mutant,
    is_mutant_spec,
)
from repro.explore.parallel import (
    ExploreRunner,
    ExploreTask,
    ExploreTaskOutcome,
    execute_task,
    merge_outcomes,
    partition,
)
from repro.explore.schedule import (
    DEFAULT_DELAY_MENU,
    REPRO_SCHEMA,
    ReproFile,
    Schedule,
)
from repro.explore.shrink import shrink_schedule
from repro.explore.strategies import (
    STRATEGY_NAMES,
    BaselineStrategy,
    GuidedStrategy,
    PermutationStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    Strategy,
    make_strategy,
    parse_plan,
)

__all__ = [
    "BaselineStrategy",
    "DEFAULT_DELAY_MENU",
    "EXPLORE_WORKLOADS",
    "EpisodeOutcome",
    "ExplorationReport",
    "ExploreConfig",
    "ExploreRunner",
    "ExploreTask",
    "ExploreTaskOutcome",
    "Explorer",
    "GuidedStrategy",
    "MUTANT_FACTORIES",
    "PermutationStrategy",
    "REPRO_SCHEMA",
    "RandomWalkStrategy",
    "ReplayStrategy",
    "ReproFile",
    "STRATEGY_NAMES",
    "Schedule",
    "ScheduleController",
    "Strategy",
    "build_mutant",
    "execute_task",
    "explorer_for_repro",
    "is_mutant_spec",
    "make_strategy",
    "merge_outcomes",
    "parse_plan",
    "partition",
    "replay_repro",
    "reproduces",
    "shrink_schedule",
]
