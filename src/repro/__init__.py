"""Reproduction of Wattenhofer & Widmayer, *An Inherent Bottleneck in
Distributed Counting* (PODC 1997).

The library provides:

* :mod:`repro.sim` — a deterministic asynchronous message-passing
  simulator with exact per-processor message accounting;
* :mod:`repro.core` — the paper's communication-tree counter with
  processor retirement (the matching O(k) upper bound);
* :mod:`repro.lowerbound` — the §3 lower-bound machinery as executable
  code: Hot Spot Lemma checking, communication lists, the weight
  function, the greedy adversary, and the ``k·kᵏ = n`` bound curves;
* :mod:`repro.counters` — the baselines: central counter, static relay
  tree, combining tree, bitonic counting network, diffracting tree;
* :mod:`repro.quorum` — quorum systems, the related-work home of the
  intersection argument;
* :mod:`repro.registry` — the counter registry: every implementation as
  a named spec with typed tunables and capability flags, plus the
  :class:`~repro.registry.RunSession` facade;
* :mod:`repro.workloads` / :mod:`repro.analysis` — drivers and
  measurement;
* :mod:`repro.runtime` — the scheduler seam: the same protocol objects
  under the discrete-event cores or a real asyncio loop;
* :mod:`repro.serve` — a live TCP counter service and its open-loop
  load generator (``repro serve`` / ``repro loadgen``).

Quickstart::

    from repro import RunSession

    session = RunSession("ww-tree", n=81)         # k = 3, n = k^(k+1)
    result = session.run_sequence()
    print(result.values()[:5])                    # [0, 1, 2, 3, 4]
    print(result.bottleneck_load())               # O(k), not O(n)
"""

from repro.api import Capabilities, CounterFactory, DistributedCounter
from repro.core import (
    IntervalMode,
    NodeAddr,
    TreeCounter,
    TreeGeometry,
    TreePolicy,
    lower_bound_k,
    paper_k_for,
)
from repro.errors import (
    CapabilityError,
    ConfigurationError,
    DeliveryAbandonedError,
    InvariantViolationError,
    ProtocolError,
    ReproError,
    SimulationError,
    SimulationLimitError,
)
from repro.explore import (
    ExplorationReport,
    ExploreConfig,
    Explorer,
    ExploreRunner,
    ReproFile,
    shrink_schedule,
)
from repro.registry import (
    CounterRef,
    CounterSpec,
    RunSession,
    canonical_spec,
    parse_spec,
    registered_names,
    registered_specs,
)
from repro.runtime import (
    RUNTIME_NAMES,
    AsyncioRuntime,
    Runtime,
    SimulatedRuntime,
    make_runtime,
)
from repro.sim import (
    FailureDetector,
    FaultPlan,
    Message,
    MessageRecord,
    Network,
    Processor,
    RandomDelay,
    Recoverable,
    RecoveryManager,
    ReliableTransport,
    SkewedDelay,
    Trace,
    UnitDelay,
    parse_fault_spec,
)
from repro.workloads import (
    OpenLoopResult,
    RunResult,
    one_shot,
    poisson_arrivals,
    run_concurrent,
    run_open_loop,
    run_sequence,
    shuffled,
)

__version__ = "1.0.0"

__all__ = [
    "AsyncioRuntime",
    "Capabilities",
    "CapabilityError",
    "ConfigurationError",
    "CounterFactory",
    "CounterRef",
    "CounterSpec",
    "DeliveryAbandonedError",
    "DistributedCounter",
    "ExplorationReport",
    "ExploreConfig",
    "ExploreRunner",
    "Explorer",
    "FailureDetector",
    "FaultPlan",
    "IntervalMode",
    "InvariantViolationError",
    "Message",
    "MessageRecord",
    "Network",
    "NodeAddr",
    "OpenLoopResult",
    "Processor",
    "ProtocolError",
    "RUNTIME_NAMES",
    "RandomDelay",
    "Recoverable",
    "RecoveryManager",
    "ReliableTransport",
    "ReproError",
    "ReproFile",
    "RunResult",
    "RunSession",
    "Runtime",
    "SimulatedRuntime",
    "SimulationError",
    "SimulationLimitError",
    "SkewedDelay",
    "Trace",
    "TreeCounter",
    "TreeGeometry",
    "TreePolicy",
    "UnitDelay",
    "__version__",
    "canonical_spec",
    "lower_bound_k",
    "make_runtime",
    "one_shot",
    "paper_k_for",
    "parse_fault_spec",
    "parse_spec",
    "poisson_arrivals",
    "registered_names",
    "registered_specs",
    "run_concurrent",
    "run_open_loop",
    "run_sequence",
    "shrink_schedule",
    "shuffled",
]
