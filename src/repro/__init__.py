"""Reproduction of Wattenhofer & Widmayer, *An Inherent Bottleneck in
Distributed Counting* (PODC 1997).

The library provides:

* :mod:`repro.sim` — a deterministic asynchronous message-passing
  simulator with exact per-processor message accounting;
* :mod:`repro.core` — the paper's communication-tree counter with
  processor retirement (the matching O(k) upper bound);
* :mod:`repro.lowerbound` — the §3 lower-bound machinery as executable
  code: Hot Spot Lemma checking, communication lists, the weight
  function, the greedy adversary, and the ``k·kᵏ = n`` bound curves;
* :mod:`repro.counters` — the baselines: central counter, static relay
  tree, combining tree, bitonic counting network, diffracting tree;
* :mod:`repro.quorum` — quorum systems, the related-work home of the
  intersection argument;
* :mod:`repro.registry` — the counter registry: every implementation as
  a named spec with typed tunables and capability flags, plus the
  :class:`~repro.registry.RunSession` facade;
* :mod:`repro.workloads` / :mod:`repro.analysis` — drivers and
  measurement.

Quickstart::

    from repro import RunSession

    session = RunSession("ww-tree", n=81)         # k = 3, n = k^(k+1)
    result = session.run_sequence()
    print(result.values()[:5])                    # [0, 1, 2, 3, 4]
    print(result.bottleneck_load())               # O(k), not O(n)
"""

from repro.api import Capabilities, CounterFactory, DistributedCounter
from repro.core import (
    IntervalMode,
    NodeAddr,
    TreeCounter,
    TreeGeometry,
    TreePolicy,
    lower_bound_k,
    paper_k_for,
)
from repro.errors import (
    CapabilityError,
    ConfigurationError,
    DeliveryAbandonedError,
    InvariantViolationError,
    ProtocolError,
    ReproError,
    SimulationError,
    SimulationLimitError,
)
from repro.explore import (
    ExplorationReport,
    ExploreConfig,
    Explorer,
    ExploreRunner,
    ReproFile,
    shrink_schedule,
)
from repro.registry import (
    CounterRef,
    CounterSpec,
    RunSession,
    canonical_spec,
    parse_spec,
    registered_names,
    registered_specs,
)
from repro.sim import (
    FailureDetector,
    FaultPlan,
    Message,
    MessageRecord,
    Network,
    Processor,
    RandomDelay,
    Recoverable,
    RecoveryManager,
    ReliableTransport,
    SkewedDelay,
    Trace,
    UnitDelay,
    parse_fault_spec,
)
from repro.workloads import (
    RunResult,
    one_shot,
    run_concurrent,
    run_sequence,
    shuffled,
)

__version__ = "1.0.0"

__all__ = [
    "Capabilities",
    "CapabilityError",
    "ConfigurationError",
    "CounterFactory",
    "CounterRef",
    "CounterSpec",
    "DeliveryAbandonedError",
    "DistributedCounter",
    "ExplorationReport",
    "ExploreConfig",
    "ExploreRunner",
    "Explorer",
    "FailureDetector",
    "FaultPlan",
    "IntervalMode",
    "InvariantViolationError",
    "Message",
    "MessageRecord",
    "Network",
    "NodeAddr",
    "Processor",
    "ProtocolError",
    "RandomDelay",
    "Recoverable",
    "RecoveryManager",
    "ReliableTransport",
    "ReproError",
    "ReproFile",
    "RunResult",
    "RunSession",
    "SimulationError",
    "SimulationLimitError",
    "SkewedDelay",
    "Trace",
    "TreeCounter",
    "TreeGeometry",
    "TreePolicy",
    "UnitDelay",
    "__version__",
    "canonical_spec",
    "lower_bound_k",
    "one_shot",
    "paper_k_for",
    "parse_fault_spec",
    "parse_spec",
    "registered_names",
    "registered_specs",
    "run_concurrent",
    "run_sequence",
    "shrink_schedule",
    "shuffled",
]
