"""Parallel experiment sweeps: fan grid points across worker processes.

Every experiment in the reproduction is a grid of independent simulations
— counter × n × seed × policy — and each simulation is deterministic
given its configuration.  That makes sweeps embarrassingly parallel and
cacheable: a :class:`SweepPoint` names one simulation by value, a worker
process re-creates it from scratch, and the resulting
:class:`SweepOutcome` depends on nothing but the point.  Serial and
parallel execution therefore produce identical results (a property the
test suite asserts), so experiment tables and figures are byte-identical
however they were computed.

Points are named by registry spec strings (counter spec, policy name,
workload name) rather than live objects so they pickle cleanly across
process boundaries and hash stably for the on-disk result cache.  The
cache key uses the *canonical* spec form
(:func:`repro.registry.canonical_spec`), so
``"combining-tree?arity=2&window=0.75"`` and ``"combining-tree"`` — the
same configuration spelled differently — share one cache entry, and
every :class:`SweepOutcome` records the canonical string it measured.

Typical use::

    from repro.workloads import SweepPoint, SweepRunner

    points = [SweepPoint(counter="ww-tree", n=n) for n in (64, 256, 1024)]
    outcomes = SweepRunner(workers=4).run(points)
    bottlenecks = {o.point.n: o.bottleneck_load for o in outcomes}
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.registry import POLICY_NAMES, WORKLOAD_NAMES, canonical_spec
from repro.sim.faults import canonical_fault_spec
from repro.sim.messages import ProcessorId

_CACHE_SCHEMA = "sweep-v4"
"""Version tag mixed into every config hash; bump when outcome semantics
change so stale cache entries are never reused.  v2: counter fields are
canonical registry spec strings, not bare factory names.  v3: points
carry fault-plan and transport fields; fault specs are canonicalized.
v4: fault specs may carry recover= clauses and crash-tolerant sessions
auto-start a recovery manager (heartbeat traffic changes loads)."""

TRANSPORT_NAMES = ("bare", "reliable")
"""Transports a sweep point may name: ``"bare"`` sends straight on the
network (the paper's model), ``"reliable"`` wraps the counter behind
:class:`~repro.sim.transport.ReliableTransport`."""

DEFAULT_SERIAL_THRESHOLD = 8
"""Grids smaller than this run serially even when workers were requested:
forking a pool costs more than it saves on a handful of points (the
benchmark grid showed ``parallel_4_workers`` losing to ``serial`` on a
6-point sweep).  Outcomes are identical either way, so the fallback is
purely a wall-time decision."""


def fan_out(fn, items, workers: int | None):
    """Map *fn* over *items*, serially or across forked workers.

    The shared execution engine behind :class:`SweepRunner` and the
    schedule explorer's :class:`~repro.explore.parallel.ExploreRunner`:
    ``workers=1`` (or a single item) runs in-process, anything else
    forks a pool sized ``min(workers or cpu_count, len(items))``.
    Results come back in input order; *fn* and every item must pickle
    (module-level function, by-value dataclasses).
    """
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        context = multiprocessing.get_context()
    pool_size = workers or multiprocessing.cpu_count()
    pool_size = min(pool_size, len(items))
    with context.Pool(processes=pool_size) as pool:
        return pool.map(fn, items)


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One grid point of a sweep: a simulation named entirely by value.

    Attributes:
        counter: registry spec string of the counter configuration
            (``"central"``, ``"combining-tree?window=3.0"``, ...); any
            spelling is accepted, the cache key uses the canonical form.
        n: number of processors.
        seed: seed for seeded delivery policies (ignored by the
            deterministic ones) and for the ``"shuffled"`` workload.
        policy: delivery-policy name from :data:`POLICY_NAMES`.
        workload: workload name from :data:`WORKLOAD_NAMES` —
            ``"one-shot"`` is the paper's sequential permutation,
            ``"one-shot-concurrent"`` injects it as one batch,
            ``"shuffled"`` is a seeded random order.
        trace_level: tracing fidelity name; sweeps default to ``"loads"``
            because message counts are delay- and level-invariant, so the
            outcome is identical to a ``FULL`` run.
        faults: fault-spec string
            (:func:`~repro.sim.faults.parse_fault_spec` grammar) seeded
            with the point's ``seed``; ``""`` (default) keeps the
            paper's failure-free model.  Any spelling is accepted, the
            cache key uses the canonical form.
        transport: ``"bare"`` (default) or ``"reliable"`` from
            :data:`TRANSPORT_NAMES`.  Lossy fault plans require
            ``"reliable"`` — the capability gate in
            :class:`~repro.registry.RunSession` rejects them otherwise.
    """

    counter: str
    n: int
    seed: int = 0
    policy: str = "unit"
    workload: str = "one-shot"
    trace_level: str = "loads"
    faults: str = ""
    transport: str = "bare"

    def canonical_counter(self) -> str:
        """The counter spec in canonical registry form."""
        return canonical_spec(self.counter)

    def canonical_faults(self) -> str:
        """The fault spec in canonical form (``""`` when fault-free)."""
        if not self.faults.strip():
            return ""
        return canonical_fault_spec(self.faults)

    def config_hash(self) -> str:
        """Stable hex digest naming this configuration (cache key).

        The counter and fault fields are canonicalized first, so
        equivalent spellings (reordered or defaulted parameters,
        reordered fault fields) share one cache entry and every cached
        point is attributable to an exact configuration.
        """
        payload = {
            **asdict(self),
            "counter": self.canonical_counter(),
            "faults": self.canonical_faults(),
        }
        blob = json.dumps({"schema": _CACHE_SCHEMA, **payload}, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True, slots=True)
class SweepOutcome:
    """Everything a sweep measures about one grid point.

    ``loads`` is the full per-processor load vector (the paper's ``m_p``),
    so any load statistic can be derived without rerunning.  ``extras``
    carries counter-specific measurements (retirements, root ids used,
    forwarded messages for the ww-tree).  ``counter_spec`` is the
    canonical registry spec the point resolved to, so cached results are
    attributable to an exact counter configuration even if the point
    spelled its spec loosely.
    """

    point: SweepPoint
    bottleneck_processor: ProcessorId
    bottleneck_load: int
    total_messages: int
    operations: int
    loads: dict[ProcessorId, int] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)
    counter_spec: str = ""

    @property
    def messages_per_op(self) -> float:
        """The paper's ``L``: average messages per operation."""
        if not self.operations:
            return 0.0
        return self.total_messages / self.operations

    def to_json(self) -> dict[str, Any]:
        """Plain-JSON form (cache file payload)."""
        return {
            "point": asdict(self.point),
            "bottleneck_processor": self.bottleneck_processor,
            "bottleneck_load": self.bottleneck_load,
            "total_messages": self.total_messages,
            "operations": self.operations,
            "loads": {str(pid): load for pid, load in self.loads.items()},
            "extras": self.extras,
            "counter_spec": self.counter_spec,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "SweepOutcome":
        """Inverse of :meth:`to_json` (JSON string keys become ints)."""
        return cls(
            point=SweepPoint(**payload["point"]),
            bottleneck_processor=payload["bottleneck_processor"],
            bottleneck_load=payload["bottleneck_load"],
            total_messages=payload["total_messages"],
            operations=payload["operations"],
            loads={int(pid): load for pid, load in payload["loads"].items()},
            extras=dict(payload.get("extras", {})),
            counter_spec=str(payload.get("counter_spec", "")),
        )


def execute_point(point: SweepPoint) -> SweepOutcome:
    """Run one grid point from scratch and measure it.

    Module-level (hence picklable) so worker processes can import it; the
    simulation is rebuilt from the point alone, which is what makes
    serial and parallel sweeps identical.
    """
    from repro.registry import RunSession

    if point.transport not in TRANSPORT_NAMES:
        raise ConfigurationError(
            f"unknown transport {point.transport!r}; "
            f"expected one of {TRANSPORT_NAMES}"
        )
    session = RunSession(
        point.counter,
        point.n,
        policy=point.policy,
        seed=point.seed,
        trace_level=point.trace_level,
        faults=point.faults or None,
        reliable=point.transport == "reliable",
    )
    result = session.run_workload(point.workload)
    counter = session.counter
    trace = session.network.trace
    bottleneck_pid, bottleneck_load = trace.bottleneck()
    extras: dict[str, Any] = {}
    retirements = getattr(counter, "retirements", None)
    if retirements is not None:
        extras["retirements"] = len(retirements)
    registry = getattr(counter, "registry", None)
    if registry is not None and hasattr(registry, "root_ids_used"):
        extras["root_ids_used"] = registry.root_ids_used()
    if hasattr(counter, "total_forwarded"):
        extras["forwarded"] = counter.total_forwarded()
    if session.fault_plan is not None:
        extras["fault_counts"] = dict(session.fault_plan.counts)
    if session.transport is not None:
        extras["transport"] = session.transport_stats()
    return SweepOutcome(
        point=point,
        bottleneck_processor=bottleneck_pid,
        bottleneck_load=bottleneck_load,
        total_messages=trace.total_messages,
        operations=result.operation_count,
        loads=trace.loads(),
        extras=extras,
        counter_spec=session.canonical,
    )


class SweepRunner:
    """Executes sweep grids, optionally in parallel and/or cached.

    Args:
        workers: worker processes; ``1`` (default) runs serially in
            process, ``None`` uses every available core.
        cache_dir: directory for on-disk result caching keyed by
            :meth:`SweepPoint.config_hash`; ``None`` disables caching.
        serial_threshold: grids with fewer *uncached* points than this
            run serially even when workers were requested — pool forking
            dominates on tiny grids (default
            :data:`DEFAULT_SERIAL_THRESHOLD`; ``0`` always honors
            *workers*).

    Results are returned in input order regardless of worker scheduling,
    and are identical for any worker count (each point is recomputed from
    its configuration alone).
    """

    def __init__(
        self,
        workers: int | None = 1,
        cache_dir: str | pathlib.Path | None = None,
        serial_threshold: int = DEFAULT_SERIAL_THRESHOLD,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if serial_threshold < 0:
            raise ConfigurationError(
                f"serial_threshold must be >= 0, got {serial_threshold}"
            )
        self._workers = workers
        self._cache_dir = pathlib.Path(cache_dir) if cache_dir else None
        self._serial_threshold = serial_threshold

    @property
    def workers(self) -> int | None:
        """Configured worker-process count (``None`` = all cores)."""
        return self._workers

    @property
    def serial_threshold(self) -> int:
        """Uncached-point count below which the runner stays serial."""
        return self._serial_threshold

    def run(self, points: Sequence[SweepPoint]) -> list[SweepOutcome]:
        """Execute every point (cache-aware); outcomes in input order."""
        outcomes: list[SweepOutcome | None] = [None] * len(points)
        missing: list[int] = []
        for index, point in enumerate(points):
            cached = self._cache_load(point)
            if cached is not None:
                outcomes[index] = cached
            else:
                missing.append(index)
        if missing:
            fresh = self._execute([points[i] for i in missing])
            for index, outcome in zip(missing, fresh):
                self._cache_store(outcome)
                outcomes[index] = outcome
        return outcomes  # type: ignore[return-value]

    def bottlenecks(self, points: Sequence[SweepPoint]) -> list[int]:
        """Shorthand: the bottleneck load of each point, in input order."""
        return [outcome.bottleneck_load for outcome in self.run(points)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, points: list[SweepPoint]) -> list[SweepOutcome]:
        workers = self._workers
        if len(points) < self._serial_threshold:
            workers = 1
        return fan_out(execute_point, points, workers)

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_path(self, point: SweepPoint) -> pathlib.Path | None:
        if self._cache_dir is None:
            return None
        return self._cache_dir / f"{point.config_hash()}.json"

    def _cache_load(self, point: SweepPoint) -> SweepOutcome | None:
        path = self._cache_path(point)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):  # corrupt entry: recompute
            return None
        return SweepOutcome.from_json(payload)

    def _cache_store(self, outcome: SweepOutcome) -> None:
        path = self._cache_path(outcome.point)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(outcome.to_json(), sort_keys=True))
        tmp.replace(path)
