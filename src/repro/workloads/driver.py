"""Workload drivers: execute operation sequences against a counter.

Three driving regimes, one protocol object:

* **Closed-loop sequential** (:func:`run_sequence`) realizes the paper's
  timing assumption: "enough time elapses in between any two inc
  requests to make sure that the preceding inc operation is finished
  before the next one starts" (§2).  Operation ``i+1`` is injected only
  after the runtime has quiesced from operation ``i``.
* **Closed-loop concurrent** (:func:`run_concurrent`) injects whole
  batches at one instant — the extension benchmarks' regime (combining
  and diffracting structures only show their strengths under
  concurrency); never used for lower-bound claims.
* **Open-loop** (:func:`run_open_loop`) injects requests at *arrival
  times* drawn from a traffic process (Poisson, bursty), regardless of
  whether earlier operations finished — the production regime, where
  the paper's bottleneck reappears as a saturation knee in latency
  rather than a message count.  Each client processor serves one
  operation at a time; arrivals finding every client busy queue FIFO,
  and their queueing delay counts toward latency.

Every driver takes an optional :class:`~repro.runtime.Runtime`: the
default is the discrete-event scheduler (byte-identical to the
pre-seam behavior), and an :class:`~repro.runtime.AsyncioRuntime`
routes the same workload through a real asyncio loop (``await`` the
``*_async`` variants from async code).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.api import CounterFactory, DistributedCounter
from repro.errors import CapabilityError, ProtocolError
from repro.sim.messages import NO_OP, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.policies import DeliveryPolicy
from repro.sim.trace import Trace, TraceLevel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime import Runtime


@dataclass(frozen=True, slots=True)
class OpOutcome:
    """One completed ``inc``: who asked, what value came back, at what cost.

    Attributes:
        op_index: position in the operation sequence.
        initiator: processor that requested the ``inc``.
        value: counter value returned to the initiator.
        messages: number of messages attributed to this operation, or
            ``-1`` when the network traced at
            :attr:`~repro.sim.trace.TraceLevel.OFF` and kept no counts.
    """

    op_index: OpIndex
    initiator: ProcessorId
    value: int
    messages: int


@dataclass(slots=True)
class RunResult:
    """Everything measured about one workload execution."""

    counter_name: str
    n: int
    trace: Trace
    outcomes: list[OpOutcome] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Messages delivered over the whole run."""
        return self.trace.total_messages

    @property
    def operation_count(self) -> int:
        """Number of completed operations."""
        return len(self.outcomes)

    def values(self) -> list[int]:
        """Returned counter values in operation order."""
        return [outcome.value for outcome in self.outcomes]

    def bottleneck_load(self) -> int:
        """The paper's ``m_b``: the maximum per-processor message load."""
        return self.trace.bottleneck()[1]

    def bottleneck_processor(self) -> ProcessorId:
        """The processor achieving the maximum load (smallest id on ties)."""
        return self.trace.bottleneck()[0]

    def average_messages_per_op(self) -> float:
        """The paper's ``L``: average messages per operation."""
        if not self.outcomes:
            return 0.0
        return self.total_messages / len(self.outcomes)


def _sequential_outcome(
    counter: DistributedCounter,
    trace: Trace,
    counts_kept: bool,
    op_index: OpIndex,
    pid: ProcessorId,
    before: list[int],
    check_values: bool,
    optional: frozenset[ProcessorId] = frozenset(),
    last_required: int = -1,
) -> OpOutcome | None:
    """Verify one just-quiesced sequential op and build its outcome.

    Shared by the sync and async sequential drivers so their checks (and
    error messages) cannot drift apart.

    Initiators in *optional* (Byzantine or permanently crashed
    processors) may legitimately see their operation vanish: the outcome
    is ``None`` instead of an error, and any value they *do* receive is
    recorded unchecked — a liar's view of its own result proves nothing.
    With a non-empty *optional* set the exact ``value == op_index``
    check degrades to "values handed to required initiators strictly
    increase" (*last_required* is the previous such value): adversarial
    operations may or may not commit, so the absolute sequence shifts,
    but a correct counter still never hands out a duplicate.
    """
    after = counter.results_for(pid)
    got = len(after) - len(before)
    if pid in optional and got != 1:
        # A Byzantine initiator may get no result (its corrupted
        # request never formed a quorum) or several (its corrupted
        # request spawned parallel bogus instances); neither is
        # evidence of anything.  Record the last value if any.
        if got == 0:
            return None
    elif got != 1:
        raise ProtocolError(
            f"operation {op_index}: processor {pid} received "
            f"{got} results instead of 1"
        )
    value = after[-1]
    if check_values:
        if not optional:
            if value != op_index:
                raise ProtocolError(
                    f"operation {op_index}: processor {pid} received value "
                    f"{value}, expected {op_index} (sequential semantics)"
                )
        elif pid not in optional and value <= last_required:
            raise ProtocolError(
                f"operation {op_index}: processor {pid} received value "
                f"{value}, but an earlier operation already received "
                f"{last_required} (sequential values must strictly "
                "increase)"
            )
    return OpOutcome(
        op_index=op_index,
        initiator=pid,
        value=value,
        messages=trace.messages_for_op(op_index) if counts_kept else -1,
    )


def run_sequence(
    counter: DistributedCounter,
    initiators: Sequence[ProcessorId],
    check_values: bool = True,
    runtime: "Runtime | None" = None,
    optional: frozenset[ProcessorId] = frozenset(),
) -> RunResult:
    """Run *initiators* sequentially, quiescing between operations.

    With sequential operations a correct counter must hand out exactly
    ``0, 1, 2, ...`` in order; *check_values* enforces that and raises
    :class:`~repro.errors.ProtocolError` on the first deviation, so broken
    protocols fail loudly at the operation that went wrong.

    *runtime* selects the scheduler; ``None`` (and any non-async
    runtime) drives the network directly, an async runtime routes the
    whole workload through ``asyncio.run``.

    *optional* names initiators whose operations may vanish without
    error — Byzantine processors (a corrupted request may never form a
    quorum) and permanently crashed ones.  See
    :func:`_sequential_outcome` for how it relaxes the value check.
    """
    if runtime is not None and runtime.is_async:
        return asyncio.run(
            run_sequence_async(
                counter, initiators, check_values=check_values,
                runtime=runtime, optional=optional,
            )
        )
    network = counter.network
    barrier = (
        network.run_until_quiescent
        if runtime is None
        else runtime.until_quiescent
    )
    trace = network.trace
    counts_kept = trace.keeps_loads
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    last_required = -1
    for op_index, pid in enumerate(initiators):
        before = counter.results_for(pid)
        counter.begin_inc(pid, op_index)
        barrier()
        outcome = _sequential_outcome(
            counter, trace, counts_kept, op_index, pid, before,
            check_values, optional, last_required,
        )
        if outcome is None:
            continue
        if pid not in optional:
            last_required = outcome.value
        result.outcomes.append(outcome)
    return result


async def run_sequence_async(
    counter: DistributedCounter,
    initiators: Sequence[ProcessorId],
    time_scale: float = 0.0,
    check_values: bool = True,
    runtime: "Runtime | None" = None,
    optional: frozenset[ProcessorId] = frozenset(),
) -> RunResult:
    """Async counterpart of :func:`run_sequence`.

    Identical semantics — sequential operations with quiescence barriers
    — but the barriers are awaited, so other asyncio tasks interleave
    with the simulation.  *time_scale* builds a default
    :class:`~repro.runtime.AsyncioRuntime` when *runtime* is omitted.
    """
    from repro.runtime import AsyncioRuntime

    if runtime is None:
        runtime = AsyncioRuntime(counter.network, time_scale=time_scale)
    trace = counter.network.trace
    counts_kept = trace.keeps_loads
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    last_required = -1
    for op_index, pid in enumerate(initiators):
        before = counter.results_for(pid)
        counter.begin_inc(pid, op_index)
        await runtime.drain()
        outcome = _sequential_outcome(
            counter, trace, counts_kept, op_index, pid, before,
            check_values, optional, last_required,
        )
        if outcome is None:
            continue
        if pid not in optional:
            last_required = outcome.value
        result.outcomes.append(outcome)
    return result


def _require_concurrent(counter: DistributedCounter, regime: str) -> None:
    """Reject sequential-only counters before an overlapping-op run."""
    capabilities = counter.capabilities
    if not capabilities.supports_concurrent:
        reason = capabilities.restriction or "the protocol is sequential-only"
        raise CapabilityError(
            f"counter {counter.name!r} does not support the {regime} "
            f"driver: {reason}"
        )


def run_concurrent(
    counter: DistributedCounter,
    batches: Iterable[Sequence[ProcessorId]],
    check_values: bool = True,
    runtime: "Runtime | None" = None,
) -> RunResult:
    """Run operations in concurrent batches.

    All operations of a batch are injected before any event runs, so their
    messages interleave arbitrarily under the delivery policy; the network
    quiesces between batches.  With concurrency the returned values are no
    longer ordered, but a correct counter still hands out each value
    exactly once; *check_values* enforces that the multiset of returned
    values is ``{0, ..., ops-1}``.

    Sequential-only counters (per their declared
    :class:`~repro.api.Capabilities`) are rejected up front with a
    :class:`~repro.errors.CapabilityError` naming the restriction,
    instead of misbehaving mid-run.
    """
    if runtime is not None and runtime.is_async:
        collected: list[Sequence[ProcessorId]] = list(batches)
        return asyncio.run(
            _run_concurrent_batches_async(
                counter, collected, check_values=check_values,
                runtime=runtime,
            )
        )
    _require_concurrent(counter, "concurrent")
    network = counter.network
    barrier = (
        network.run_until_quiescent
        if runtime is None
        else runtime.until_quiescent
    )
    trace = network.trace
    counts_kept = trace.keeps_loads
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    op_index = 0
    for batch in batches:
        injected: list[tuple[OpIndex, ProcessorId, int]] = []
        for pid in batch:
            prior = len(counter.results_for(pid))
            counter.begin_inc(pid, op_index)
            injected.append((op_index, pid, prior))
            op_index += 1
        barrier()
        _collect_batch(counter, trace, counts_kept, injected, result)
    if check_values:
        _check_value_multiset(result)
    return result


def _collect_batch(
    counter: DistributedCounter,
    trace: Trace,
    counts_kept: bool,
    injected: list[tuple[OpIndex, ProcessorId, int]],
    result: RunResult,
) -> None:
    """Harvest one quiesced concurrent batch into *result*."""
    for this_op, pid, prior in injected:
        results = counter.results_for(pid)
        if len(results) <= prior:
            raise ProtocolError(
                f"operation {this_op}: processor {pid} never got a result"
            )
        result.outcomes.append(
            OpOutcome(
                op_index=this_op,
                initiator=pid,
                value=results[prior],
                messages=trace.messages_for_op(this_op) if counts_kept else -1,
            )
        )


def _check_value_multiset(result: RunResult) -> None:
    """Enforce that returned values are a permutation of ``0..ops-1``."""
    values = sorted(outcome.value for outcome in result.outcomes)
    expected = list(range(len(result.outcomes)))
    if values != expected:
        raise ProtocolError(
            f"concurrent run returned values {values[:10]}... "
            f"instead of a permutation of 0..{len(expected) - 1}"
        )


async def _run_concurrent_batches_async(
    counter: DistributedCounter,
    batches: Iterable[Sequence[ProcessorId]],
    check_values: bool,
    runtime: "Runtime",
) -> RunResult:
    """Batch-loop shared by :func:`run_concurrent`'s async route."""
    _require_concurrent(counter, "concurrent")
    trace = counter.network.trace
    counts_kept = trace.keeps_loads
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    op_index = 0
    for batch in batches:
        injected: list[tuple[OpIndex, ProcessorId, int]] = []
        for pid in batch:
            prior = len(counter.results_for(pid))
            counter.begin_inc(pid, op_index)
            injected.append((op_index, pid, prior))
            op_index += 1
        await runtime.drain()
        _collect_batch(counter, trace, counts_kept, injected, result)
    if check_values:
        _check_value_multiset(result)
    return result


async def run_concurrent_async(
    counter: DistributedCounter,
    batch: Sequence[ProcessorId],
    time_scale: float = 0.0,
    runtime: "Runtime | None" = None,
) -> RunResult:
    """Inject *batch* concurrently, await quiescence, collect results.

    Async counterpart of a single-batch :func:`run_concurrent` (kept to
    the historical one-batch signature of ``repro.aio``); the value
    multiset is not checked here — callers assert on the outcomes.
    """
    from repro.runtime import AsyncioRuntime

    if runtime is None:
        runtime = AsyncioRuntime(counter.network, time_scale=time_scale)
    _require_concurrent(counter, "concurrent")
    network = counter.network
    trace = network.trace
    counts_kept = trace.keeps_loads
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    prior = {pid: len(counter.results_for(pid)) for pid in set(batch)}
    seen: dict[ProcessorId, int] = dict(prior)
    for op_index, pid in enumerate(batch):
        counter.begin_inc(pid, op_index)
    await runtime.drain()
    for op_index, pid in enumerate(batch):
        replies = counter.results_for(pid)
        position = seen[pid]
        if position >= len(replies):
            raise ProtocolError(f"processor {pid} missed a result")
        seen[pid] += 1
        result.outcomes.append(
            OpOutcome(
                op_index=op_index,
                initiator=pid,
                value=replies[position],
                messages=trace.messages_for_op(op_index) if counts_kept else -1,
            )
        )
    return result


# ----------------------------------------------------------------------
# Open-loop driving
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class OpenLoopOutcome:
    """One completed open-loop ``inc`` with its full timing breakdown.

    All times are in the driving clock's units (simulated time).

    Attributes:
        op_index: position in the arrival sequence.
        initiator: client processor that executed the operation.
        value: counter value returned.
        arrival_time: when the request *arrived* (offered load clock).
        start_time: when a free client actually initiated it.
        completion_time: when the value came back.
    """

    op_index: OpIndex
    initiator: ProcessorId
    value: int
    arrival_time: float
    start_time: float
    completion_time: float

    @property
    def latency(self) -> float:
        """Arrival-to-completion time — what an open-loop client feels."""
        return self.completion_time - self.arrival_time

    @property
    def queueing_delay(self) -> float:
        """Time the request waited for a free client processor."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Initiation-to-completion time (latency minus queueing)."""
        return self.completion_time - self.start_time


@dataclass(slots=True)
class OpenLoopResult:
    """Everything measured about one open-loop execution."""

    counter_name: str
    n: int
    trace: Trace
    offered_rate: float
    outcomes: list[OpenLoopOutcome] = field(default_factory=list)

    @property
    def operation_count(self) -> int:
        """Number of completed operations."""
        return len(self.outcomes)

    @property
    def duration(self) -> float:
        """Time from workload start to the last completion."""
        return max((o.completion_time for o in self.outcomes), default=0.0)

    @property
    def throughput(self) -> float:
        """Completed operations per time unit over the whole run."""
        duration = self.duration
        if duration <= 0:
            return 0.0
        return len(self.outcomes) / duration

    def values(self) -> list[int]:
        """Returned counter values in completion order."""
        return [outcome.value for outcome in self.outcomes]

    def latencies(self) -> list[float]:
        """Arrival-to-completion latency of every operation."""
        return [outcome.latency for outcome in self.outcomes]

    @property
    def mean_latency(self) -> float:
        """Average arrival-to-completion latency."""
        if not self.outcomes:
            return 0.0
        return sum(self.latencies()) / len(self.outcomes)

    def latency_percentile(self, q: float) -> float:
        """Latency at quantile *q* in [0, 1] (nearest-rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self.latencies())
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]


def run_open_loop(
    counter: DistributedCounter,
    arrivals: Sequence[float],
    check_values: bool = True,
    runtime: "Runtime | None" = None,
    turnaround: float = 1.0,
) -> OpenLoopResult:
    """Drive *counter* with open-loop traffic arriving at *arrivals*.

    Each arrival time (ascending offsets from workload start, e.g. from
    :func:`~repro.workloads.sequences.poisson_arrivals`) is one ``inc``
    request.  Requests are served by the counter's ``n`` client
    processors, one in-flight operation per client; an arrival that
    finds every client busy queues FIFO and its queueing delay counts
    toward latency.  This is what makes the saturation knee measurable:
    offered load beyond the structure's service capacity grows the
    backlog without bound, and latency diverges.

    *turnaround* is the local re-arm time a client needs between
    completing one operation and initiating the next (default: one
    message-delay unit).  Without it a client whose operations complete
    in zero simulated time — e.g. the central counter's co-located
    server client — could absorb unbounded offered load for free and no
    saturation knee would exist; with it, per-client throughput is
    bounded by ``1/turnaround`` just as a real processor's is by its
    local processing speed.

    Sequential-only counters are rejected (open-loop traffic overlaps
    operations by construction).  *check_values* enforces that the
    returned values are a permutation of ``0..ops-1``.
    """
    _require_concurrent(counter, "open-loop")
    if turnaround < 0:
        raise ValueError(f"turnaround must be >= 0, got {turnaround}")
    if list(arrivals) != sorted(arrivals):
        raise ValueError("arrival times must be ascending")
    network = counter.network
    # An async runtime's until_quiescent() spins up a private loop (and
    # refuses inside a running one with a pointer to drain()), so every
    # runtime kind presents the same blocking barrier here.
    barrier = (
        network.run_until_quiescent
        if runtime is None
        else runtime.until_quiescent
    )
    trace = network.trace
    duration = arrivals[-1] if len(arrivals) else 0.0
    result = OpenLoopResult(
        counter_name=counter.name,
        n=counter.n,
        trace=trace,
        offered_rate=(len(arrivals) / duration if duration > 0 else 0.0),
    )
    # Round-robin the client pool (deque: take from the left, return to
    # the right) so load spreads over all n processors instead of
    # hammering the lowest free pid — which for e.g. the central counter
    # is the server itself and would serve its own requests for free.
    free: deque[ProcessorId] = deque(counter.client_ids())
    backlog: list[tuple[OpIndex, float]] = []
    backlog_head = 0
    in_flight: dict[ProcessorId, tuple[OpIndex, float, float]] = {}

    def start(op_index: OpIndex, arrival: float, pid: ProcessorId) -> None:
        in_flight[pid] = (op_index, arrival, network.now)
        counter.begin_inc(pid, op_index)

    def on_arrival(op_index: OpIndex, arrival: float) -> None:
        if free:
            start(op_index, arrival, free.popleft())
        else:
            backlog.append((op_index, arrival))

    original_deliver = counter.deliver_result

    def rearm(pid: ProcessorId) -> None:
        nonlocal backlog_head
        if backlog_head < len(backlog):
            next_op, next_arrival = backlog[backlog_head]
            backlog_head += 1
            start(next_op, next_arrival, pid)
        else:
            free.append(pid)

    def deliver(pid: ProcessorId, value: int) -> None:
        original_deliver(pid, value)
        pending = in_flight.pop(pid, None)
        if pending is None:
            # A result for an operation this driver did not start
            # (e.g. protocol-internal bookkeeping); leave it alone.
            return
        op_index, arrival, started = pending
        result.outcomes.append(
            OpenLoopOutcome(
                op_index=op_index,
                initiator=pid,
                value=value,
                arrival_time=arrival,
                start_time=started,
                completion_time=network.now,
            )
        )
        if turnaround > 0:
            network.inject(
                (lambda p=pid: rearm(p)), op_index=NO_OP, delay=turnaround
            )
        else:
            rearm(pid)

    counter.deliver_result = deliver  # type: ignore[method-assign]
    origin = network.now
    try:
        for op_index, offset in enumerate(arrivals):
            arrival = origin + offset
            network.inject(
                (lambda op=op_index, t=arrival: on_arrival(op, t)),
                op_index=NO_OP,
                delay=offset,
            )
        barrier()
    finally:
        del counter.__dict__["deliver_result"]
    if len(result.outcomes) != len(arrivals):
        raise ProtocolError(
            f"open-loop run completed {len(result.outcomes)} of "
            f"{len(arrivals)} operations"
        )
    if check_values:
        values = sorted(o.value for o in result.outcomes)
        if values != list(range(len(arrivals))):
            raise ProtocolError(
                f"open-loop run returned values {values[:10]}... instead "
                f"of a permutation of 0..{len(arrivals) - 1}"
            )
    return result


def run_factory_once(
    factory: CounterFactory,
    n: int,
    initiators: Sequence[ProcessorId],
    policy: DeliveryPolicy | None = None,
    check_values: bool = True,
    trace_level: TraceLevel | str = TraceLevel.FULL,
) -> RunResult:
    """Convenience: fresh network + counter, run *initiators*, return result.

    *trace_level* selects the tracing fidelity; loads-only analysis is
    much faster with :attr:`~repro.sim.trace.TraceLevel.LOADS`.
    """
    network = Network(policy=policy, trace_level=trace_level)
    counter = factory(network, n)
    return run_sequence(counter, initiators, check_values=check_values)
