"""Workload drivers: execute operation sequences against a counter.

The sequential driver realizes the paper's timing assumption: "enough time
elapses in between any two inc requests to make sure that the preceding
inc operation is finished before the next one starts" (§2).  Concretely,
operation ``i+1`` is injected only after the network has quiesced from
operation ``i``.

The concurrent driver exists for the extension benchmarks (combining and
diffracting structures only show their strengths under concurrency); it is
never used for lower-bound claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.api import CounterFactory, DistributedCounter
from repro.errors import CapabilityError, ProtocolError
from repro.sim.messages import OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.policies import DeliveryPolicy
from repro.sim.trace import Trace, TraceLevel


@dataclass(frozen=True, slots=True)
class OpOutcome:
    """One completed ``inc``: who asked, what value came back, at what cost.

    Attributes:
        op_index: position in the operation sequence.
        initiator: processor that requested the ``inc``.
        value: counter value returned to the initiator.
        messages: number of messages attributed to this operation, or
            ``-1`` when the network traced at
            :attr:`~repro.sim.trace.TraceLevel.OFF` and kept no counts.
    """

    op_index: OpIndex
    initiator: ProcessorId
    value: int
    messages: int


@dataclass(slots=True)
class RunResult:
    """Everything measured about one workload execution."""

    counter_name: str
    n: int
    trace: Trace
    outcomes: list[OpOutcome] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Messages delivered over the whole run."""
        return self.trace.total_messages

    @property
    def operation_count(self) -> int:
        """Number of completed operations."""
        return len(self.outcomes)

    def values(self) -> list[int]:
        """Returned counter values in operation order."""
        return [outcome.value for outcome in self.outcomes]

    def bottleneck_load(self) -> int:
        """The paper's ``m_b``: the maximum per-processor message load."""
        return self.trace.bottleneck()[1]

    def bottleneck_processor(self) -> ProcessorId:
        """The processor achieving the maximum load (smallest id on ties)."""
        return self.trace.bottleneck()[0]

    def average_messages_per_op(self) -> float:
        """The paper's ``L``: average messages per operation."""
        if not self.outcomes:
            return 0.0
        return self.total_messages / len(self.outcomes)


def run_sequence(
    counter: DistributedCounter,
    initiators: Sequence[ProcessorId],
    check_values: bool = True,
) -> RunResult:
    """Run *initiators* sequentially, quiescing between operations.

    With sequential operations a correct counter must hand out exactly
    ``0, 1, 2, ...`` in order; *check_values* enforces that and raises
    :class:`~repro.errors.ProtocolError` on the first deviation, so broken
    protocols fail loudly at the operation that went wrong.
    """
    network = counter.network
    trace = network.trace
    counts_kept = trace.keeps_loads
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    for op_index, pid in enumerate(initiators):
        before = counter.results_for(pid)
        counter.begin_inc(pid, op_index)
        network.run_until_quiescent()
        after = counter.results_for(pid)
        if len(after) != len(before) + 1:
            raise ProtocolError(
                f"operation {op_index}: processor {pid} received "
                f"{len(after) - len(before)} results instead of 1"
            )
        value = after[-1]
        if check_values and value != op_index:
            raise ProtocolError(
                f"operation {op_index}: processor {pid} received value "
                f"{value}, expected {op_index} (sequential semantics)"
            )
        result.outcomes.append(
            OpOutcome(
                op_index=op_index,
                initiator=pid,
                value=value,
                messages=trace.messages_for_op(op_index) if counts_kept else -1,
            )
        )
    return result


def run_concurrent(
    counter: DistributedCounter,
    batches: Iterable[Sequence[ProcessorId]],
    check_values: bool = True,
) -> RunResult:
    """Run operations in concurrent batches.

    All operations of a batch are injected before any event runs, so their
    messages interleave arbitrarily under the delivery policy; the network
    quiesces between batches.  With concurrency the returned values are no
    longer ordered, but a correct counter still hands out each value
    exactly once; *check_values* enforces that the multiset of returned
    values is ``{0, ..., ops-1}``.

    Sequential-only counters (per their declared
    :class:`~repro.api.Capabilities`) are rejected up front with a
    :class:`~repro.errors.CapabilityError` naming the restriction,
    instead of misbehaving mid-run.
    """
    capabilities = counter.capabilities
    if not capabilities.supports_concurrent:
        reason = capabilities.restriction or "the protocol is sequential-only"
        raise CapabilityError(
            f"counter {counter.name!r} does not support the concurrent "
            f"driver: {reason}"
        )
    network = counter.network
    trace = network.trace
    counts_kept = trace.keeps_loads
    result = RunResult(counter_name=counter.name, n=counter.n, trace=trace)
    op_index = 0
    for batch in batches:
        injected: list[tuple[OpIndex, ProcessorId, int]] = []
        for pid in batch:
            prior = len(counter.results_for(pid))
            counter.begin_inc(pid, op_index)
            injected.append((op_index, pid, prior))
            op_index += 1
        network.run_until_quiescent()
        for this_op, pid, prior in injected:
            results = counter.results_for(pid)
            if len(results) <= prior:
                raise ProtocolError(
                    f"operation {this_op}: processor {pid} never got a result"
                )
            result.outcomes.append(
                OpOutcome(
                    op_index=this_op,
                    initiator=pid,
                    value=results[prior],
                    messages=trace.messages_for_op(this_op) if counts_kept else -1,
                )
            )
    if check_values:
        values = sorted(outcome.value for outcome in result.outcomes)
        expected = list(range(len(result.outcomes)))
        if values != expected:
            raise ProtocolError(
                f"concurrent run returned values {values[:10]}... "
                f"instead of a permutation of 0..{len(expected) - 1}"
            )
    return result


def run_factory_once(
    factory: CounterFactory,
    n: int,
    initiators: Sequence[ProcessorId],
    policy: DeliveryPolicy | None = None,
    check_values: bool = True,
    trace_level: TraceLevel | str = TraceLevel.FULL,
) -> RunResult:
    """Convenience: fresh network + counter, run *initiators*, return result.

    *trace_level* selects the tracing fidelity; loads-only analysis is
    much faster with :attr:`~repro.sim.trace.TraceLevel.LOADS`.
    """
    network = Network(policy=policy, trace_level=trace_level)
    counter = factory(network, n)
    return run_sequence(counter, initiators, check_values=check_values)
