"""Initiator sequences: who requests ``inc``, and in what order.

The paper's lower bound is stated for the workload in which *each
processor initiates exactly one inc operation* (§3) — a permutation of
``1 .. n``.  This module generates that workload in several flavours, plus
the skewed and repeated workloads used by the extension benchmarks.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.sim.messages import ProcessorId


def one_shot(n: int) -> list[ProcessorId]:
    """The canonical paper workload: processors 1..n, each incing once.

    Uses the identity order; combine with :func:`shuffled` or the greedy
    adversary of :mod:`repro.lowerbound.adversary` for other orders.
    """
    _require_positive(n)
    return list(range(1, n + 1))


def reversed_one_shot(n: int) -> list[ProcessorId]:
    """Each processor incs once, in descending id order."""
    _require_positive(n)
    return list(range(n, 0, -1))


def shuffled(n: int, seed: int = 0) -> list[ProcessorId]:
    """Each processor incs once, in a seeded random order."""
    _require_positive(n)
    order = list(range(1, n + 1))
    random.Random(seed).shuffle(order)
    return order


def round_robin(n: int, rounds: int) -> list[ProcessorId]:
    """Every processor incs once per round, for *rounds* rounds.

    Extension workload: the paper's bound is per one-shot sequence; this
    checks load behaviour when the sequence repeats (retired processors
    are not reused within a round but are across rounds).
    """
    _require_positive(n)
    if rounds <= 0:
        raise ConfigurationError(f"rounds must be positive, got {rounds}")
    return [pid for _ in range(rounds) for pid in range(1, n + 1)]


def zipf_sequence(n: int, length: int, skew: float = 1.2, seed: int = 0) -> list[ProcessorId]:
    """*length* incs with Zipf-skewed initiators.

    The paper notes that distribution is inherently limited "if many
    operations are initiated by a single processor"; this workload
    exercises exactly that regime for the extension benches.
    """
    _require_positive(n)
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length}")
    if skew <= 0:
        raise ConfigurationError(f"skew must be positive, got {skew}")
    weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    rng = random.Random(seed)
    return rng.choices(range(1, n + 1), weights=weights, k=length)


def zipf_keys(
    keys: int,
    length: int,
    skew: float = 1.1,
    seed: int = 0,
    prefix: str = "k",
) -> list[str]:
    """*length* counter keys with Zipf-skewed popularity over *keys* names.

    Real keyspaces are never uniform — a few keys take most of the
    traffic.  Rank ``r`` (1-based) is drawn with weight ``1/r^skew``
    and named ``{prefix}{r-1}`` zero-padded, so ``k00`` is always the
    hottest key.  This is the keyed-workload generator behind
    ``repro loadgen --keys`` and the E27 sharding experiment.
    """
    ranks = zipf_sequence(keys, length, skew=skew, seed=seed)
    width = max(2, len(str(keys - 1))) if keys > 1 else 2
    return [f"{prefix}{rank - 1:0{width}d}" for rank in ranks]


def batched(n: int, batch_size: int) -> list[list[ProcessorId]]:
    """Split the one-shot workload into concurrent batches of *batch_size*.

    For :func:`repro.workloads.run_concurrent`: each inner list is
    injected at one instant, the network quiesces between batches.
    """
    _require_positive(n)
    if batch_size <= 0:
        raise ConfigurationError(f"batch size must be positive, got {batch_size}")
    order = list(range(1, n + 1))
    return [order[start : start + batch_size] for start in range(0, n, batch_size)]


def ping_pong(n: int, length: int | None = None) -> list[ProcessorId]:
    """Alternate between the two extreme processors 1 and n.

    The adversarial order for locality-exploiting structures (E13): on a
    spanning tree it crosses the root on every single operation.
    Defaults to ``length = n``.
    """
    _require_positive(n)
    if n < 2:
        raise ConfigurationError("ping-pong needs at least two processors")
    if length is None:
        length = n
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length}")
    return [1 if index % 2 == 0 else n for index in range(length)]


def single_hotspot(n: int, length: int, hot: ProcessorId = 1) -> list[ProcessorId]:
    """All *length* operations initiated by one processor.

    The degenerate regime the paper excludes from its lower bound (and for
    good reason: the initiator itself is trivially a bottleneck).
    """
    _require_positive(n)
    if not 1 <= hot <= n:
        raise ConfigurationError(f"hot processor {hot} outside 1..{n}")
    return [hot] * length


def poisson_arrivals(
    ops: int, rate: float, seed: int = 0
) -> list[float]:
    """*ops* open-loop arrival times with Poisson arrivals at *rate*.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/rate``
    (memoryless — the classic open-loop traffic model); times are
    offsets from workload start, ascending.  Units are whatever the
    consumer's clock uses: simulated time for
    :func:`~repro.workloads.run_open_loop`, seconds for the wall-clock
    load generator (:mod:`repro.serve.loadgen`).
    """
    _require_rate_and_ops(ops, rate)
    rng = random.Random(seed)
    times = []
    now = 0.0
    for _ in range(ops):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def bursty_arrivals(
    ops: int, rate: float, seed: int = 0, alpha: float = 1.5
) -> list[float]:
    """*ops* heavy-tailed (bursty) arrival times at mean *rate*.

    Inter-arrival gaps are Pareto-distributed with shape *alpha*,
    scaled so the mean gap is ``1/rate`` — same offered load as
    :func:`poisson_arrivals`, but arrivals cluster into bursts with
    long quiet tails (the regime that stresses queues hardest at a
    given mean rate).  Requires ``alpha > 1`` so the mean exists.
    """
    _require_rate_and_ops(ops, rate)
    if alpha <= 1.0:
        raise ConfigurationError(
            f"pareto shape alpha must be > 1 for a finite mean, got {alpha}"
        )
    # Pareto(alpha, xm) has mean alpha*xm/(alpha-1); pick xm for mean 1/rate.
    scale = (alpha - 1.0) / (alpha * rate)
    rng = random.Random(seed)
    times = []
    now = 0.0
    for _ in range(ops):
        now += scale * rng.paretovariate(alpha)
        times.append(now)
    return times


ARRIVAL_PROCESSES = ("poisson", "bursty")
"""Arrival processes resolvable by :func:`arrival_times`."""


def arrival_times(
    process: str, ops: int, rate: float, seed: int = 0
) -> list[float]:
    """Arrival times for the named *process* (see :data:`ARRIVAL_PROCESSES`)."""
    if process == "poisson":
        return poisson_arrivals(ops, rate, seed=seed)
    if process == "bursty":
        return bursty_arrivals(ops, rate, seed=seed)
    raise ConfigurationError(
        f"unknown arrival process {process!r}; "
        f"expected one of {ARRIVAL_PROCESSES}"
    )


def _require_positive(n: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"need a positive processor count, got {n}")


def _require_rate_and_ops(ops: int, rate: float) -> None:
    if ops <= 0:
        raise ConfigurationError(f"need a positive operation count, got {ops}")
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
