"""Workloads: initiator sequences and the drivers that execute them.

* :mod:`repro.workloads.sequences` — who increments, in what order; the
  paper's one-shot permutation plus skewed/repeated extension workloads.
* :mod:`repro.workloads.driver` — sequential (quiescence-barrier) and
  concurrent (batch) execution against any
  :class:`~repro.api.DistributedCounter`.
* :mod:`repro.workloads.sweep` — parallel, cacheable execution of whole
  experiment grids (counter × n × seed × policy).
"""

from repro.workloads.driver import (
    OpOutcome,
    RunResult,
    run_concurrent,
    run_factory_once,
    run_sequence,
)
from repro.workloads.sweep import (
    TRANSPORT_NAMES,
    SweepOutcome,
    SweepPoint,
    SweepRunner,
    execute_point,
)
from repro.workloads.sequences import (
    batched,
    one_shot,
    ping_pong,
    reversed_one_shot,
    round_robin,
    shuffled,
    single_hotspot,
    zipf_sequence,
)

__all__ = [
    "OpOutcome",
    "RunResult",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "TRANSPORT_NAMES",
    "batched",
    "execute_point",
    "one_shot",
    "ping_pong",
    "reversed_one_shot",
    "round_robin",
    "run_concurrent",
    "run_factory_once",
    "run_sequence",
    "shuffled",
    "single_hotspot",
    "zipf_sequence",
]
