"""Workloads: initiator sequences and the drivers that execute them.

* :mod:`repro.workloads.sequences` — who increments, in what order; the
  paper's one-shot permutation plus skewed/repeated extension workloads.
* :mod:`repro.workloads.driver` — sequential (quiescence-barrier) and
  concurrent (batch) execution against any
  :class:`~repro.api.DistributedCounter`.
"""

from repro.workloads.driver import (
    OpOutcome,
    RunResult,
    run_concurrent,
    run_factory_once,
    run_sequence,
)
from repro.workloads.sequences import (
    batched,
    one_shot,
    ping_pong,
    reversed_one_shot,
    round_robin,
    shuffled,
    single_hotspot,
    zipf_sequence,
)

__all__ = [
    "OpOutcome",
    "batched",
    "RunResult",
    "one_shot",
    "ping_pong",
    "reversed_one_shot",
    "round_robin",
    "run_concurrent",
    "run_factory_once",
    "run_sequence",
    "shuffled",
    "single_hotspot",
    "zipf_sequence",
]
