"""Workloads: initiator sequences and the drivers that execute them.

* :mod:`repro.workloads.sequences` — who increments, in what order; the
  paper's one-shot permutation plus skewed/repeated extension workloads
  and open-loop arrival processes (Poisson, bursty).
* :mod:`repro.workloads.driver` — sequential (quiescence-barrier),
  concurrent (batch) and open-loop (arrival-time) execution against any
  :class:`~repro.api.DistributedCounter`, under any
  :class:`~repro.runtime.Runtime`.
* :mod:`repro.workloads.sweep` — parallel, cacheable execution of whole
  experiment grids (counter × n × seed × policy).
"""

from repro.workloads.driver import (
    OpenLoopOutcome,
    OpenLoopResult,
    OpOutcome,
    RunResult,
    run_concurrent,
    run_concurrent_async,
    run_factory_once,
    run_open_loop,
    run_sequence,
    run_sequence_async,
)
from repro.workloads.sweep import (
    TRANSPORT_NAMES,
    SweepOutcome,
    SweepPoint,
    SweepRunner,
    execute_point,
)
from repro.workloads.sequences import (
    ARRIVAL_PROCESSES,
    arrival_times,
    batched,
    bursty_arrivals,
    one_shot,
    ping_pong,
    poisson_arrivals,
    reversed_one_shot,
    round_robin,
    shuffled,
    single_hotspot,
    zipf_sequence,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "OpOutcome",
    "OpenLoopOutcome",
    "OpenLoopResult",
    "RunResult",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "TRANSPORT_NAMES",
    "arrival_times",
    "batched",
    "bursty_arrivals",
    "execute_point",
    "one_shot",
    "ping_pong",
    "poisson_arrivals",
    "reversed_one_shot",
    "round_robin",
    "run_concurrent",
    "run_concurrent_async",
    "run_factory_once",
    "run_open_loop",
    "run_sequence",
    "run_sequence_async",
    "shuffled",
    "single_hotspot",
    "zipf_sequence",
]
