"""Benchmark harness: measure the simulator substrate, emit JSON.

Times the hot paths directly (no pytest-benchmark dependency at run
time) so CI and developers get one comparable artifact:

* event-queue schedule+pop throughput;
* message delivery throughput at every :class:`TraceLevel`, on both the
  table-driven fast core and the compatible heapq core, with the
  speedup over the seed's FULL-tracing baseline;
* counter-registry spec resolution and RunSession construction rates;
* wall time of a small E7-style sweep, serial vs parallel;
* a 3-point drop-rate smoke grid (ww-tree behind the reliable
  transport) with the transport's retransmit metrics;
* a crash-recovery smoke grid (central[standby] under a mid-run
  primary crash) with failover latency and bottleneck overhead;
* a ``large_n`` grid: ww-tree one-shot runs at n = 10^4 and 10^5,
  million-event territory that only the fast core makes routine;
* a ``serving`` grid: wall-clock rate sweeps against a live TCP
  counter service (asyncio runtime, scaled simulated delays) with
  p50/p99 latency per offered rate and the detected saturation knee;
* a ``resilience`` grid: the E26 graceful-degradation trial — 2x the
  knee rate through a fault-injecting chaos proxy with deadlines,
  bounded admission and idempotent retries, goodput and exactly-once
  arithmetic recorded;
* a ``sharding`` grid: the E27 trial — the same Zipf-keyed workload
  against a single serialized counter and against a batched
  4-shard keyspace through the chaos proxy, with the goodput ratio,
  per-key exactness and the offline fixture-replay verdict recorded.

Grids are individually selectable (``repro bench --grid messages``)
and every report is stamped with the git SHA and an ISO-8601 UTC
timestamp so archived artifacts are traceable to a commit.
"""

from __future__ import annotations

import asyncio
import datetime
import gc
import json
import multiprocessing
import pathlib
import platform
import statistics
import subprocess
import sys
import time

from repro.registry import RunSession, parse_spec, registered_names
from repro.sim.events import EventQueue, FlatEventQueue
from repro.sim.network import Network
from repro.sim.processor import InertProcessor
from repro.sim.trace import TraceLevel
from repro.workloads import SweepPoint, SweepRunner

SEED_FULL_MSGS_PER_S = 140_877
"""messages/s of ``test_message_throughput`` measured at the seed commit
(FULL tracing, pre-optimization) on the reference machine — the
denominator for the speedup ratios below."""


def _best_rate(work, units: int, repeats: int = 30) -> float:
    """Best-of-*repeats* throughput in units/second (median of top 5)."""
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        work()
        elapsed = time.perf_counter() - start
        rates.append(units / elapsed)
    return statistics.median(sorted(rates)[-5:])


def git_sha() -> str | None:
    """Short SHA of HEAD, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None


def bench_event_queue(events: int = 1000, core: str = "compat") -> float:
    """Mirror of ``test_event_queue_throughput`` in bench_simulator.py."""
    queue_type = FlatEventQueue if core == "fast" else EventQueue

    def churn():
        queue = queue_type()
        for index in range(events):
            queue.schedule((index * 7) % 13 + 0.5, lambda: None)
        while queue:
            queue.run_next()

    return _best_rate(churn, 2 * events)  # schedule + pop each count


def bench_messages(
    level: TraceLevel, messages: int = 1000, core: str = "fast"
) -> float:
    """Mirror of ``test_message_throughput*`` in bench_simulator.py.

    The blast size matches the benchmark suite (and the seed baseline
    measurement) so the speedup ratios are apples to apples.
    """
    network = Network(trace_level=level, core=core)
    network.register_all([InertProcessor(pid) for pid in range(1, 17)])

    def blast():
        send = network.send
        for index in range(messages):
            send((index % 16) + 1, ((index + 7) % 16) + 1, "m", {})
        network.run_until_quiescent()

    return _best_rate(blast, messages)


def bench_spec_resolution() -> float:
    """Mirror of ``test_registry_spec_resolution`` in bench_simulator.py."""
    specs = [
        *registered_names(),
        "combining-tree?arity=4&window=3.0",
        "ww-tree?interval_mode=wrap",
        "diffracting-tree?prism_size=8&seed=7",
    ]

    def resolve():
        for text in specs:
            parse_spec(text).canonical

    return _best_rate(resolve, len(specs))


def bench_session_construction(n: int = 81) -> float:
    """Mirror of ``test_registry_session_construction``: sessions/s."""
    sessions = 20

    def build():
        for _ in range(sessions):
            RunSession("ww-tree", n)

    return _best_rate(build, sessions, repeats=10)


def bench_fault_transport(
    n: int = 27, drops: tuple[float, ...] = (0.0, 0.05, 0.1)
) -> dict:
    """Drop-rate smoke grid: ww-tree one-shot behind ReliableTransport.

    Completion is asserted (``run_sequence`` checks every returned
    value), so this doubles as a CI smoke test of the faulty regime.
    """
    grid = {}
    for drop in drops:
        session = RunSession(
            "ww-tree",
            n,
            policy="random",
            seed=3,
            faults=f"drop={drop}" if drop else None,
            reliable=True,
        )
        start = time.perf_counter()
        result = session.run_sequence()
        elapsed = time.perf_counter() - start
        stats = session.transport_stats()
        grid[f"drop={drop}"] = {
            "bottleneck_load": result.bottleneck_load(),
            "data_sent": stats["data_sent"],
            "retransmissions": stats["retransmissions"],
            "duplicates_suppressed": stats["duplicates_suppressed"],
            "overhead_ratio": round(session.transport.overhead_ratio(), 4),
            "wall_time_s": round(elapsed, 4),
        }
    return {
        "grid": f"ww-tree one-shot, n={n}, random delays, reliable transport",
        "note": "all values verified correct at every drop rate; "
        "overhead_ratio = transmissions / goodput",
        **grid,
    }


def bench_recovery(n: int = 16) -> dict:
    """Crash-recovery smoke grid: central[standby] failover.

    One clean run and one with a permanent mid-run primary crash;
    linearizability is asserted on both, so this doubles as a CI smoke
    test of the recovery stack (failure detector + checkpoint/failover).
    """
    from repro.analysis.linearizability import check_linearizable_counting
    from repro.analysis.load import LoadProfile

    grid = {}
    for label, faults in (("clean", None), ("primary crash", "crash=1@t18")):
        session = RunSession(
            "central[standby]", n, policy="random", seed=3, faults=faults
        )
        start = time.perf_counter()
        ops = session.run_staggered(gap=4.0)
        elapsed = time.perf_counter() - start
        report = check_linearizable_counting(ops)
        assert report.linearizable, f"{label}: history not linearizable"
        profile = LoadProfile.from_trace(session.network.trace, population=n)
        manager = session.recovery
        grid[label] = {
            "ops_completed": len(ops),
            "linearizable": report.linearizable,
            "suspicions": manager.detector.suspicion_count() if manager else 0,
            "failovers": manager.failover_count() if manager else 0,
            "failover_latency": (
                round(manager.failover_latency(), 2)
                if manager and manager.failover_latency() is not None
                else None
            ),
            "client_bottleneck_load": (
                profile.restrict(range(1, n + 1)).bottleneck_load
            ),
            "wall_time_s": round(elapsed, 4),
        }
    return {
        "grid": f"central[standby] staggered one-shot, n={n}, random delays",
        "note": "linearizability asserted on both runs; failover latency "
        "runs from the crash-window start to the standby's promotion",
        **grid,
    }


def bench_explore() -> dict:
    """Exploration smoke grid: schedules judged per second.

    Mirrors ``benchmarks/bench_explore.py``: a random-walk budget on
    the central counter and a guided budget on the bypass combining
    tree (the acceptance configuration).  Both runs assert no oracle
    failed, so this doubles as a CI smoke test of the explorer.
    """
    from repro.explore import ExploreConfig, Explorer

    grid = {}
    for label, counter, strategy in (
        ("central random", "central", "random"),
        ("bypass-tree guided", "combining-tree[bypass]", "guided"),
    ):
        explorer = Explorer(
            ExploreConfig(counter=counter, n=8, strategy=strategy, budget=20)
        )

        def explore(explorer=explorer):
            report = explorer.run()
            assert report.ok, f"exploration found failures: {report.failures}"

        rate = _best_rate(explore, 20, repeats=5)
        grid[label] = {"schedules_per_s": round(rate, 1)}
    return {
        "grid": "n=8, 20 episodes per measurement, full oracle suite",
        "note": "every schedule is judged by all five oracles; both "
        "configurations asserted failure-free",
        **grid,
    }


def bench_byzantine(n: int = 7, budgets: tuple[int, ...] = (1, 2)) -> dict:
    """Byzantine resilience grid: rounds and msgs/op vs f.

    ``byz-counter`` under the synchronous-round runtime, clean and under
    a budget-f ``mixed`` adversary, at every admissible tolerance level
    for the population.  Honest completion is asserted on every cell, so
    this doubles as a CI smoke test of the Byzantine stack; the row pair
    per f shows what the adversary *adds* on top of the protocol's own
    agreement cost (phases scale with f + 1, so msgs/op grows with f).
    """
    grid = {}
    for f in budgets:
        for label, faults in (
            (f"f={f} clean", None),
            (f"f={f} adversarial", f"byz={f}@mixed"),
        ):
            session = RunSession(
                f"byz-counter?f={f}",
                n,
                policy="random",
                seed=3,
                faults=faults,
                runtime="sync",
                trace_level="FULL",
            )
            start = time.perf_counter()
            result = session.run_sequence(check_values=faults is None)
            elapsed = time.perf_counter() - start
            byz = (
                session.fault_plan.byzantine_pids
                if session.fault_plan is not None
                else frozenset()
            )
            honest = [
                o.value
                for o in result.outcomes
                if o.initiator not in byz
            ]
            assert len(honest) == n - len(byz), f"{label}: honest inc lost"
            assert len(set(honest)) == len(honest), f"{label}: duplicate"
            messages = len(session.network.trace.records)
            grid[label] = {
                "rounds": session.runtime.rounds,
                "msgs_per_op": round(messages / n, 1),
                "honest_ops": len(honest),
                "wall_time_s": round(elapsed, 4),
            }
    return {
        "grid": f"byz-counter sequential one-shot, n={n}, sync runtime, "
        "mixed adversary",
        "note": "honest completion and value uniqueness asserted on "
        "every cell; rounds counted by the lockstep runtime",
        **grid,
    }


def bench_sweep(workers: int) -> float:
    points = [
        SweepPoint(counter=counter, n=n)
        for counter in ("central", "static-tree", "ww-tree")
        for n in (256, 1024)
    ]
    start = time.perf_counter()
    SweepRunner(workers=workers, serial_threshold=0).run(points)
    return time.perf_counter() - start


def bench_large_n(sizes: tuple[int, ...] = (10_000, 100_000)) -> dict:
    """ww-tree one-shot runs at large n on the fast core, OFF tracing.

    Each point is a single cold run (no repeat loop — these are
    multi-second, million-event simulations): build the session, run
    the full sequential one-shot workload, and report build time, run
    time, events executed, and end-to-end messages/s.  The workload
    itself asserts every returned counter value, so correctness rides
    along with the timing.
    """
    grid = {}
    for n in sizes:
        build_start = time.perf_counter()
        session = RunSession("ww-tree", n, trace_level="OFF")
        build_s = time.perf_counter() - build_start
        run_start = time.perf_counter()
        session.run_sequence()
        run_s = time.perf_counter() - run_start
        events = session.network.events_executed
        grid[f"n={n}"] = {
            "build_s": round(build_s, 3),
            "run_s": round(run_s, 3),
            "events_executed": events,
            "events_per_s": round(events / run_s),
        }
    return {
        "grid": "ww-tree sequential one-shot, OFF tracing, fast core, "
        "single cold run per point",
        "note": "every returned value asserted correct; events include "
        "message deliveries and local timer callbacks",
        **grid,
    }


def bench_serving(ops: int = 150, time_scale: float = 0.005) -> dict:
    """Wall-clock serving grid: rate sweeps against a live TCP service.

    For each configuration, start a :class:`~repro.serve.CounterService`
    on a loopback port (asyncio runtime, simulated delays scaled to real
    milliseconds so capacity is protocol-determined rather than
    interpreter-determined), then sweep ascending offered rates with the
    open-loop load generator and report p50/p99 latency per rate plus
    the detected saturation knee.  Every request's returned value is
    checked by the generator, and the final counter value is asserted,
    so correctness rides along with the timing.
    """
    from repro.serve import CounterService, run_rate_sweep

    configs = (
        ("central", 8, (100.0, 200.0, 400.0, 800.0, 1600.0)),
        (
            "ww-tree?interval_mode=wrap",
            27,
            (100.0, 200.0, 400.0, 800.0, 1600.0),
        ),
    )

    async def sweep(spec: str, n: int, rates: tuple[float, ...]):
        service = CounterService(
            spec, n, port=0, time_scale=time_scale, trace_level="LOADS"
        )
        await service.start()
        try:
            result = await run_rate_sweep(
                "127.0.0.1", service.port, ops, rates
            )
        finally:
            await service.stop()
        total = ops * len(rates)
        assert service.served == total, (
            f"{spec}: served {service.served} of {total} requests"
        )
        return result

    grid = {}
    for spec, n, rates in configs:
        result = asyncio.run(sweep(spec, n, rates))
        errors = sum(run.errors for run in result.runs)
        assert errors == 0, f"{spec}: {errors} failed requests"
        grid[spec] = {
            "n": n,
            "offered_rates_per_s": [run.offered_rate for run in result.runs],
            "throughput_per_s": [
                round(run.throughput, 1) for run in result.runs
            ],
            "p50_ms": [round(run.p50 * 1000, 2) for run in result.runs],
            "p99_ms": [round(run.p99 * 1000, 2) for run in result.runs],
            "knee_rate_per_s": result.knee_rate,
        }
    return {
        "grid": f"live TCP service, {ops} Poisson increments per rate, "
        f"time_scale={time_scale}",
        "note": "open-loop latency measured from scheduled arrival; the "
        "knee is the first rate whose mean latency exceeds 3x the "
        "lowest rate's; all responses verified, final values asserted",
        **grid,
    }


def bench_resilience(ops: int = 960) -> dict:
    """Graceful-degradation grid: 2x knee load through the chaos proxy.

    Runs the E26 trial (knee-rate baseline, then double the knee
    through a :class:`~repro.serve.ChaosProxy` injecting delays,
    stalls, truncated answers, resets and blackholes, with per-request
    deadlines and idempotent retries) and records the wall-clock
    goodput, latency and fault accounting.  Exactly-once arithmetic is
    asserted: the final counter value equals the baseline commits plus
    the unique committed request ids, chaos notwithstanding.
    """
    from repro.experiments.resilience_exp import run_resilience_trial

    trial = run_resilience_trial(ops=ops)
    assert trial.exactly_once, (
        f"resilience grid: counter value {trial.probe_value} != "
        f"{trial.baseline.completed} baseline commits + "
        f"{trial.rid_committed} unique committed rids"
    )
    baseline, chaos = trial.baseline, trial.chaos
    return {
        "grid": f"{trial.spec} n={trial.n}, {ops} increments per phase, "
        "knee-rate baseline then 2x knee through the chaos proxy",
        "note": "goodput counts server-side commits over chaos wall "
        "time; exactly-once asserted (final value == baseline commits "
        "+ unique committed request ids)",
        "chaos_plan": trial.chaos_plan,
        "deadline_ms": round(trial.deadline * 1000, 1),
        "retry_attempts": trial.retry.attempts,
        "baseline": {
            "offered_rate_per_s": baseline.offered_rate,
            "completed": baseline.completed,
            "throughput_per_s": round(baseline.throughput, 1),
            "p50_ms": round(baseline.p50 * 1000, 2),
            "p99_ms": round(baseline.p99 * 1000, 2),
        },
        "chaos": {
            "offered_rate_per_s": trial.overload_rate,
            "completed": chaos.completed,
            "goodput_per_s": round(trial.chaos_goodput, 1),
            "goodput_vs_baseline": round(
                trial.chaos_goodput / baseline.throughput, 2
            ),
            "p50_ms": round(chaos.p50 * 1000, 2),
            "p99_ms": round(chaos.p99 * 1000, 2),
            "p99_bound_ms": round(trial.worst_case_latency * 1000, 1),
            "retries": chaos.retries,
            "errors_by_type": dict(sorted(chaos.error_counts.items())),
        },
        "server": {
            "served": trial.stats["served"],
            "shed": trial.stats["shed"],
            "deadline_expired": trial.stats["expired"],
            "duplicate_hits": trial.stats["deduped"],
            "rid_committed": trial.rid_committed,
        },
        "proxy": {
            key: value for key, value in trial.proxy_stats.items() if value
        },
    }


def bench_sharding(ops: int = 320) -> dict:
    """Sharded-keyspace grid: the E27 baseline-vs-sharded trial.

    Runs the E27 trial (one serialized shard with ``batch_max=1``,
    then 4 shards with batch combining through the chaos proxy) and
    records the wall-clock goodput of both phases, the ratio, the
    chaos accounting and the offline replay verdict.  Per-key
    exactness is asserted: every key's final value equals exactly its
    unique committed request ids, live and under replay.
    """
    from repro.experiments.sharding_exp import run_sharding_trial

    trial = run_sharding_trial(ops=ops)
    failures = trial.exactness_failures()
    assert not failures, (
        f"sharding grid: per-key exactness violated on {failures}"
    )
    assert trial.sharded.completed == trial.sharded.sent, (
        f"sharding grid: lost requests under chaos "
        f"({trial.sharded.completed}/{trial.sharded.sent})"
    )
    assert trial.replay_ops == trial.sharded.completed, (
        f"sharding grid: replay verified {trial.replay_ops} ops of "
        f"{trial.sharded.completed}"
    )
    baseline, sharded = trial.baseline, trial.sharded
    return {
        "grid": f"{trial.spec} pools of n={trial.n}, {ops} Zipf("
        f"{trial.zipf:g})-keyed increments per phase over {trial.keys} "
        "keys, single serialized counter vs batched shards + chaos",
        "note": "per-key exactness asserted live and by offline "
        "fixture replay; the ratio is the sharding+batching win over "
        "the single-counter regime the paper's bound pins",
        "chaos_plan": trial.chaos_plan,
        "retry_attempts": trial.retry.attempts,
        "baseline": {
            "shards": 1,
            "batch_max": 1,
            "completed": baseline.completed,
            "throughput_per_s": round(baseline.throughput, 1),
            "p50_ms": round(baseline.p50 * 1000, 2),
            "p99_ms": round(baseline.p99 * 1000, 2),
        },
        "sharded": {
            "shards": trial.shards,
            "batch_max": trial.batch_max,
            "completed": sharded.completed,
            "throughput_per_s": round(sharded.throughput, 1),
            "p50_ms": round(sharded.p50 * 1000, 2),
            "p99_ms": round(sharded.p99 * 1000, 2),
            "retries": sharded.retries,
            "batches": trial.sharded_stats["batches"],
        },
        "goodput_ratio": round(trial.goodput_ratio, 2),
        "keys_touched": len(trial.snapshot),
        "replay": "REPLAY OK: "
        + trial.replay_summary.split(": ", 1)[1],
        "proxy": {
            key: value for key, value in trial.proxy_stats.items() if value
        },
    }


GRIDS = (
    "queue",
    "messages",
    "registry",
    "sweep",
    "faults",
    "recovery",
    "byzantine",
    "explore",
    "large_n",
    "serving",
    "resilience",
    "sharding",
)


def _grid_boundary() -> None:
    """Release the previous grid's garbage before timing the next one.

    The message grids churn through millions of objects; without a
    collection here their eventual gen-2 sweep lands inside whichever
    grid runs next and halves its measured rate.
    """
    gc.collect()


def build_report(grids: tuple[str, ...] = GRIDS) -> dict:
    """Run the selected benchmark grids and assemble the JSON report."""
    unknown = sorted(set(grids) - set(GRIDS))
    if unknown:
        raise ValueError(f"unknown benchmark grids: {', '.join(unknown)}")
    report: dict = {
        "benchmark": "simulator substrate",
        "git_sha": git_sha(),
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": multiprocessing.cpu_count(),
    }
    if "queue" in grids:
        _grid_boundary()
        report["event_queue_ops_per_s"] = {
            "fast": round(bench_event_queue(core="fast")),
            "compat": round(bench_event_queue(core="compat")),
        }
    if "messages" in grids:
        _grid_boundary()
        rates = {
            core: {
                "full": bench_messages(TraceLevel.FULL, core=core),
                "loads": bench_messages(TraceLevel.LOADS, core=core),
                "off": bench_messages(TraceLevel.OFF, core=core),
            }
            for core in ("fast", "compat")
        }
        report["messages_per_s"] = {
            core: {level: round(rate) for level, rate in levels.items()}
            for core, levels in rates.items()
        }
        report["seed_reference"] = {
            "full_msgs_per_s": SEED_FULL_MSGS_PER_S,
            "note": "seed-commit FULL-tracing throughput; ratio target "
            "for LOADS is >= 5x",
        }
        report["speedup_vs_seed_full"] = {
            level: round(rate / SEED_FULL_MSGS_PER_S, 2)
            for level, rate in rates["fast"].items()
        }
    if "registry" in grids:
        _grid_boundary()
        report["registry"] = {
            "spec_resolutions_per_s": round(bench_spec_resolution()),
            "ww_tree_sessions_per_s": round(bench_session_construction()),
            "note": "parse+canonicalize over every registered spec; "
            "RunSession includes building the n=81 tree",
        }
    if "sweep" in grids:
        _grid_boundary()
        report["sweep_wall_time_s"] = {
            "grid": "3 counters x n in (256, 1024), one-shot",
            "note": "parallel only wins with >1 cpu; outputs are "
            "identical either way",
            "serial": round(bench_sweep(workers=1), 3),
            "parallel_4_workers": round(bench_sweep(workers=4), 3),
        }
    if "faults" in grids:
        _grid_boundary()
        report["fault_transport"] = bench_fault_transport()
    if "recovery" in grids:
        _grid_boundary()
        report["crash_recovery"] = bench_recovery()
    if "byzantine" in grids:
        _grid_boundary()
        report["byzantine"] = bench_byzantine()
    if "explore" in grids:
        _grid_boundary()
        report["schedule_exploration"] = bench_explore()
    if "large_n" in grids:
        _grid_boundary()
        report["large_n"] = bench_large_n()
    if "serving" in grids:
        _grid_boundary()
        report["serving"] = bench_serving()
    if "resilience" in grids:
        _grid_boundary()
        report["resilience"] = bench_resilience()
    if "sharding" in grids:
        _grid_boundary()
        report["sharding"] = bench_sharding()
    return report


def write_report(
    output: str | pathlib.Path,
    grids: tuple[str, ...] = GRIDS,
    echo: bool = True,
) -> dict:
    """Build the report, write it to *output*, optionally print it."""
    report = build_report(grids)
    path = pathlib.Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    if echo:
        print(json.dumps(report, indent=2))
        print(f"\nwrote {path}", file=sys.stderr)
    return report
