"""The runtime seam: one protocol object, pluggable schedulers.

Every counter in this repo is a set of processor programs wired into a
:class:`~repro.sim.network.Network`; *how* the network's pending events
get executed is a separate concern.  This module makes that concern a
first-class seam — a :class:`Runtime` is the thing that drains the event
queue, and there are three interchangeable implementations:

* ``"sim"`` — :class:`SimulatedRuntime` over the table-driven fast core:
  the discrete-event scheduler every measurement runs on;
* ``"sim-compat"`` — the same :class:`SimulatedRuntime` over the
  historical ``heapq`` core (byte-identical traces; hosts scheduler
  hooks and fault plans natively);
* ``"asyncio"`` — :class:`AsyncioRuntime`: the same protocol objects
  executed cooperatively inside a real :mod:`asyncio` event loop, so a
  counter can serve live traffic (see :mod:`repro.serve`) or embed in an
  async application.  With ``time_scale > 0`` simulated gaps become real
  sleeps, turning simulated time into approximate wall-clock time.
* ``"sync"`` — :class:`SynchronousRuntime`: lockstep *rounds*, the model
  synchronous Byzantine counting protocols assume.  Each round executes
  every event sharing the earliest pending timestamp (collect → the
  fault plan's adversary rewrites on the send path → deliver → compute);
  messages sent during a round land in later rounds.

The seam is deliberately tiny — *step*, *drain*, *until-quiescent*, a
time source and the trace hookup — which is how the synchronous mode
stayed one class, not a refactor.  Message accounting is identical under every runtime:
it is the same :class:`~repro.sim.trace.Trace` on the same network,
which the test suite asserts fingerprint-identical for every registered
counter spec.

Select a runtime by name through :class:`~repro.registry.RunSession`::

    session = RunSession("ww-tree", n=81, runtime="asyncio")
    result = session.run_sequence()          # drives an asyncio loop
    await session.runtime.drain()            # or drain inside your own loop
"""

from __future__ import annotations

import asyncio
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError, SimulationError
from repro.sim.network import Network
from repro.sim.trace import Trace

__all__ = [
    "RUNTIME_NAMES",
    "AsyncioRuntime",
    "Runtime",
    "SimulatedRuntime",
    "SynchronousRuntime",
    "make_runtime",
]

RUNTIME_NAMES = ("sim", "sim-compat", "sync", "asyncio")
"""Runtimes resolvable by :func:`make_runtime` (and ``RunSession``)."""


@runtime_checkable
class Runtime(Protocol):
    """What a scheduler must provide to run a wired counter.

    A runtime owns no protocol state — it only decides *when and under
    whose control* the network's pending events execute.  The contract:

    * :attr:`name` — the registry name (``"sim"``, ``"asyncio"``, ...);
    * :attr:`is_async` — whether :meth:`drain` actually suspends (the
      drivers use this to route a workload through ``asyncio.run``);
    * :attr:`network` / :attr:`trace` — the substrate and its ledger;
    * :attr:`now` — the time source (simulated time; wall-clock mapping
      is the asyncio runtime's ``time_scale`` concern);
    * :meth:`step` — execute the single earliest event;
    * :meth:`until_quiescent` — blocking drain to quiescence;
    * :meth:`drain` — awaitable drain to quiescence (the only method a
      cooperative scheduler implements differently).
    """

    name: str
    is_async: bool

    @property
    def network(self) -> Network: ...

    @property
    def trace(self) -> Trace: ...

    @property
    def now(self) -> float: ...

    def step(self) -> bool: ...

    def until_quiescent(self) -> int: ...

    async def drain(self) -> int: ...


class SimulatedRuntime:
    """The discrete-event scheduler: drain the queue, advance sim time.

    A thin, allocation-free veneer over
    :meth:`~repro.sim.network.Network.run_until_quiescent` — the sync
    drivers call straight through, so traces are byte-identical to
    pre-seam behavior.  Which event-queue core backs it (``fast`` or
    ``compat``) is the network's ``core=`` constructor concern; the
    runtime reports it via :attr:`core`.
    """

    name = "sim"
    is_async = False

    def __init__(self, network: Network) -> None:
        self._network = network

    @property
    def network(self) -> Network:
        """The substrate this runtime drains."""
        return self._network

    @property
    def trace(self) -> Trace:
        """The network's execution trace (same object, any runtime)."""
        return self._network.trace

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._network.now

    @property
    def core(self) -> str:
        """The backing event-queue core (``"fast"`` or ``"compat"``)."""
        return self._network.core

    def step(self) -> bool:
        """Execute the earliest pending event; ``False`` when quiescent."""
        return self._network.step()

    def until_quiescent(self) -> int:
        """Run events until none remain; return how many ran."""
        return self._network.run_until_quiescent()

    async def drain(self) -> int:
        """Awaitable form of :meth:`until_quiescent` (never suspends)."""
        return self._network.run_until_quiescent()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedRuntime(core={self.core!r})"


class SynchronousRuntime:
    """Lockstep rounds: the synchronous model of Byzantine counting.

    Lenzen–Rybicki-style protocols assume computation proceeds in
    *rounds*: every processor receives the round's messages, computes,
    and sends — simultaneously.  This runtime recovers that model from
    the event queue: one :meth:`round` executes **every** event sharing
    the earliest pending timestamp (including zero-delay events the
    handlers schedule into the live round), then stops.  Messages sent
    during a round carry positive delays, so they land in later rounds
    — under the default unit-delay policy each round is exactly one
    synchronous step.  The adversary acts where it always does, on the
    send path: an installed fault plan rewrites, withholds or forges
    payloads *between* rounds, which is precisely the "collect →
    adversary → deliver → compute" structure of the synchronous model.

    Determinism is inherited wholesale: the queue's ``(time, seq)``
    order within a round is the same order ``"sim"`` uses, so a full
    drain is trace-identical to the event-driven runtimes — rounds are
    a *view* (with a counter), not a reordering.
    """

    name = "sync"
    is_async = False

    def __init__(self, network: Network) -> None:
        self._network = network
        self._rounds = 0

    @property
    def network(self) -> Network:
        """The substrate this runtime drains."""
        return self._network

    @property
    def trace(self) -> Trace:
        """The network's execution trace (same object, any runtime)."""
        return self._network.trace

    @property
    def now(self) -> float:
        """Current simulated time (= the timestamp of the last round)."""
        return self._network.now

    @property
    def rounds(self) -> int:
        """Completed lockstep rounds since construction."""
        return self._rounds

    def step(self) -> bool:
        """Execute the earliest pending event; ``False`` when quiescent."""
        return self._network.step()

    def round(self) -> int:
        """Run one lockstep round; return how many events it executed.

        A round is every pending event at the earliest timestamp,
        including same-time events scheduled while the round runs.
        Returns 0 (and counts no round) when the network is quiescent.
        """
        network = self._network
        queue = network._queue
        start = queue.next_time()
        if start is None:
            return 0
        executed = 0
        step = network.step
        while queue.next_time() == start:
            step()
            executed += 1
        self._rounds += 1
        return executed

    def until_quiescent(self) -> int:
        """Drain round by round until no events remain; return events run."""
        total = 0
        while True:
            executed = self.round()
            if not executed:
                return total
            total += executed

    async def drain(self) -> int:
        """Awaitable form of :meth:`until_quiescent` (never suspends)."""
        return self.until_quiescent()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SynchronousRuntime(rounds={self._rounds})"


class AsyncioRuntime:
    """Drive the same protocol objects cooperatively under asyncio.

    Between events the runtime yields to the loop, so other tasks — a
    TCP server, a load generator, your application — interleave with
    the simulation.  Generalizes the former ``repro.aio.AsyncRunner``.

    Args:
        network: the network whose events to run.
        time_scale: seconds of real sleep per unit of simulated time
            between consecutive events (0 = run flat out, only yielding
            control to the loop).
        yield_every: how many back-to-back events to execute before
            yielding to the loop even when no sleep is due.
    """

    name = "asyncio"
    is_async = True

    def __init__(
        self,
        network: Network,
        time_scale: float = 0.0,
        yield_every: int = 64,
    ) -> None:
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        if yield_every < 1:
            raise ValueError(f"yield_every must be >= 1, got {yield_every}")
        self._network = network
        self._time_scale = time_scale
        self._yield_every = yield_every

    @property
    def network(self) -> Network:
        """The substrate this runtime drains."""
        return self._network

    @property
    def trace(self) -> Trace:
        """The network's execution trace (same object, any runtime)."""
        return self._network.trace

    @property
    def now(self) -> float:
        """Current simulated time (wall-clock is ``now * time_scale``)."""
        return self._network.now

    @property
    def time_scale(self) -> float:
        """Real seconds slept per unit of simulated time."""
        return self._time_scale

    @property
    def yield_every(self) -> int:
        """Events executed back-to-back before an unforced loop yield."""
        return self._yield_every

    def step(self) -> bool:
        """Execute the earliest pending event; ``False`` when quiescent."""
        return self._network.step()

    async def drain(self) -> int:
        """Run events until quiescence, cooperatively; return how many ran.

        Events injected by other tasks *while draining* (e.g. a server
        accepting a request mid-drain) are picked up in the same pass —
        the loop only ends when the queue is genuinely empty.
        """
        network = self._network
        step = network.step
        scale = self._time_scale
        yield_every = self._yield_every
        sleep = asyncio.sleep
        executed = 0
        while True:
            before = network.now
            if not step():
                break
            executed += 1
            gap = network.now - before
            if scale > 0.0 and gap > 0.0:
                await sleep(gap * scale)
            elif executed % yield_every == 0:
                await sleep(0)
        return executed

    def until_quiescent(self) -> int:
        """Blocking drain: spin up a private event loop and run it.

        Only usable outside a running loop; from async code, ``await
        drain()`` instead.
        """
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self.drain())
        raise SimulationError(
            "AsyncioRuntime.until_quiescent() cannot block inside a "
            "running event loop; await drain() instead"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncioRuntime(time_scale={self._time_scale}, "
            f"yield_every={self._yield_every})"
        )


def make_runtime(
    name: str,
    network: Network,
    *,
    time_scale: float = 0.0,
    yield_every: int = 64,
) -> Runtime:
    """Build the runtime registered under *name* for *network*.

    ``"sim"`` and ``"sim-compat"`` both map to :class:`SimulatedRuntime`
    — the core distinction is a *network* construction concern, which
    :class:`~repro.registry.RunSession` resolves before calling here.
    The asyncio options are ignored by the simulated runtimes.
    """
    if name in ("sim", "sim-compat"):
        return SimulatedRuntime(network)
    if name == "sync":
        return SynchronousRuntime(network)
    if name == "asyncio":
        return AsyncioRuntime(
            network, time_scale=time_scale, yield_every=yield_every
        )
    raise ConfigurationError(
        f"unknown runtime {name!r}; expected one of {RUNTIME_NAMES}"
    )
