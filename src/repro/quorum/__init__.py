"""Quorum systems and a quorum-replicated counter (related-work substrate).

* :mod:`~repro.quorum.systems` — singleton, rotating majority, Maekawa
  grid, tree paths, wheel, crumbling walls.
* :mod:`~repro.quorum.analysis` — uniform and LP-optimal load, the
  Naor–Wool 1/√n floor.
* :mod:`~repro.quorum.counter` — a versioned read/write counter over any
  quorum system.
"""

from repro.quorum.analysis import (
    LoadAnalysis,
    capacity,
    fault_tolerance,
    naor_wool_floor,
    optimal_load,
    uniform_load,
)
from repro.quorum.counter import QuorumCounter
from repro.quorum.probes import probe_complexity
from repro.quorum.projective import ProjectivePlaneQuorum
from repro.quorum.systems import (
    CrumblingWall,
    MaekawaGrid,
    QuorumSystem,
    RotatingMajorityQuorum,
    SingletonQuorum,
    TreePathQuorum,
    WheelQuorum,
)

__all__ = [
    "CrumblingWall",
    "LoadAnalysis",
    "MaekawaGrid",
    "ProjectivePlaneQuorum",
    "QuorumCounter",
    "QuorumSystem",
    "RotatingMajorityQuorum",
    "SingletonQuorum",
    "TreePathQuorum",
    "WheelQuorum",
    "capacity",
    "fault_tolerance",
    "naor_wool_floor",
    "optimal_load",
    "probe_complexity",
    "uniform_load",
]
