"""A distributed counter built on a quorum system.

Every processor keeps a versioned copy of the counter; an ``inc`` reads a
quorum (taking the maximum-version copy), returns that value, and writes
the incremented value back to the quorum.  Correctness under sequential
operations follows from intersection — exactly the Hot Spot Lemma's
argument run in reverse: because consecutive quorums share a member, the
reader always sees the latest write.

Message cost per operation: ``2·(|Q|−1)`` for the read round plus
``|Q|−1`` for the write round (the initiator's own copy is local).  Load
is governed by the quorum system's load profile: Maekawa grids spread a
Θ(√n) bottleneck, the singleton system degenerates to the central
counter, tree paths hammer the root — the E8 bench tabulates exactly
this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import Capabilities, DistributedCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.quorum.systems import QuorumSystem
from repro.sim.messages import Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

KIND_READ = "q-read"
KIND_READ_REPLY = "q-read-reply"
KIND_WRITE = "q-write"

SYSTEM_SLUGS = {
    "SingletonQuorum": "singleton",
    "RotatingMajorityQuorum": "majority",
    "MaekawaGrid": "maekawa",
    "TreePathQuorum": "tree-paths",
    "WheelQuorum": "wheel",
    "CrumblingWall": "crumbling-wall",
    "ProjectivePlaneQuorum": "projective-plane",
}
"""Canonical short name per quorum-system class.

``QuorumCounter.name`` is ``quorum[<slug>]``, which is also the counter's
registry key (:mod:`repro.registry`), so report tables, sweep cache keys
and BENCH JSON all agree on the same label.
"""


def system_slug(system: QuorumSystem) -> str:
    """Canonical slug of *system* (class name lowered for unknown ones)."""
    return SYSTEM_SLUGS.get(type(system).__name__, type(system).__name__.lower())


@dataclass(slots=True)
class _PendingInc:
    """Initiator-side state of one in-flight inc."""

    quorum: frozenset[ProcessorId]
    awaiting: int
    best_version: int = -1
    best_value: int = 0
    replies: list[tuple[int, int]] = field(default_factory=list)


class _QuorumMember(Processor):
    """A processor holding a versioned counter copy and running incs."""

    def __init__(self, pid: ProcessorId, counter: "QuorumCounter") -> None:
        super().__init__(pid)
        self._counter = counter
        self.version = 0
        self.value = 0
        self._pending: _PendingInc | None = None

    # -- initiator side --------------------------------------------------
    def request_inc(self) -> None:
        if self._pending is not None:
            raise ProtocolError(
                f"processor {self.pid} already has an inc in flight "
                "(the quorum counter is sequential)"
            )
        quorum = self._counter.next_quorum()
        remote = [member for member in quorum if member != self.pid]
        self._pending = _PendingInc(quorum=quorum, awaiting=len(remote))
        if self.pid in quorum:
            self._absorb_reply(self.version, self.value)
        for member in remote:
            self.send(member, KIND_READ, {})
        if not remote:
            self._finish_read_round()

    def _absorb_reply(self, version: int, value: int) -> None:
        assert self._pending is not None
        pending = self._pending
        pending.replies.append((version, value))
        if version > pending.best_version:
            pending.best_version = version
            pending.best_value = value

    def _finish_read_round(self) -> None:
        assert self._pending is not None
        pending = self._pending
        self._pending = None
        current = pending.best_value if pending.best_version >= 0 else 0
        new_version = pending.best_version + 1
        new_value = current + 1
        self._counter.deliver_result(self.pid, current)
        for member in pending.quorum:
            if member == self.pid:
                self._apply_write(new_version, new_value)
            else:
                self.send(
                    member,
                    KIND_WRITE,
                    {"version": new_version, "value": new_value},
                )

    # -- member side -----------------------------------------------------
    def _apply_write(self, version: int, value: int) -> None:
        if version > self.version:
            self.version = version
            self.value = value

    def on_message(self, message: Message) -> None:
        if message.kind == KIND_READ:
            self.send(
                message.sender,
                KIND_READ_REPLY,
                {"version": self.version, "value": self.value},
            )
        elif message.kind == KIND_READ_REPLY:
            if self._pending is None:
                raise ProtocolError(
                    f"processor {self.pid} got a read reply with no inc open"
                )
            self._absorb_reply(
                message.payload["version"], message.payload["value"]
            )
            self._pending.awaiting -= 1
            if self._pending.awaiting == 0:
                self._finish_read_round()
        elif message.kind == KIND_WRITE:
            self._apply_write(message.payload["version"], message.payload["value"])
        else:
            raise ProtocolError(
                f"quorum counter: unknown message kind {message.kind!r}"
            )


class QuorumCounter(DistributedCounter):
    """Versioned-copy counter over any :class:`QuorumSystem`.

    Args:
        network: simulator to wire into.
        n: number of client processors; must equal the system's universe.
        system: the quorum system to read/write through.
    """

    name = "quorum"
    capabilities = Capabilities(
        sequential_only=True,
        restriction=(
            "the versioned quorum read/write rounds are only correct when "
            "operations do not overlap (consecutive-quorum intersection "
            "assumes a finished write before the next read)"
        ),
    )

    def __init__(self, network: Network, n: int, system: QuorumSystem) -> None:
        super().__init__(network, n)
        if system.n != n:
            raise ConfigurationError(
                f"quorum system over {system.n} elements cannot serve n={n}"
            )
        self.system = system
        self.name = f"quorum[{system_slug(system)}]"
        self._ops_started = 0
        self._members: dict[ProcessorId, _QuorumMember] = {}
        for pid in self.client_ids():
            member = _QuorumMember(pid, self)
            network.register(member)
            self._members[pid] = member

    def next_quorum(self) -> frozenset[ProcessorId]:
        """The quorum the next operation uses (rotating strategy)."""
        quorum = self.system.quorum_for(self._ops_started)
        self._ops_started += 1
        return quorum

    def member(self, pid: ProcessorId) -> _QuorumMember:
        """Member state of processor *pid* (test introspection)."""
        return self._members[pid]

    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        if pid not in self._members:
            raise ConfigurationError(f"processor {pid} is not a client (1..{self.n})")
        member = self._members[pid]
        self.network.inject(member.request_inc, op_index=op_index)
