"""Probe complexity of quorum systems (Peleg–Wool 96, cited in §1).

"How to be an efficient snoop": a client probes elements one at a time,
learning whether each is alive, until it either exhibits a fully alive
quorum or certifies that every quorum contains a dead element.  The
*probe complexity* is the worst-case number of probes of the best
adaptive strategy against the worst failure configuration.

Computed exactly here as the value of the probe game by memoized
minimax over knowledge states ``(known_alive, known_dead)``:

    value(S) = 0                 if some quorum ⊆ known_alive
               0                 if every quorum meets known_dead
               1 + min over unprobed e of
                     max(value(S + e alive), value(S + e dead))

Exponential in the universe (state space 3ⁿ), so guarded to small
systems — exactly what is needed to verify the classic structural facts:
the singleton needs 1 probe, tree paths die with their root, the wheel
needs ~n probes in the worst case despite its size-2 quorums.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ConfigurationError
from repro.quorum.systems import QuorumSystem


def probe_complexity(system: QuorumSystem, max_n: int = 12) -> int:
    """Exact worst-case adaptive probe count for *system*.

    Args:
        system: the quorum family to snoop on.
        max_n: guard on the universe size (the game tree is 3ⁿ).
    """
    if system.n > max_n:
        raise ConfigurationError(
            f"probe-game search over 3^{system.n} states is infeasible "
            f"(limit {max_n})"
        )
    family = tuple(frozenset(q) for q in system.quorums())
    elements = tuple(sorted(set().union(*family))) if family else ()

    @lru_cache(maxsize=None)
    def value(alive: frozenset, dead: frozenset) -> int:
        if any(quorum <= alive for quorum in family):
            return 0
        if all(quorum & dead for quorum in family):
            return 0
        best = None
        for element in elements:
            if element in alive or element in dead:
                continue
            # Only probing elements that can still matter: those in some
            # not-yet-dead quorum.
            if not any(
                element in quorum and not (quorum & dead) for quorum in family
            ):
                continue
            outcome = 1 + max(
                value(alive | {element}, dead),
                value(alive, dead | {element}),
            )
            if best is None or outcome < best:
                best = outcome
            if best == 1:
                break
        if best is None:
            # No useful probe remains but the game is undecided — cannot
            # happen for a well-formed family, kept as a guard.
            return 0
        return best

    result = value(frozenset(), frozenset())
    value.cache_clear()
    return result
