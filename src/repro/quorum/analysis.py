"""Load analysis of quorum systems (Naor–Wool style).

A *strategy* is a probability distribution over a system's quorums; the
*load* of element ``p`` under a strategy is the probability that a
quorum containing ``p`` is picked, and the *system load* is the max over
elements, minimized over strategies.  Load is the quorum-world analogue
of the paper's bottleneck measure: it lower-bounds how evenly any access
scheme can spread work.

Two computations are provided:

* :func:`uniform_load` — the load under the uniform strategy over the
  enumerated family (what the rotating quorum counter approximates);
* :func:`optimal_load` — the exact LP optimum via :mod:`scipy.optimize`
  (minimize ``t`` s.t. the picking probabilities sum to 1 and each
  element's incidence mass is ≤ ``t``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.quorum.systems import QuorumSystem
from repro.sim.messages import ProcessorId


@dataclass(frozen=True, slots=True)
class LoadAnalysis:
    """Loads of a quorum system under some strategy."""

    system_load: float
    element_loads: dict[ProcessorId, float]
    strategy: tuple[float, ...]

    def hottest(self) -> tuple[ProcessorId, float]:
        """The most loaded element and its load."""
        pid = max(self.element_loads, key=lambda p: (self.element_loads[p], -p))
        return pid, self.element_loads[pid]


def uniform_load(system: QuorumSystem) -> LoadAnalysis:
    """Load profile when every enumerated quorum is equally likely."""
    family = list(system.quorums())
    count = len(family)
    loads: dict[ProcessorId, float] = {p: 0.0 for p in system.universe}
    for quorum in family:
        for element in quorum:
            loads[element] += 1.0 / count
    return LoadAnalysis(
        system_load=max(loads.values()),
        element_loads=loads,
        strategy=tuple([1.0 / count] * count),
    )


def optimal_load(system: QuorumSystem) -> LoadAnalysis:
    """LP-optimal load: the best any strategy can do for this family.

    Variables: one picking probability per quorum plus the bound ``t``.
    Minimize ``t`` subject to ``Σ_Q x_Q = 1``, ``x ≥ 0`` and, for every
    element ``p``, ``Σ_{Q ∋ p} x_Q − t ≤ 0``.
    """
    family = list(system.quorums())
    count = len(family)
    elements = sorted(system.universe)
    element_index = {p: i for i, p in enumerate(elements)}
    # Incidence matrix: rows = elements, columns = quorums.
    incidence = np.zeros((len(elements), count))
    for q_index, quorum in enumerate(family):
        for element in quorum:
            incidence[element_index[element], q_index] = 1.0
    # Objective: minimize t (the last variable).
    cost = np.zeros(count + 1)
    cost[-1] = 1.0
    # Σ_{Q∋p} x_Q - t <= 0 for all p.
    a_ub = np.hstack([incidence, -np.ones((len(elements), 1))])
    b_ub = np.zeros(len(elements))
    # Σ x_Q = 1.
    a_eq = np.zeros((1, count + 1))
    a_eq[0, :count] = 1.0
    b_eq = np.ones(1)
    bounds = [(0.0, None)] * count + [(0.0, None)]
    outcome = linprog(
        cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not outcome.success:  # pragma: no cover - scipy failure is exotic
        raise RuntimeError(f"load LP failed: {outcome.message}")
    strategy = tuple(float(x) for x in outcome.x[:count])
    loads = {
        p: float(incidence[element_index[p]] @ outcome.x[:count])
        for p in elements
    }
    return LoadAnalysis(
        system_load=float(outcome.x[-1]),
        element_loads=loads,
        strategy=strategy,
    )


def fault_tolerance(system: QuorumSystem, search_limit: int = 6) -> int:
    """Structural fault tolerance: crash failures the family survives.

    Equals ``|minimum hitting set of the quorum family| - 1``: an
    adversary that crashes a set intersecting *every* quorum kills the
    system, so the largest survivable crash count is one less than the
    smallest such set.  (Purely combinatorial — the execution model
    itself is failure-free, as in the paper.)

    Exact search over candidate sets up to *search_limit* elements,
    restricted to elements that actually appear in quorums; raises if
    the minimum hitting set is larger than the limit (exponential blow-up
    guard).
    """
    from itertools import combinations

    family = [set(q) for q in system.quorums()]
    if not family:
        return 0
    elements = sorted(set().union(*family))
    for size in range(1, min(search_limit, len(elements)) + 1):
        for candidate in combinations(elements, size):
            chosen = set(candidate)
            if all(chosen & quorum for quorum in family):
                return size - 1
    raise RuntimeError(
        f"minimum hitting set exceeds search limit {search_limit}; "
        "raise search_limit for this family"
    )


def capacity(system: QuorumSystem) -> float:
    """Naor–Wool capacity: sustainable accesses per step = 1 / load.

    Under the optimal strategy each element is busy a ``load`` fraction
    of the time, so the system completes ``1/load`` quorum accesses per
    unit of element work — the throughput face of the load coin.
    """
    return 1.0 / optimal_load(system).system_load


def naor_wool_floor(system: QuorumSystem) -> float:
    """The universal load lower bound ``max(1/c(S), c(S)/n)``.

    ``c(S)`` is the size of the smallest quorum; Naor & Wool showed the
    optimal load is at least ``1/c(S)`` and at least ``c(S)/n``, hence at
    least ``1/√n`` for every quorum system — the quorum-world echo of the
    paper's "some processor must be hit often".
    """
    smallest = min(len(q) for q in system.quorums())
    return max(1.0 / smallest, smallest / system.n)
