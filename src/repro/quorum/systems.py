"""Quorum systems: the intersection structures behind the Hot Spot Lemma.

"Some of the reasoning in our paper is closely related with that in
quorum systems.  A quorum system is a collection of sets of elements
where every two sets in the collection intersect" (paper §1).  The Hot
Spot Lemma *is* a quorum-intersection argument: the footprints of
successive operations form an online quorum system.

This module implements the classic constructions the paper cites the
lineage of — singleton (centralized), rotating majority (GB85-style
voting), Maekawa's √n grid, root-to-leaf tree paths, the wheel, and
Peleg–Wool crumbling walls — under one interface, with intersection
verification and load analysis (uniform and LP-optimal, in
:mod:`repro.quorum.analysis`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterator

from repro.errors import ConfigurationError
from repro.sim.messages import ProcessorId


class QuorumSystem(ABC):
    """A finite family of pairwise-intersecting subsets of ``1..n``."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"universe must be nonempty, got n={n}")
        self.n = n

    @property
    def universe(self) -> frozenset[ProcessorId]:
        """The ground set: processors ``1..n``."""
        return frozenset(range(1, self.n + 1))

    @abstractmethod
    def quorums(self) -> Iterator[frozenset[ProcessorId]]:
        """Yield every quorum of the (enumerated) family."""

    def quorum_count(self) -> int:
        """Number of quorums in the enumerated family."""
        return sum(1 for _ in self.quorums())

    def quorum_for(self, index: int) -> frozenset[ProcessorId]:
        """The ``index``-th quorum, cyclically — a rotating access strategy.

        Rotating through the family is how the quorum counter spreads
        load; subclasses with cheap indexed access override this.
        """
        count = self.quorum_count()
        target = index % count
        for position, quorum in enumerate(self.quorums()):
            if position == target:
                return quorum
        raise AssertionError("unreachable: index within count")

    def verify_intersection(self) -> bool:
        """Exhaustively check that every two quorums intersect."""
        family = list(self.quorums())
        return all(
            family[i] & family[j]
            for i in range(len(family))
            for j in range(i, len(family))
        )

    def degrees(self) -> dict[ProcessorId, int]:
        """How many quorums each element belongs to."""
        degree: dict[ProcessorId, int] = {p: 0 for p in self.universe}
        for quorum in self.quorums():
            for element in quorum:
                degree[element] += 1
        return degree

    def max_quorum_size(self) -> int:
        """Size of the largest quorum (drives per-op message cost)."""
        return max(len(q) for q in self.quorums())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"


class SingletonQuorum(QuorumSystem):
    """One quorum: a single center element — the centralized strawman.

    Load 1 on the center: the quorum-world picture of the paper's §1
    "store the value at one processor" counter.
    """

    def __init__(self, n: int, center: ProcessorId = 1) -> None:
        super().__init__(n)
        if not 1 <= center <= n:
            raise ConfigurationError(f"center {center} outside 1..{n}")
        self.center = center

    def quorums(self) -> Iterator[frozenset[ProcessorId]]:
        yield frozenset({self.center})

    def quorum_for(self, index: int) -> frozenset[ProcessorId]:
        return frozenset({self.center})


class RotatingMajorityQuorum(QuorumSystem):
    """The ``n`` contiguous windows of size ``⌊n/2⌋+1`` (majority voting).

    Any two majorities intersect; restricting to cyclic windows keeps the
    family linear in size while preserving the majority load profile
    (every element is in exactly ``⌊n/2⌋+1`` of the ``n`` windows).
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.window = n // 2 + 1

    def quorums(self) -> Iterator[frozenset[ProcessorId]]:
        for start in range(self.n):
            yield self.quorum_for(start)

    def quorum_count(self) -> int:
        return self.n

    def quorum_for(self, index: int) -> frozenset[ProcessorId]:
        start = index % self.n
        return frozenset(
            ((start + offset) % self.n) + 1 for offset in range(self.window)
        )


class MaekawaGrid(QuorumSystem):
    """Maekawa's √n construction: element's row ∪ element's column.

    Quorum size ``2√n − 1``; any two quorums intersect because any row
    meets any column.  The canonical "√N algorithm for mutual exclusion"
    the paper cites (Mae85).
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        side = math.isqrt(n)
        if side * side != n:
            raise ConfigurationError(
                f"Maekawa grid needs a square universe, got n={n}"
            )
        self.side = side

    def quorums(self) -> Iterator[frozenset[ProcessorId]]:
        for element in range(self.n):
            yield self.quorum_for(element)

    def quorum_count(self) -> int:
        return self.n

    def quorum_for(self, index: int) -> frozenset[ProcessorId]:
        element = index % self.n
        row, col = divmod(element, self.side)
        row_ids = {row * self.side + c + 1 for c in range(self.side)}
        col_ids = {r * self.side + col + 1 for r in range(self.side)}
        return frozenset(row_ids | col_ids)


class TreePathQuorum(QuorumSystem):
    """Root-to-leaf paths in a complete binary tree over ``1..n``.

    Any two paths share the root — a legal quorum system with tiny
    quorums (size ``⌈log₂ n⌉``) but, like the centralized counter, a
    designated hot spot: the root is in *every* quorum.  Included
    precisely because it shows small quorums do not imply small load,
    the distinction the paper's bottleneck measure captures.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.leaf_start = (n + 1) // 2  # heap layout: leaves are the tail

    def quorums(self) -> Iterator[frozenset[ProcessorId]]:
        for leaf in range(self.leaf_start, self.n):
            yield self.quorum_for(leaf - self.leaf_start)

    def quorum_count(self) -> int:
        return max(1, self.n - self.leaf_start)

    def quorum_for(self, index: int) -> frozenset[ProcessorId]:
        count = self.quorum_count()
        leaf = self.leaf_start + (index % count) + 1  # 1-based heap index
        path = set()
        node = leaf
        while node >= 1:
            path.add(node)
            node //= 2
        return frozenset(path)


class WheelQuorum(QuorumSystem):
    """The wheel: quorums ``{hub, spoke}`` for each spoke, plus the rim.

    The hub sits in all but one quorum (near-centralized); the rim quorum
    (all spokes) is what lets the hub be bypassed once.  A standard
    example of extreme load asymmetry with minimal quorums.
    """

    def __init__(self, n: int, hub: ProcessorId = 1) -> None:
        super().__init__(n)
        if n < 2:
            raise ConfigurationError("a wheel needs at least two elements")
        if not 1 <= hub <= n:
            raise ConfigurationError(f"hub {hub} outside 1..{n}")
        self.hub = hub

    def _spokes(self) -> list[ProcessorId]:
        return [p for p in range(1, self.n + 1) if p != self.hub]

    def quorums(self) -> Iterator[frozenset[ProcessorId]]:
        spokes = self._spokes()
        for spoke in spokes:
            yield frozenset({self.hub, spoke})
        yield frozenset(spokes)

    def quorum_count(self) -> int:
        return self.n  # n-1 spoke quorums + the rim

    def quorum_for(self, index: int) -> frozenset[ProcessorId]:
        spokes = self._spokes()
        position = index % self.n
        if position < len(spokes):
            return frozenset({self.hub, spokes[position]})
        return frozenset(spokes)


class CrumblingWall(QuorumSystem):
    """Peleg–Wool crumbling walls (PW95), row-based quorums.

    The universe is laid out in rows; a quorum is one full row plus one
    element from every row *below* it.  Two quorums intersect: if they
    use the same full row they share it; otherwise the lower full row
    contributes an element to the higher quorum's "one per row below"
    tail.  Row widths are a parameter; wider-then-narrower walls realize
    the small-load constructions of the paper's related work.
    """

    def __init__(self, n: int, row_widths: list[int] | None = None) -> None:
        super().__init__(n)
        if row_widths is None:
            row_widths = self._default_rows(n)
        if sum(row_widths) != n:
            raise ConfigurationError(
                f"row widths {row_widths} must sum to n={n}"
            )
        if any(width < 1 for width in row_widths):
            raise ConfigurationError("every row needs at least one element")
        self.row_widths = list(row_widths)
        self._rows: list[list[ProcessorId]] = []
        next_id = 1
        for width in self.row_widths:
            self._rows.append(list(range(next_id, next_id + width)))
            next_id += width

    @staticmethod
    def _default_rows(n: int) -> list[int]:
        """Rows of width ≈ √n: a balanced wall."""
        width = max(1, math.isqrt(n))
        rows: list[int] = []
        left = n
        while left > 0:
            take = min(width, left)
            rows.append(take)
            left -= take
        return rows

    def quorums(self) -> Iterator[frozenset[ProcessorId]]:
        for index in range(self.quorum_count()):
            yield self.quorum_for(index)

    def quorum_count(self) -> int:
        # One canonical quorum per (row, rotation) pair keeps the family
        # small while exercising every element.
        return sum(max(1, len(row)) for row in self._rows[:-1]) or 1

    def quorum_for(self, index: int) -> frozenset[ProcessorId]:
        count = self.quorum_count()
        target = index % count
        cursor = 0
        for row_index, row in enumerate(self._rows[:-1]):
            slots = max(1, len(row))
            if target < cursor + slots:
                rotation = target - cursor
                quorum = set(row)
                for below in self._rows[row_index + 1 :]:
                    quorum.add(below[rotation % len(below)])
                return frozenset(quorum)
            cursor += slots
        # Single-row wall: the row itself is the only quorum.
        return frozenset(self._rows[0])
