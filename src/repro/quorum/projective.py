"""Finite-projective-plane quorums: the load-optimal construction.

The lines of the projective plane PG(2, q) over GF(q) (q prime) form a
quorum system over ``n = q² + q + 1`` points in which

* every line (quorum) has exactly ``q + 1 ≈ √n`` points,
* any two lines meet in exactly one point (intersection), and
* every point lies on exactly ``q + 1`` lines (perfect balance),

so the uniform strategy achieves load ``(q+1)/(q²+q+1) ≈ 1/√n`` — the
Naor–Wool floor, exactly.  This is the construction the quorum
literature the paper cites (Maekawa's √N idea in its ideal form) and the
E8 benchmark's best-possible row.

Implementation: points and lines are the nonzero triples over GF(q) up
to scaling, normalized so the first nonzero coordinate is 1; point ``P``
lies on line ``L`` iff ``P·L ≡ 0 (mod q)``.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigurationError
from repro.quorum.systems import QuorumSystem
from repro.sim.messages import ProcessorId


def _is_prime(q: int) -> bool:
    if q < 2:
        return False
    factor = 2
    while factor * factor <= q:
        if q % factor == 0:
            return False
        factor += 1
    return True


def _normalized_triples(q: int) -> list[tuple[int, int, int]]:
    """Projective points of PG(2, q): first nonzero coordinate = 1."""
    triples: list[tuple[int, int, int]] = []
    triples.extend((1, b, c) for b in range(q) for c in range(q))
    triples.extend((0, 1, c) for c in range(q))
    triples.append((0, 0, 1))
    return triples


class ProjectivePlaneQuorum(QuorumSystem):
    """Lines of PG(2, q) as quorums over ``n = q² + q + 1`` elements.

    Args:
        q: the plane's order; must be prime (prime powers would need
            full GF(pᵏ) arithmetic, deliberately out of scope).
    """

    def __init__(self, q: int) -> None:
        if not _is_prime(q):
            raise ConfigurationError(
                f"projective plane order must be prime, got {q}"
            )
        self.q = q
        n = q * q + q + 1
        super().__init__(n)
        points = _normalized_triples(q)
        self._point_id = {point: index + 1 for index, point in enumerate(points)}
        # Lines have the same coordinate representation as points.
        self._lines: list[frozenset[ProcessorId]] = []
        for line in points:
            members = frozenset(
                self._point_id[point]
                for point in points
                if self._dot(point, line) == 0
            )
            self._lines.append(members)

    def _dot(self, point: tuple[int, int, int], line: tuple[int, int, int]) -> int:
        return (
            point[0] * line[0] + point[1] * line[1] + point[2] * line[2]
        ) % self.q

    def quorums(self) -> Iterator[frozenset[ProcessorId]]:
        yield from self._lines

    def quorum_count(self) -> int:
        return len(self._lines)

    def quorum_for(self, index: int) -> frozenset[ProcessorId]:
        return self._lines[index % len(self._lines)]

    def __repr__(self) -> str:
        return f"ProjectivePlaneQuorum(q={self.q}, n={self.n})"
