"""Execution traces: the exact ledger of every delivered message.

The trace is the single source of truth for the paper's quantities:

* the *message load* ``m_p`` of processor ``p`` — how many messages ``p``
  sent or received (§3);
* the *footprint* ``I_p`` of an ``inc`` — the processors that sent or
  received a message during that operation (§2, used by the Hot Spot
  Lemma);
* the per-operation message lists that the communication-DAG and
  communication-list constructions of §3 consume.

A trace is append-only during the simulation and read-only afterwards.
All analysis (loads, bottleneck, DAGs, lemma checkers) happens on the
trace, never inside protocol code, so no counter implementation can skew
its own accounting.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Iterator

from repro.sim.messages import NO_OP, MessageRecord, OpIndex, ProcessorId


class Trace:
    """Ordered collection of delivered-message records with indexes.

    Records are stored in delivery order.  Secondary indexes (per-processor
    load, per-operation record lists, per-operation footprints) are kept
    incrementally so that post-run analysis of large simulations does not
    re-scan the record list per query.
    """

    def __init__(self) -> None:
        self._records: list[MessageRecord] = []
        self._load: Counter[ProcessorId] = Counter()
        self._sent: Counter[ProcessorId] = Counter()
        self._received: Counter[ProcessorId] = Counter()
        self._by_op: defaultdict[OpIndex, list[MessageRecord]] = defaultdict(list)
        self._footprints: defaultdict[OpIndex, set[ProcessorId]] = defaultdict(set)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, record: MessageRecord) -> None:
        """Append one delivered message and update all indexes."""
        self._records.append(record)
        self._load[record.sender] += 1
        self._load[record.receiver] += 1
        self._sent[record.sender] += 1
        self._received[record.receiver] += 1
        self._by_op[record.op_index].append(record)
        self._footprints[record.op_index].add(record.sender)
        self._footprints[record.op_index].add(record.receiver)

    # ------------------------------------------------------------------
    # Whole-trace views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[MessageRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[MessageRecord]:
        """All records in delivery order (do not mutate)."""
        return self._records

    @property
    def total_messages(self) -> int:
        """Total number of messages delivered."""
        return len(self._records)

    # ------------------------------------------------------------------
    # Loads (the paper's m_p)
    # ------------------------------------------------------------------
    def load(self, pid: ProcessorId) -> int:
        """Messages sent plus received by *pid* — the paper's ``m_p``."""
        return self._load[pid]

    def sent_by(self, pid: ProcessorId) -> int:
        """Messages sent by *pid*."""
        return self._sent[pid]

    def received_by(self, pid: ProcessorId) -> int:
        """Messages received by *pid*."""
        return self._received[pid]

    def loads(self) -> dict[ProcessorId, int]:
        """Mapping of processor id to load, for processors with load > 0."""
        return dict(self._load)

    def bottleneck(self) -> tuple[ProcessorId, int]:
        """The paper's bottleneck processor: ``argmax_p m_p`` and its load.

        Returns ``(0, 0)`` for an empty trace.  Ties are broken toward the
        smallest processor id so results are deterministic.
        """
        if not self._load:
            return (0, 0)
        best_load = max(self._load.values())
        best_pid = min(p for p, m in self._load.items() if m == best_load)
        return (best_pid, best_load)

    # ------------------------------------------------------------------
    # Per-operation views
    # ------------------------------------------------------------------
    def op_indices(self) -> list[OpIndex]:
        """Sorted list of operation indices that produced traffic."""
        return sorted(i for i in self._by_op if i != NO_OP)

    def records_for_op(self, op_index: OpIndex) -> list[MessageRecord]:
        """Records attributed to operation *op_index*, in delivery order."""
        return list(self._by_op.get(op_index, []))

    def messages_for_op(self, op_index: OpIndex) -> int:
        """Number of messages attributed to operation *op_index*."""
        return len(self._by_op.get(op_index, []))

    def footprint(self, op_index: OpIndex) -> frozenset[ProcessorId]:
        """The paper's ``I_p``: processors touched by operation *op_index*.

        Includes every processor that sent or received at least one message
        during the operation (the initiator appears as soon as it sends its
        first message; an operation answered without any messages has an
        empty footprint).
        """
        return frozenset(self._footprints.get(op_index, frozenset()))

    def load_within_op(self, op_index: OpIndex) -> dict[ProcessorId, int]:
        """Per-processor message load restricted to one operation."""
        load: Counter[ProcessorId] = Counter()
        for record in self._by_op.get(op_index, []):
            load[record.sender] += 1
            load[record.receiver] += 1
        return dict(load)

    def load_snapshot(self, up_to_op: OpIndex) -> dict[ProcessorId, int]:
        """Loads counting only operations with index < *up_to_op*.

        This is the paper's ``m(p)`` "before the i-th inc operation" used by
        the weight function in the Lower Bound Theorem.  Untracked traffic
        (``NO_OP``) is excluded.
        """
        load: Counter[ProcessorId] = Counter()
        for op_index, records in self._by_op.items():
            if op_index == NO_OP or op_index >= up_to_op:
                continue
            for record in records:
                load[record.sender] += 1
                load[record.receiver] += 1
        return dict(load)


def merge_loads(traces: Iterable[Trace]) -> dict[ProcessorId, int]:
    """Combine per-processor loads across several traces."""
    total: Counter[ProcessorId] = Counter()
    for trace in traces:
        total.update(trace.loads())
    return dict(total)
