"""Execution traces: the ledger of delivered messages, at a chosen fidelity.

The trace is the single source of truth for the paper's quantities:

* the *message load* ``m_p`` of processor ``p`` — how many messages ``p``
  sent or received (§3);
* the *footprint* ``I_p`` of an ``inc`` — the processors that sent or
  received a message during that operation (§2, used by the Hot Spot
  Lemma);
* the per-operation message lists that the communication-DAG and
  communication-list constructions of §3 consume.

A trace is append-only during the simulation and read-only afterwards.
All analysis (loads, bottleneck, DAGs, lemma checkers) happens on the
trace, never inside protocol code, so no counter implementation can skew
its own accounting.

Tracing is tiered by :class:`TraceLevel` because record keeping dominates
the simulator's per-message cost at scale:

* ``FULL`` — every delivered message becomes a
  :class:`~repro.sim.messages.MessageRecord`, with per-operation record
  lists.  Required by DAG/list reconstruction, latency profiles,
  linearizability checks, ``load_snapshot`` and the lower-bound
  adversaries.
* ``LOADS`` — columnar counters only: per-processor sent/received (hence
  ``m_p``), per-operation message counts and footprints, total messages.
  No record list.  Sufficient for every load/bottleneck measurement.
* ``OFF`` — nothing is kept; the simulator runs at full speed as a pure
  executor.

Querying a view the level did not capture raises
:class:`~repro.errors.TraceCapabilityError` naming the level required.
Under ``LOADS``, untracked traffic (``NO_OP``) still counts toward loads
and totals but is not entered in the per-operation views — by definition
it belongs to no tracked operation.
"""

from __future__ import annotations

import enum
import hashlib
from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import TraceCapabilityError
from repro.sim.messages import NO_OP, MessageRecord, OpIndex, ProcessorId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.faults import FaultRecord


class TraceLevel(enum.Enum):
    """How much of an execution the trace retains (fidelity vs speed)."""

    FULL = "full"
    """Keep every delivered-message record plus all columnar counters."""

    LOADS = "loads"
    """Keep columnar counters only: loads, per-op counts, footprints."""

    OFF = "off"
    """Keep nothing; the trace answers no queries."""

    @classmethod
    def coerce(cls, value: "TraceLevel | str") -> "TraceLevel":
        """Accept a :class:`TraceLevel` or its case-insensitive name/value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown trace level {value!r}; "
                f"expected one of {[level.value for level in cls]}"
            ) from None


class Trace:
    """Delivered-message ledger with incrementally maintained indexes.

    At ``FULL`` level records are stored in delivery order with secondary
    indexes (per-processor load, per-operation record lists, per-operation
    footprints) kept incrementally, so post-run analysis of large
    simulations does not re-scan the record list per query.  At ``LOADS``
    level only the columnar counters exist; at ``OFF`` nothing does.
    """

    def __init__(self, level: TraceLevel = TraceLevel.FULL) -> None:
        self._level = level
        self._total = 0
        self._records: list[MessageRecord] = []
        self._sent: defaultdict[ProcessorId, int] = defaultdict(int)
        self._received: defaultdict[ProcessorId, int] = defaultdict(int)
        self._op_counts: defaultdict[OpIndex, int] = defaultdict(int)
        self._by_op: defaultdict[OpIndex, list[MessageRecord]] = defaultdict(list)
        self._footprints: dict[OpIndex, set[ProcessorId]] = {}
        self._faults: list["FaultRecord"] = []
        self._fault_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Level introspection
    # ------------------------------------------------------------------
    @property
    def level(self) -> TraceLevel:
        """The fidelity this trace was captured at."""
        return self._level

    @property
    def keeps_records(self) -> bool:
        """True if per-message records are retained (``FULL`` only)."""
        return self._level is TraceLevel.FULL

    @property
    def keeps_loads(self) -> bool:
        """True if load counters are retained (``FULL`` or ``LOADS``)."""
        return self._level is not TraceLevel.OFF

    def _require_records(self, what: str) -> None:
        if self._level is not TraceLevel.FULL:
            raise TraceCapabilityError(
                f"{what} needs per-message records, but this trace was "
                f"captured at TraceLevel.{self._level.name}; rerun the "
                "simulation with trace_level=TraceLevel.FULL"
            )

    def _require_loads(self, what: str) -> None:
        if self._level is TraceLevel.OFF:
            raise TraceCapabilityError(
                f"{what} needs load counters, but this trace was captured "
                "at TraceLevel.OFF; rerun the simulation with "
                "trace_level=TraceLevel.LOADS or TraceLevel.FULL"
            )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, record: MessageRecord) -> None:
        """Append one delivered message, updating the level's indexes."""
        level = self._level
        if level is not TraceLevel.FULL:
            if level is TraceLevel.LOADS:
                self.count(record.sender, record.receiver, record.op_index)
            return
        self._total += 1
        self._sent[record.sender] += 1
        self._received[record.receiver] += 1
        op_index = record.op_index
        self._records.append(record)
        self._by_op[op_index].append(record)
        self._op_counts[op_index] += 1
        footprint = self._footprints.get(op_index)
        if footprint is None:
            self._footprints[op_index] = {record.sender, record.receiver}
        else:
            footprint.add(record.sender)
            footprint.add(record.receiver)

    def count(
        self, sender: ProcessorId, receiver: ProcessorId, op_index: OpIndex
    ) -> None:
        """Count one delivered message without materializing a record.

        This is the ``LOADS`` fast path used by the network's delivery
        loop: columnar counter updates only.  ``NO_OP`` traffic counts
        toward loads and totals but not the per-operation views.
        """
        self._total += 1
        self._sent[sender] += 1
        self._received[receiver] += 1
        if op_index != NO_OP:
            self._op_counts[op_index] += 1
            footprint = self._footprints.get(op_index)
            if footprint is None:
                self._footprints[op_index] = {sender, receiver}
            else:
                footprint.add(sender)
                footprint.add(receiver)

    def record_fault(self, record: "FaultRecord") -> None:
        """Record one injected fault as a first-class trace event.

        Called by the network when an installed
        :class:`~repro.sim.faults.FaultPlan` touches a message.  Kind
        tallies are kept at ``FULL`` and ``LOADS`` (they are load-class
        bookkeeping, one dict bump per fault); the record stream itself
        only at ``FULL``.  At ``OFF`` nothing is kept — the plan's own
        ledger (:attr:`FaultPlan.events`) remains available.
        """
        level = self._level
        if level is TraceLevel.OFF:
            return
        self._fault_counts[record.kind] = (
            self._fault_counts.get(record.kind, 0) + 1
        )
        if level is TraceLevel.FULL:
            self._faults.append(record)

    # ------------------------------------------------------------------
    # Whole-trace views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._require_loads("len(trace)")
        return self._total

    def __iter__(self) -> Iterator[MessageRecord]:
        self._require_records("iterating a trace")
        return iter(self._records)

    @property
    def records(self) -> list[MessageRecord]:
        """All records in delivery order (do not mutate); ``FULL`` only."""
        self._require_records("Trace.records")
        return self._records

    @property
    def total_messages(self) -> int:
        """Total number of messages delivered."""
        self._require_loads("Trace.total_messages")
        return self._total

    def fingerprint(self) -> str:
        """Hex digest of the whole record stream (``FULL`` only).

        Two executions are trace-identical iff their fingerprints match
        — the equivalence tests and the CI fast-vs-compat identity check
        compare executions through this single value.  Hashes every
        field of every record in delivery order.
        """
        self._require_records("Trace.fingerprint")
        digest = hashlib.sha256()
        for record in self._records:
            digest.update(repr(record).encode())
            digest.update(b"\n")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Fault views (populated only when a FaultPlan was installed)
    # ------------------------------------------------------------------
    @property
    def fault_events(self) -> list["FaultRecord"]:
        """Injected faults in injection order (``FULL`` only; do not
        mutate).  Empty on failure-free runs."""
        self._require_records("Trace.fault_events")
        return self._faults

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault tallies by kind (a fresh copy).

        Empty on failure-free runs.  Available at ``FULL`` and ``LOADS``.
        """
        self._require_loads("Trace.fault_counts")
        return dict(self._fault_counts)

    @property
    def total_faults(self) -> int:
        """Total injected faults recorded by this trace."""
        self._require_loads("Trace.total_faults")
        return sum(self._fault_counts.values())

    # ------------------------------------------------------------------
    # Loads (the paper's m_p)
    # ------------------------------------------------------------------
    def load(self, pid: ProcessorId) -> int:
        """Messages sent plus received by *pid* — the paper's ``m_p``."""
        self._require_loads("Trace.load")
        return self._sent.get(pid, 0) + self._received.get(pid, 0)

    def sent_by(self, pid: ProcessorId) -> int:
        """Messages sent by *pid*."""
        self._require_loads("Trace.sent_by")
        return self._sent.get(pid, 0)

    def received_by(self, pid: ProcessorId) -> int:
        """Messages received by *pid*."""
        self._require_loads("Trace.received_by")
        return self._received.get(pid, 0)

    def loads(self) -> dict[ProcessorId, int]:
        """Mapping of processor id to load, for processors with load > 0."""
        self._require_loads("Trace.loads")
        merged = dict(self._sent)
        get = merged.get
        for pid, count in self._received.items():
            merged[pid] = get(pid, 0) + count
        return merged

    def bottleneck(self) -> tuple[ProcessorId, int]:
        """The paper's bottleneck processor: ``argmax_p m_p`` and its load.

        Returns ``(0, 0)`` for an empty trace.  Ties are broken toward the
        smallest processor id so results are deterministic.
        """
        loads = self.loads()
        if not loads:
            return (0, 0)
        best_load = max(loads.values())
        best_pid = min(p for p, m in loads.items() if m == best_load)
        return (best_pid, best_load)

    # ------------------------------------------------------------------
    # Per-operation views
    # ------------------------------------------------------------------
    def op_indices(self) -> list[OpIndex]:
        """Sorted list of operation indices that produced traffic."""
        self._require_loads("Trace.op_indices")
        return sorted(i for i in self._op_counts if i != NO_OP)

    def records_for_op(self, op_index: OpIndex) -> list[MessageRecord]:
        """Records attributed to operation *op_index*, in delivery order."""
        self._require_records("Trace.records_for_op")
        return list(self._by_op.get(op_index, []))

    def messages_for_op(self, op_index: OpIndex) -> int:
        """Number of messages attributed to operation *op_index*."""
        self._require_loads("Trace.messages_for_op")
        return self._op_counts.get(op_index, 0)

    def footprint(self, op_index: OpIndex) -> frozenset[ProcessorId]:
        """The paper's ``I_p``: processors touched by operation *op_index*.

        Includes every processor that sent or received at least one message
        during the operation (the initiator appears as soon as it sends its
        first message; an operation answered without any messages has an
        empty footprint).
        """
        self._require_loads("Trace.footprint")
        return frozenset(self._footprints.get(op_index, frozenset()))

    def load_within_op(self, op_index: OpIndex) -> dict[ProcessorId, int]:
        """Per-processor message load restricted to one operation."""
        self._require_records("Trace.load_within_op")
        load: Counter[ProcessorId] = Counter()
        for record in self._by_op.get(op_index, []):
            load[record.sender] += 1
            load[record.receiver] += 1
        return dict(load)

    def load_snapshot(self, up_to_op: OpIndex) -> dict[ProcessorId, int]:
        """Loads counting only operations with index < *up_to_op*.

        This is the paper's ``m(p)`` "before the i-th inc operation" used by
        the weight function in the Lower Bound Theorem.  Untracked traffic
        (``NO_OP``) is excluded.
        """
        self._require_records("Trace.load_snapshot")
        load: Counter[ProcessorId] = Counter()
        for op_index, records in self._by_op.items():
            if op_index == NO_OP or op_index >= up_to_op:
                continue
            for record in records:
                load[record.sender] += 1
                load[record.receiver] += 1
        return dict(load)


def merge_loads(traces: Iterable[Trace]) -> dict[ProcessorId, int]:
    """Combine per-processor loads across several traces."""
    total: Counter[ProcessorId] = Counter()
    for trace in traces:
        total.update(trace.loads())
    return dict(total)
