"""A heartbeat-based eventually-perfect failure detector (◊P).

The paper's model has no failures, so it needs no detector.  Once
:class:`~repro.sim.faults.CrashRule` windows can take processors down,
any recovery mechanism needs to *notice* — and in an asynchronous system
it can only do so unreliably.  This module implements the classic
eventually-perfect detector abstraction of Chandra & Toueg over the
simulator's own message layer:

* every monitored processor emits a ``fd.heartbeat`` message to a hub
  processor once per ``period`` of simulated time;
* the hub tracks the last heartbeat *arrival* per processor and suspects
  any processor silent for longer than ``timeout``;
* a heartbeat arriving from a suspected processor clears the suspicion
  (a ``restore``), which is what makes the detector eventually perfect
  rather than perfect: transient slowness can cause false suspicions,
  but they are always corrected.

Heartbeats are ordinary :meth:`~repro.sim.network.Network.send` traffic
— the sender is the monitored pid itself — so the installed
:class:`~repro.sim.faults.FaultPlan` applies to them like any protocol
message: a crash window swallows the crashed processor's heartbeats,
drops can eat individual beats, partitions can isolate the hub.  That is
the whole design: the detector learns about crashes *only* through
silence on the wire, never by peeking at the fault plan.

Determinism and quiescence: the detector owns no randomness, and its
ticks are scheduled only up to a finite monitoring ``horizon`` (no
recurring timers — an eternally ticking detector would never let
:meth:`~repro.sim.network.Network.run_until_quiescent` terminate).  The
horizon is chosen by the caller to cover every crash window of interest;
:class:`~repro.sim.recovery.RecoveryManager` derives it from the fault
plan.

Suspicions and restores are first-class events: each becomes a
:class:`~repro.sim.faults.FaultRecord` (kinds ``"suspect"`` /
``"restore"``) recorded in the trace at ``LOADS``\\ + levels, appended to
the detector's own ledger at every level, and fanned out to registered
callbacks — which is how role failover is triggered.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.sim.faults import FaultRecord
from repro.sim.messages import NO_OP, Message, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

__all__ = ["FailureDetector", "HEARTBEAT_KIND"]

HEARTBEAT_KIND = "fd.heartbeat"
"""Message kind of the periodic I-am-alive beacon."""

SuspicionCallback = Callable[[ProcessorId, float], None]
"""Called as ``callback(pid, time)`` on suspicion / restore."""


class _FailureDetectorHub(Processor):
    """The processor that collects heartbeats.

    Registered on the raw network under a fresh id above every counter
    processor, so its mailbox exists without disturbing the counter's
    topology.  All logic lives in the owning :class:`FailureDetector`;
    the hub only forwards arrivals.
    """

    def __init__(self, pid: ProcessorId, detector: "FailureDetector") -> None:
        super().__init__(pid)
        self._detector = detector

    def on_message(self, message: Message) -> None:
        if message[2] == HEARTBEAT_KIND:
            self._detector._on_heartbeat(message[0])


class FailureDetector:
    """Eventually-perfect failure detection over simulated heartbeats.

    Args:
        network: the *raw* (possibly faulty) network — heartbeats must
            face the fault plan directly, not ride a reliable transport
            that would retransmit them and defeat crash detection.
        monitored: processor ids to watch (typically the counter's
            critical role holders, not every client).
        period: simulated time between heartbeats.
        timeout: silence (since last heartbeat *arrival*) after which a
            processor is suspected.  Must exceed ``period`` plus the
            policy's typical delay or everything is suspected at once.
        horizon: monitoring stops after this simulated time — the last
            tick is the first one past it.  Keeps runs quiescent.
        hub_pid: id for the hub processor; default is one above the
            highest currently registered id.

    Use :meth:`start` after every counter processor is registered (the
    default ``hub_pid`` is derived from the registration table), then
    run the workload normally.
    """

    def __init__(
        self,
        network: Network,
        monitored: Sequence[ProcessorId],
        *,
        period: float = 5.0,
        timeout: float = 15.0,
        horizon: float = 200.0,
        hub_pid: ProcessorId | None = None,
    ) -> None:
        if not monitored:
            raise ConfigurationError("failure detector needs monitored pids")
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        if timeout <= period:
            raise ConfigurationError(
                f"timeout must exceed period, got timeout={timeout} <= "
                f"period={period}"
            )
        if horizon <= 0:
            raise ConfigurationError(
                f"horizon must be positive, got {horizon}"
            )
        self._network = network
        self._monitored = tuple(dict.fromkeys(monitored))
        self._period = float(period)
        self._timeout = float(timeout)
        self._horizon = float(horizon)
        self._hub_pid = hub_pid
        self._hub: _FailureDetectorHub | None = None
        self._last_heard: dict[ProcessorId, float] = {}
        self._suspected: set[ProcessorId] = set()
        self._events: list[FaultRecord] = []
        self._on_suspect: list[SuspicionCallback] = []
        self._on_restore: list[SuspicionCallback] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_suspect_callback(self, callback: SuspicionCallback) -> None:
        """Run ``callback(pid, time)`` whenever *pid* becomes suspected."""
        self._on_suspect.append(callback)

    def add_restore_callback(self, callback: SuspicionCallback) -> None:
        """Run ``callback(pid, time)`` whenever a suspicion is cleared."""
        self._on_restore.append(callback)

    def start(self) -> None:
        """Register the hub and schedule monitoring up to the horizon."""
        if self._hub is not None:
            raise ConfigurationError("failure detector already started")
        hub_pid = self._hub_pid
        if hub_pid is None:
            hub_pid = max(self._network.registered_ids(), default=0) + 1
            self._hub_pid = hub_pid
        self._hub = _FailureDetectorHub(hub_pid, self)
        self._network.register(self._hub)
        now = self._network.now
        for pid in self._monitored:
            # Grace period: everyone counts as heard-from at start, so
            # nobody is suspected before a full timeout of real silence.
            self._last_heard[pid] = now
        self._network.inject(self._tick)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hub_pid(self) -> ProcessorId | None:
        """The hub's processor id (``None`` before :meth:`start`)."""
        return self._hub_pid

    @property
    def monitored(self) -> tuple[ProcessorId, ...]:
        """The watched processor ids."""
        return self._monitored

    @property
    def period(self) -> float:
        """Simulated time between heartbeats."""
        return self._period

    @property
    def timeout(self) -> float:
        """Silence threshold for suspicion."""
        return self._timeout

    @property
    def horizon(self) -> float:
        """Simulated time monitoring stops."""
        return self._horizon

    @property
    def suspected(self) -> frozenset[ProcessorId]:
        """Currently suspected processors."""
        return frozenset(self._suspected)

    @property
    def events(self) -> list[FaultRecord]:
        """Suspicions and restores, in order (do not mutate)."""
        return self._events

    def is_suspected(self, pid: ProcessorId) -> bool:
        """True while *pid* is currently suspected."""
        return pid in self._suspected

    def suspicion_count(self) -> int:
        """Total suspicion events (restores not subtracted)."""
        return sum(1 for event in self._events if event.kind == "suspect")

    # ------------------------------------------------------------------
    # Mechanics
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        """One monitoring step: check timeouts, beat, reschedule."""
        now = self._network.now
        for pid in self._monitored:
            if pid in self._suspected:
                continue
            if now - self._last_heard[pid] > self._timeout:
                self._suspected.add(pid)
                self._record("suspect", pid, now)
                for callback in self._on_suspect:
                    callback(pid, now)
        hub_pid = self._hub_pid
        for pid in self._monitored:
            # The monitored processor is the sender, so its crash window
            # swallows the beat — silence is how crashes are detected.
            self._network.send(pid, hub_pid, HEARTBEAT_KIND, {})
        if now + self._period <= self._horizon:
            self._network.inject(self._tick, delay=self._period)

    def _on_heartbeat(self, pid: ProcessorId) -> None:
        if pid not in self._last_heard:
            return  # not monitored; stray traffic
        now = self._network.now
        self._last_heard[pid] = now
        if pid in self._suspected:
            self._suspected.discard(pid)
            self._record("restore", pid, now)
            for callback in self._on_restore:
                callback(pid, now)

    def _record(self, kind: str, pid: ProcessorId, time: float) -> None:
        record = FaultRecord(
            time=time,
            kind=kind,
            sender=pid,
            receiver=self._hub_pid or 0,
            op_index=NO_OP,
            uid=-1,
            detail=f"silence > {self._timeout:g}" if kind == "suspect" else "",
        )
        self._events.append(record)
        self._network.trace.record_fault(record)
