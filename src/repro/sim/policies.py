"""Message-delivery policies: how long a message stays in flight.

The paper's model only requires that every message arrives "an unbounded
but finite amount of time after it has been sent" (§2).  The *counts* of
messages — the quantity the lower bound is about — are independent of
delays, but delays do decide the interleaving of concurrent traffic, so the
test suite runs every protocol under several policies to check that message
loads are delay-invariant.

A policy is a single method object: :meth:`DeliveryPolicy.delay` returns
the in-flight time for a message.  Policies may be stateful (the random
policy owns a seeded generator) but must be deterministic given their
constructor arguments, so simulations replay exactly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.sim.messages import Message


class DeliveryPolicy(ABC):
    """Strategy deciding the network delay of each message."""

    constant_delay: float | None = None
    """If not ``None``, every message takes exactly this delay and the
    network may skip the per-message :meth:`delay` call entirely (the
    simulator's send fast path).  Policies whose delay depends on the
    message or on internal state must leave this ``None``."""

    @abstractmethod
    def delay(self, message: Message) -> float:
        """Return the in-flight delay (> 0) for *message*."""

    def fork(self) -> "DeliveryPolicy":
        """Return a fresh, equivalently configured policy.

        Used when a harness runs several simulations that must not share
        generator state.  Stateless policies may return ``self``.
        """
        return self


class UnitDelay(DeliveryPolicy):
    """Every message takes exactly one time unit.

    This is the synchronous-looking schedule most papers use for time
    complexity; with tie-breaking by send order it yields FIFO channels.
    """

    constant_delay = 1.0

    def delay(self, message: Message) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "UnitDelay()"


class RandomDelay(DeliveryPolicy):
    """Uniformly random delay in ``[low, high]`` from a seeded generator.

    Distinct messages get independent delays, so channels are *not* FIFO —
    exactly the asynchrony the paper's model permits.
    """

    def __init__(self, seed: int = 0, low: float = 0.5, high: float = 10.0) -> None:
        if low <= 0 or high < low:
            raise ValueError(f"need 0 < low <= high, got low={low} high={high}")
        self._seed = seed
        self._low = low
        self._high = high
        self._rng = random.Random(seed)

    def delay(self, message: Message) -> float:
        return self._rng.uniform(self._low, self._high)

    def fork(self) -> "RandomDelay":
        return RandomDelay(seed=self._seed, low=self._low, high=self._high)

    def __repr__(self) -> str:
        return f"RandomDelay(seed={self._seed}, low={self._low}, high={self._high})"


class FifoRandomDelay(DeliveryPolicy):
    """Random delays with per-channel FIFO order preserved.

    Each (sender, receiver) channel draws a random delay but never lets
    a message overtake an earlier one on the same channel — the classic
    reliable-FIFO-link model.  Cross-channel reordering (the asynchrony
    the paper's model allows) still happens freely.
    """

    def __init__(self, seed: int = 0, low: float = 0.5, high: float = 10.0) -> None:
        if low <= 0 or high < low:
            raise ValueError(f"need 0 < low <= high, got low={low} high={high}")
        self._seed = seed
        self._low = low
        self._high = high
        self._rng = random.Random(seed)
        self._last_delivery: dict[tuple[int, int], float] = {}

    def delay(self, message: Message) -> float:
        drawn = self._rng.uniform(self._low, self._high)
        channel = (message.sender, message.receiver)
        delivery = message.send_time + drawn
        floor = self._last_delivery.get(channel)
        if floor is not None and delivery <= floor:
            delivery = floor + 1e-9
        self._last_delivery[channel] = delivery
        return delivery - message.send_time

    def fork(self) -> "FifoRandomDelay":
        return FifoRandomDelay(seed=self._seed, low=self._low, high=self._high)

    def __repr__(self) -> str:
        return (
            f"FifoRandomDelay(seed={self._seed}, low={self._low}, "
            f"high={self._high})"
        )


class SkewedDelay(DeliveryPolicy):
    """Adversarially skewed delays: some sender/receiver pairs are slow.

    Messages whose ``(sender + receiver)`` parity matches ``slow_parity``
    take ``slow`` time units, the rest take one.  This is a cheap, fully
    deterministic adversary that massively reorders concurrent traffic and
    is useful for shaking out protocols that silently assume FIFO global
    ordering.
    """

    def __init__(self, slow: float = 50.0, slow_parity: int = 0) -> None:
        if slow <= 0:
            raise ValueError(f"slow delay must be positive, got {slow}")
        self._slow = slow
        self._slow_parity = slow_parity % 2

    def delay(self, message: Message) -> float:
        if (message.sender + message.receiver) % 2 == self._slow_parity:
            return self._slow
        return 1.0

    def __repr__(self) -> str:
        return f"SkewedDelay(slow={self._slow}, slow_parity={self._slow_parity})"


class CongestedDelay(DeliveryPolicy):
    """Store-and-forward congestion: receivers serve one message at a time.

    Each message needs *latency* time on the wire plus *service* time at
    the receiver, and a receiver processes messages sequentially — a
    message arriving while the receiver is busy queues.  Under this
    model the *completion time* of a workload is lower-bounded by the
    bottleneck processor's message load, which is exactly why the
    paper's measure matters: a Θ(n)-load processor makes the whole
    system Θ(n) slow no matter how few messages everyone else handles.
    """

    def __init__(self, latency: float = 1.0, service: float = 1.0) -> None:
        if latency < 0 or service <= 0:
            raise ValueError(
                f"need latency >= 0 and service > 0, got {latency}/{service}"
            )
        self._latency = latency
        self._service = service
        self._receiver_free: dict[int, float] = {}

    def delay(self, message: Message) -> float:
        arrival = message.send_time + self._latency
        start = max(arrival, self._receiver_free.get(message.receiver, 0.0))
        done = start + self._service
        self._receiver_free[message.receiver] = done
        return done - message.send_time

    def fork(self) -> "CongestedDelay":
        return CongestedDelay(latency=self._latency, service=self._service)

    def __repr__(self) -> str:
        return f"CongestedDelay(latency={self._latency}, service={self._service})"


def standard_policies(seed: int = 0) -> list[DeliveryPolicy]:
    """The policy battery the tests run every counter under."""
    return [UnitDelay(), RandomDelay(seed=seed), SkewedDelay()]
