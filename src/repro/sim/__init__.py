"""Deterministic discrete-event simulator for asynchronous message passing.

This package is the substrate of the reproduction: the paper's model of §2
— ``n`` processors, unique ids, point-to-point messages with unbounded but
finite delays, no failures, no shared memory — realized as a seeded
discrete-event simulation with exact message accounting.

Public surface:

* :class:`Network` — the simulator; register processors, inject operation
  requests, run to quiescence.
* :class:`Processor` — base class for protocol programs.
* :class:`Message` / :class:`MessageRecord` — in-flight and delivered
  messages.
* :class:`Trace` / :class:`TraceLevel` — the delivered-message ledger,
  source of all load and footprint measurements, with tiered fidelity
  (``FULL`` records, ``LOADS`` counters only, ``OFF`` nothing).
* delivery policies — :class:`UnitDelay`, :class:`RandomDelay`,
  :class:`FifoRandomDelay`, :class:`SkewedDelay`, and
  :class:`CongestedDelay` (store-and-forward queueing).
* fault injection — :class:`FaultPlan` composed of :class:`FaultRule`
  instances (:class:`DropRule`, :class:`DuplicateRule`,
  :class:`ReorderRule`, :class:`PartitionRule`, :class:`CrashRule`) plus
  :class:`RecoveryPoint` schedules, parsed from compact spec strings by
  :func:`parse_fault_spec`.
* :class:`ReliableTransport` — ack/timeout/retransmit wrapper that lets
  unmodified counters survive lossy fault plans.
* crash recovery — :class:`FailureDetector` (heartbeat-based ◊P over the
  simulated wire), and :class:`RecoveryManager` driving a
  :class:`Recoverable` counter through suspect / restore / recover with
  a checkpoint store modelling stable storage.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.failure_detector import HEARTBEAT_KIND, FailureDetector
from repro.sim.faults import (
    CrashRule,
    DropRule,
    DuplicateRule,
    FaultOutcome,
    FaultPlan,
    FaultRecord,
    FaultRule,
    PartitionRule,
    RecoveryPoint,
    ReorderRule,
    canonical_fault_spec,
    parse_fault_spec,
)
from repro.sim.recovery import Recoverable, RecoveryEvent, RecoveryManager
from repro.sim.messages import NO_OP, Message, MessageRecord, OpIndex, ProcessorId
from repro.sim.network import DEFAULT_EVENT_LIMIT, Network
from repro.sim.transport import ACK_KIND, DATA_KIND, ReliableTransport
from repro.sim.policies import (
    CongestedDelay,
    DeliveryPolicy,
    FifoRandomDelay,
    RandomDelay,
    SkewedDelay,
    UnitDelay,
    standard_policies,
)
from repro.sim.processor import InertProcessor, Processor
from repro.sim.trace import Trace, TraceLevel, merge_loads

__all__ = [
    "ACK_KIND",
    "CongestedDelay",
    "CrashRule",
    "DATA_KIND",
    "DEFAULT_EVENT_LIMIT",
    "DeliveryPolicy",
    "DropRule",
    "DuplicateRule",
    "Event",
    "EventQueue",
    "FaultOutcome",
    "FaultPlan",
    "FaultRecord",
    "FaultRule",
    "FifoRandomDelay",
    "FailureDetector",
    "HEARTBEAT_KIND",
    "InertProcessor",
    "Message",
    "MessageRecord",
    "NO_OP",
    "Network",
    "OpIndex",
    "PartitionRule",
    "Processor",
    "ProcessorId",
    "RandomDelay",
    "Recoverable",
    "RecoveryEvent",
    "RecoveryManager",
    "RecoveryPoint",
    "ReliableTransport",
    "ReorderRule",
    "SkewedDelay",
    "Trace",
    "TraceLevel",
    "UnitDelay",
    "canonical_fault_spec",
    "merge_loads",
    "parse_fault_spec",
    "standard_policies",
]
