"""Deterministic discrete-event simulator for asynchronous message passing.

This package is the substrate of the reproduction: the paper's model of §2
— ``n`` processors, unique ids, point-to-point messages with unbounded but
finite delays, no failures, no shared memory — realized as a seeded
discrete-event simulation with exact message accounting.

Public surface:

* :class:`Network` — the simulator; register processors, inject operation
  requests, run to quiescence.
* :class:`Processor` — base class for protocol programs.
* :class:`Message` / :class:`MessageRecord` — in-flight and delivered
  messages.
* :class:`Trace` / :class:`TraceLevel` — the delivered-message ledger,
  source of all load and footprint measurements, with tiered fidelity
  (``FULL`` records, ``LOADS`` counters only, ``OFF`` nothing).
* delivery policies — :class:`UnitDelay`, :class:`RandomDelay`,
  :class:`FifoRandomDelay`, :class:`SkewedDelay`, and
  :class:`CongestedDelay` (store-and-forward queueing).
"""

from repro.sim.events import Event, EventQueue
from repro.sim.messages import NO_OP, Message, MessageRecord, OpIndex, ProcessorId
from repro.sim.network import DEFAULT_EVENT_LIMIT, Network
from repro.sim.policies import (
    CongestedDelay,
    DeliveryPolicy,
    FifoRandomDelay,
    RandomDelay,
    SkewedDelay,
    UnitDelay,
    standard_policies,
)
from repro.sim.processor import InertProcessor, Processor
from repro.sim.trace import Trace, TraceLevel, merge_loads

__all__ = [
    "CongestedDelay",
    "DEFAULT_EVENT_LIMIT",
    "DeliveryPolicy",
    "Event",
    "EventQueue",
    "FifoRandomDelay",
    "InertProcessor",
    "Message",
    "MessageRecord",
    "NO_OP",
    "Network",
    "OpIndex",
    "Processor",
    "ProcessorId",
    "RandomDelay",
    "SkewedDelay",
    "Trace",
    "TraceLevel",
    "UnitDelay",
    "merge_loads",
    "standard_policies",
]
