"""The discrete-event core: timestamped events and a deterministic queue.

The simulator is a classic discrete-event loop.  Two facts matter for
reproducibility:

* ties in time are broken by a monotonically increasing sequence number, so
  two runs with the same seed pop events in exactly the same order;
* events carry plain callables, so the queue knows nothing about messages —
  message semantics live entirely in :mod:`repro.sim.network`.

Internally the heap stores plain ``(time, seq, action, arg)`` tuples
rather than :class:`Event` objects: tuple allocation and comparison are
the per-event cost of the whole simulator, and ``seq`` is unique, so the
comparison never reaches the callable.  :class:`Event` remains the public
view type returned by :meth:`EventQueue.schedule` and
:meth:`EventQueue.pop`.

The ``arg`` slot is the zero-overhead delivery path: the network
schedules ``(deliver, message)`` directly instead of wrapping a closure
per message.  Entries scheduled through the plain :meth:`EventQueue.schedule`
API carry a sentinel and are invoked with no argument.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

_NO_ARG = object()
"""Sentinel marking a heap entry whose action takes no argument."""


@dataclass(order=True, slots=True)
class Event:
    """A callback scheduled at a simulated time.

    Ordering is ``(time, seq)``: earlier times first, FIFO among equal
    times.  The callback is excluded from comparisons.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A deterministic min-heap of scheduled actions.

    The queue also tracks the current simulated time: popping an event
    advances ``now`` to that event's timestamp.  Scheduling into the past
    is a programming error and raises ``ValueError``.
    """

    __slots__ = ("_heap", "_counter", "_now")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run *delay* time units from now.

        Returns the scheduled :class:`Event` (useful in tests).  A zero
        delay is allowed and preserves scheduling order among same-time
        events.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = next(self._counter)
        heapq.heappush(self._heap, (time, seq, action, _NO_ARG))
        return Event(time=time, seq=seq, action=action)

    def schedule_call(self, delay: float, action: Callable[[Any], None], arg: Any) -> None:
        """Fast path: schedule ``action(arg)`` without wrapping a closure.

        This is what the network uses for message delivery — the message
        rides in the heap entry itself, so a send allocates no lambda and
        no :class:`Event` object.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._counter), action, arg)
        )

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing ``now``."""
        time, seq, action, arg = heapq.heappop(self._heap)
        self._now = time
        if arg is not _NO_ARG:
            action = _bind(action, arg)
        return Event(time=time, seq=seq, action=action)

    def run_next(self) -> None:
        """Pop the earliest event and execute its action."""
        time, _, action, arg = heapq.heappop(self._heap)
        self._now = time
        if arg is _NO_ARG:
            action()
        else:
            action(arg)

    def run_many(self, limit: int) -> int:
        """Execute up to *limit* events in a tight loop; return how many ran.

        This is the simulator's inner loop: locals for the heap and pop
        function, one time-advance per event, no per-event bookkeeping
        beyond the counter.  Callers (e.g.
        :meth:`~repro.sim.network.Network.run_until_quiescent`) batch
        their event-limit accounting around it.
        """
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        ran = 0
        while heap and ran < limit:
            time, _, action, arg = pop(heap)
            self._now = time
            ran += 1
            if arg is no_arg:
                action()
            else:
                action(arg)
        return ran

    def clear(self) -> None:
        """Drop all pending events and reset the queue to its initial state.

        Simulated time returns to zero and the tie-break counter restarts,
        so a cleared queue is indistinguishable from a fresh one — a
        cleared-then-reused queue must not report the stale time of a
        schedule it abandoned.
        """
        self._heap.clear()
        self._counter = itertools.count()
        self._now = 0.0


def _bind(action: Callable[[Any], None], arg: Any) -> Callable[[], None]:
    """Adapt an argument-carrying entry to the no-argument Event view."""

    def call() -> None:
        action(arg)

    return call
