"""The discrete-event core: timestamped events and a deterministic queue.

The simulator is a classic discrete-event loop.  Two facts matter for
reproducibility:

* ties in time are broken by a monotonically increasing sequence number, so
  two runs with the same seed pop events in exactly the same order;
* events carry plain callables, so the queue knows nothing about messages —
  message semantics live entirely in :mod:`repro.sim.network`.

Internally the heap stores plain ``(time, seq, action, arg)`` tuples
rather than :class:`Event` objects: tuple allocation and comparison are
the per-event cost of the whole simulator, and ``seq`` is unique, so the
comparison never reaches the callable.  :class:`Event` remains the public
view type returned by :meth:`EventQueue.schedule` and
:meth:`EventQueue.pop`.

The ``arg`` slot is the zero-overhead delivery path: the network
schedules ``(deliver, message)`` directly instead of wrapping a closure
per message.  Entries scheduled through the plain :meth:`EventQueue.schedule`
API carry a sentinel and are invoked with no argument.

A :class:`SchedulerHook` may be installed to take over tie-breaking:
whenever more than one entry shares the minimum timestamp, the hook
chooses which one runs next instead of the default FIFO-by-``seq``
order.  The clean path pays a single ``is None`` check per
:meth:`EventQueue.run_many` call; the hooked path keeps the current
time's candidates in a persistent *ready* buffer, so unchosen entries
are not re-pushed through the heap on every pop.  :meth:`EventQueue.clear`
drops any installed hook so a reused queue cannot leak one exploration's
tie-break state into the next.

:class:`FlatEventQueue` is the table-driven fast core behind
``Network(core="fast")``: a bucket (calendar) queue keyed by timestamp
with recycled bucket storage, a heap over *distinct* times only, and
bare payload items instead of per-event tuples.  It executes events in
exactly the order :class:`EventQueue` would — asserted by the
equivalence suites — but does not support scheduler hooks; hooked runs
route through the compatible heap queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError

_NO_ARG = object()
"""Sentinel marking a heap entry whose action takes no argument."""


class SchedulerHook:
    """Tie-break arbiter for equal-time events (duck-typed interface).

    Install one with :meth:`EventQueue.install_hook`.  Whenever two or
    more pending entries share the minimum timestamp, the queue calls
    :meth:`choose` with the ready list (raw ``(time, seq, action, arg)``
    heap entries in ``seq`` order — the order the default scheduler
    would have used) and runs the entry at the returned index.  Message
    deliveries carry the :class:`~repro.sim.messages.Message` in the
    ``arg`` slot, so a hook can make informed choices; plain callbacks
    carry a private sentinel there and should be treated as opaque.

    ``choose`` must return an index in ``range(len(ready))``; anything
    else raises ``IndexError`` at pop time.  Hooks see only *ordering*
    freedom the event model already allows, so any hook produces a
    legal execution.
    """

    def choose(self, ready: list[tuple[float, int, Callable[..., None], Any]]) -> int:
        raise NotImplementedError


@dataclass(order=True, slots=True)
class Event:
    """A callback scheduled at a simulated time.

    Ordering is ``(time, seq)``: earlier times first, FIFO among equal
    times.  The callback is excluded from comparisons.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A deterministic min-heap of scheduled actions.

    The queue also tracks the current simulated time: popping an event
    advances ``now`` to that event's timestamp.  Scheduling into the past
    is a programming error and raises ``ValueError``.
    """

    __slots__ = ("_heap", "_counter", "_now", "_hook", "_ready")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._hook: SchedulerHook | None = None
        # Persistent frontier buffer for the hooked path: entries sharing
        # the current minimum timestamp, in seq order.  Always empty when
        # no hook is installed.
        self._ready: list[tuple[float, int, Callable[..., None], Any]] = []

    @property
    def now(self) -> float:
        """Current simulated time (time of the last popped event)."""
        return self._now

    @property
    def scheduler_hook(self) -> SchedulerHook | None:
        """The installed tie-break hook, or ``None`` (default FIFO)."""
        return self._hook

    def install_hook(self, hook: SchedulerHook | None) -> None:
        """Install (or with ``None`` remove) a tie-break arbiter.

        While installed, every pop that finds several entries sharing
        the minimum time asks ``hook.choose(ready)`` which runs first.
        The hook is dropped by :meth:`clear` — a reused queue always
        starts with default FIFO tie-breaking.
        """
        self._hook = hook
        if hook is None and self._ready:
            # Return the buffered frontier to the heap so the clean loop
            # sees every pending entry again.
            heap = self._heap
            for entry in self._ready:
                heapq.heappush(heap, entry)
            self._ready.clear()

    def __len__(self) -> int:
        return len(self._heap) + len(self._ready)

    def __bool__(self) -> bool:
        return bool(self._heap) or bool(self._ready)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run *delay* time units from now.

        Returns the scheduled :class:`Event` (useful in tests).  A zero
        delay is allowed and preserves scheduling order among same-time
        events.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = next(self._counter)
        heapq.heappush(self._heap, (time, seq, action, _NO_ARG))
        return Event(time=time, seq=seq, action=action)

    def schedule_call(self, delay: float, action: Callable[[Any], None], arg: Any) -> None:
        """Fast path: schedule ``action(arg)`` without wrapping a closure.

        This is what the network uses for message delivery — the message
        rides in the heap entry itself, so a send allocates no lambda and
        no :class:`Event` object.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._counter), action, arg)
        )

    def _pop_entry(self) -> tuple[float, int, Callable[..., None], Any]:
        """Pop the next entry, honoring the tie-break hook if installed.

        The hooked path keeps the candidates sharing the minimum
        timestamp in the persistent ``_ready`` buffer (in ``seq`` order,
        i.e. default-scheduler order): each pop merges any newly
        scheduled equal-time entries from the heap, lets the hook pick
        one, and leaves the rest buffered — unchosen entries are never
        re-pushed through the heap.  New entries always carry a higher
        ``seq`` than everything buffered, and nothing can be scheduled
        before ``now``, so the buffer stays in seq order and the
        frontier time stays minimal until it drains.  Without a hook —
        or with a single ready entry — this is a plain heappop.
        """
        heap = self._heap
        ready = self._ready
        if not ready:
            first = heapq.heappop(heap)
            if self._hook is None or not heap or heap[0][0] != first[0]:
                return first
            ready.append(first)
        time = ready[0][0]
        while heap and heap[0][0] == time:
            ready.append(heapq.heappop(heap))
        if len(ready) == 1:
            return ready.pop()
        return ready.pop(self._hook.choose(ready))

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing ``now``."""
        time, seq, action, arg = self._pop_entry()
        self._now = time
        if arg is not _NO_ARG:
            action = _bind(action, arg)
        return Event(time=time, seq=seq, action=action)

    def run_next(self) -> None:
        """Pop the earliest event and execute its action."""
        time, _, action, arg = self._pop_entry()
        self._now = time
        if arg is _NO_ARG:
            action()
        else:
            action(arg)

    def run_many(self, limit: int) -> int:
        """Execute up to *limit* events in a tight loop; return how many ran.

        This is the simulator's inner loop: locals for the heap and pop
        function, one time-advance per event, no per-event bookkeeping
        beyond the counter.  Callers (e.g.
        :meth:`~repro.sim.network.Network.run_until_quiescent`) batch
        their event-limit accounting around it.
        """
        if self._hook is not None:
            return self._run_many_hooked(limit)
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        ran = 0
        while heap and ran < limit:
            time, _, action, arg = pop(heap)
            self._now = time
            ran += 1
            if arg is no_arg:
                action()
            else:
                action(arg)
        return ran

    def _run_many_hooked(self, limit: int) -> int:
        """The :meth:`run_many` loop with hook-mediated tie-breaking.

        Kept out of the clean loop so explorations pay for candidate
        gathering but ordinary runs pay one ``is None`` check per batch.
        """
        heap = self._heap
        ready = self._ready
        no_arg = _NO_ARG
        ran = 0
        while (heap or ready) and ran < limit:
            time, _, action, arg = self._pop_entry()
            self._now = time
            ran += 1
            if arg is no_arg:
                action()
            else:
                action(arg)
        return ran

    def next_time(self) -> float | None:
        """Timestamp of the earliest pending entry, or ``None`` if empty.

        A read-only peek — nothing is popped and ``now`` does not move.
        The synchronous runtime uses this to delimit lockstep rounds.
        """
        if self._ready:
            return self._ready[0][0]
        if self._heap:
            return self._heap[0][0]
        return None

    def clear(self) -> None:
        """Drop all pending events and reset the queue to its initial state.

        Simulated time returns to zero, the tie-break counter restarts,
        and any installed :class:`SchedulerHook` is removed, so a cleared
        queue is indistinguishable from a fresh one — a cleared-then-reused
        queue must not report the stale time of a schedule it abandoned nor
        replay a previous exploration's tie-break choices.
        """
        self._heap.clear()
        self._ready.clear()
        self._counter = itertools.count()
        self._now = 0.0
        self._hook = None


def _bind(action: Callable[[Any], None], arg: Any) -> Callable[[], None]:
    """Adapt an argument-carrying entry to the no-argument Event view."""

    def call() -> None:
        action(arg)

    return call


class _Local:
    """Bucket entry for a generically scheduled action (non-bound path).

    The fast queue stores message payloads *bare* in its buckets; every
    other entry is wrapped in one of these so the drain loop can tell
    the two apart with a single ``type(item) is _Local`` check.
    """

    __slots__ = ("action", "arg")

    def __init__(self, action: Callable[..., None], arg: Any) -> None:
        self.action = action
        self.arg = arg


class FlatEventQueue:
    """Table-driven bucket queue: the fast core's event store.

    Entries live in per-timestamp *buckets* (plain lists, recycled
    through a free list instead of reallocated), and a heap orders only
    the *distinct* pending timestamps — at most one bucket exists per
    time, so the heap never compares beyond the float.  Appending to an
    existing bucket replaces a ``heappush`` of a fresh 4-tuple with a
    single ``list.append``, which is what makes constant-delay
    workloads (the common case) cheap.

    Execution order is identical to :class:`EventQueue`: within a
    bucket, append order *is* ``seq`` order, and buckets drain in time
    order, so the total order is exactly ``(time, seq)``.  Same-time
    entries scheduled while a bucket drains are appended to the live
    bucket and picked up in the same pass — the FIFO tie-break
    :class:`EventQueue` provides by construction.

    Two scheduling paths exist:

    * :meth:`bind` registers one *bound action* (the network's delivery
      handler); :meth:`schedule_call` for that action stores its
      argument bare — zero per-event allocation;
    * every other entry is wrapped in a 2-slot :class:`_Local`.

    Scheduler hooks are deliberately unsupported:
    :meth:`~repro.sim.network.Network.install_scheduler_hook` migrates
    pending entries to a compatible :class:`EventQueue` first.  The
    :class:`Event` objects returned by :meth:`schedule` / :meth:`pop`
    carry a synthetic (monotone, but queue-local) ``seq``.
    """

    __slots__ = (
        "_buckets",
        "_times",
        "_free",
        "_active",
        "_active_pos",
        "_now",
        "_len",
        "_bound",
        "_seq",
    )

    def __init__(self) -> None:
        self._buckets: dict[float, list[Any]] = {}
        self._times: list[float] = []
        self._free: list[list[Any]] = []
        self._active: list[Any] | None = None
        self._active_pos = 0
        self._now = 0.0
        self._len = 0
        self._bound: Callable[[Any], None] | None = None
        self._seq = 0

    # ------------------------------------------------------------------
    # Introspection (EventQueue API)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (time of the last executed bucket)."""
        return self._now

    @property
    def scheduler_hook(self) -> SchedulerHook | None:
        """Always ``None`` — the fast core never hosts a hook."""
        return None

    def install_hook(self, hook: SchedulerHook | None) -> None:
        """Reject hooks: hooked runs belong on the compatible queue.

        ``None`` (removal) is accepted as a no-op so substrate-reset
        paths can run unconditionally.
        """
        if hook is not None:
            raise ConfigurationError(
                "FlatEventQueue does not support scheduler hooks; use "
                "Network(core='compat') or install the hook through "
                "Network.install_scheduler_hook, which migrates pending "
                "events to the compatible EventQueue first"
            )

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def bind(self, action: Callable[[Any], None]) -> None:
        """Register the one *bound action* whose arguments ride bare."""
        self._bound = action

    def _append(self, delay: float, item: Any) -> float:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            free = self._free
            bucket = free.pop() if free else []
            buckets[time] = bucket
            heapq.heappush(self._times, time)
        bucket.append(item)
        self._len += 1
        return time

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run *delay* time units from now."""
        time = self._append(delay, _Local(action, _NO_ARG))
        seq = self._seq
        self._seq = seq + 1
        return Event(time=time, seq=seq, action=action)

    def schedule_call(
        self, delay: float, action: Callable[[Any], None], arg: Any
    ) -> None:
        """Schedule ``action(arg)``; bare-stores ``arg`` if *action* is
        the bound action, else wraps a :class:`_Local`."""
        if action is self._bound:
            self._append(delay, arg)
        else:
            self._append(delay, _Local(action, arg))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_item(self) -> Any:
        """Consume and return the earliest item, advancing ``now``.

        Raises ``IndexError`` on an empty queue (like ``heappop``).
        The active bucket stays registered in ``_buckets`` until fully
        drained, so zero-delay schedules land in it and run this pass.
        """
        bucket = self._active
        pos = self._active_pos
        if bucket is not None:
            if pos < len(bucket):
                item = bucket[pos]
                bucket[pos] = None
                self._active_pos = pos + 1
                self._len -= 1
                return item
            del self._buckets[self._now]
            bucket.clear()
            self._free.append(bucket)
            self._active = None
        time = heapq.heappop(self._times)
        bucket = self._buckets[time]
        self._now = time
        self._active = bucket
        item = bucket[0]
        bucket[0] = None
        self._active_pos = 1
        self._len -= 1
        return item

    def _execute(self, item: Any) -> None:
        if type(item) is _Local:
            action = item.action
            arg = item.arg
            if arg is _NO_ARG:
                action()
            else:
                action(arg)
        else:
            self._bound(item)

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing ``now``."""
        item = self._next_item()
        seq = self._seq
        self._seq = seq + 1
        if type(item) is _Local:
            action = item.action
            if item.arg is not _NO_ARG:
                action = _bind(action, item.arg)
        else:
            action = _bind(self._bound, item)
        return Event(time=self._now, seq=seq, action=action)

    def run_next(self) -> None:
        """Pop the earliest event and execute its action."""
        self._execute(self._next_item())

    def run_many(self, limit: int) -> int:
        """Execute up to *limit* events; return how many ran.

        This is the generic drain loop; the network inlines a fused
        version per trace level (see
        :meth:`repro.sim.network.Network.run_until_quiescent`).
        """
        ran = 0
        next_item = self._next_item
        execute = self._execute
        while self._len and ran < limit:
            execute(next_item())
            ran += 1
        return ran

    def next_time(self) -> float | None:
        """Timestamp of the earliest pending entry, or ``None`` if empty.

        Mirrors :meth:`EventQueue.next_time`.  An active bucket with
        unconsumed items answers the current time (zero-delay schedules
        land in it and run this pass); otherwise the earliest registered
        bucket time wins.
        """
        active = self._active
        if active is not None and self._active_pos < len(active):
            return self._now
        if self._times:
            return self._times[0]
        return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _pending_in_order(self) -> list[tuple[float, Any]]:
        """Every pending ``(time, item)`` in execution order.

        Used by the network to migrate a fast queue's backlog onto a
        compatible :class:`EventQueue` when a hook or fault plan arrives
        mid-session.
        """
        items: list[tuple[float, Any]] = []
        active = self._active
        if active is not None:
            now = self._now
            for item in active[self._active_pos:]:
                items.append((now, item))
        for time in sorted(self._times):
            for item in self._buckets[time]:
                items.append((time, item))
        return items

    def clear(self) -> None:
        """Drop all pending events and reset to the initial state.

        Clears in place — the bucket dict and time heap keep their
        identities, so peers that aliased them stay wired.  The bound
        action survives (it is construction-time wiring, not run
        state).
        """
        self._buckets.clear()
        self._times.clear()
        self._free.clear()
        self._active = None
        self._active_pos = 0
        self._now = 0.0
        self._len = 0
        self._seq = 0
