"""The discrete-event core: timestamped events and a deterministic queue.

The simulator is a classic discrete-event loop.  Two facts matter for
reproducibility:

* ties in time are broken by a monotonically increasing sequence number, so
  two runs with the same seed pop events in exactly the same order;
* events carry plain callables, so the queue knows nothing about messages —
  message semantics live entirely in :mod:`repro.sim.network`.

Internally the heap stores plain ``(time, seq, action, arg)`` tuples
rather than :class:`Event` objects: tuple allocation and comparison are
the per-event cost of the whole simulator, and ``seq`` is unique, so the
comparison never reaches the callable.  :class:`Event` remains the public
view type returned by :meth:`EventQueue.schedule` and
:meth:`EventQueue.pop`.

The ``arg`` slot is the zero-overhead delivery path: the network
schedules ``(deliver, message)`` directly instead of wrapping a closure
per message.  Entries scheduled through the plain :meth:`EventQueue.schedule`
API carry a sentinel and are invoked with no argument.

A :class:`SchedulerHook` may be installed to take over tie-breaking:
whenever more than one entry shares the minimum timestamp, the hook
chooses which one runs next instead of the default FIFO-by-``seq``
order.  The clean path pays a single ``is None`` check per
:meth:`EventQueue.run_many` call; the hooked path is only as fast as it
needs to be for schedule exploration.  :meth:`EventQueue.clear` drops
any installed hook so a reused queue cannot leak one exploration's
tie-break state into the next.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

_NO_ARG = object()
"""Sentinel marking a heap entry whose action takes no argument."""


class SchedulerHook:
    """Tie-break arbiter for equal-time events (duck-typed interface).

    Install one with :meth:`EventQueue.install_hook`.  Whenever two or
    more pending entries share the minimum timestamp, the queue calls
    :meth:`choose` with the ready list (raw ``(time, seq, action, arg)``
    heap entries in ``seq`` order — the order the default scheduler
    would have used) and runs the entry at the returned index.  Message
    deliveries carry the :class:`~repro.sim.messages.Message` in the
    ``arg`` slot, so a hook can make informed choices; plain callbacks
    carry a private sentinel there and should be treated as opaque.

    ``choose`` must return an index in ``range(len(ready))``; anything
    else raises ``IndexError`` at pop time.  Hooks see only *ordering*
    freedom the event model already allows, so any hook produces a
    legal execution.
    """

    def choose(self, ready: list[tuple[float, int, Callable[..., None], Any]]) -> int:
        raise NotImplementedError


@dataclass(order=True, slots=True)
class Event:
    """A callback scheduled at a simulated time.

    Ordering is ``(time, seq)``: earlier times first, FIFO among equal
    times.  The callback is excluded from comparisons.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A deterministic min-heap of scheduled actions.

    The queue also tracks the current simulated time: popping an event
    advances ``now`` to that event's timestamp.  Scheduling into the past
    is a programming error and raises ``ValueError``.
    """

    __slots__ = ("_heap", "_counter", "_now", "_hook")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._hook: SchedulerHook | None = None

    @property
    def now(self) -> float:
        """Current simulated time (time of the last popped event)."""
        return self._now

    @property
    def scheduler_hook(self) -> SchedulerHook | None:
        """The installed tie-break hook, or ``None`` (default FIFO)."""
        return self._hook

    def install_hook(self, hook: SchedulerHook | None) -> None:
        """Install (or with ``None`` remove) a tie-break arbiter.

        While installed, every pop that finds several entries sharing
        the minimum time asks ``hook.choose(ready)`` which runs first.
        The hook is dropped by :meth:`clear` — a reused queue always
        starts with default FIFO tie-breaking.
        """
        self._hook = hook

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run *delay* time units from now.

        Returns the scheduled :class:`Event` (useful in tests).  A zero
        delay is allowed and preserves scheduling order among same-time
        events.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = next(self._counter)
        heapq.heappush(self._heap, (time, seq, action, _NO_ARG))
        return Event(time=time, seq=seq, action=action)

    def schedule_call(self, delay: float, action: Callable[[Any], None], arg: Any) -> None:
        """Fast path: schedule ``action(arg)`` without wrapping a closure.

        This is what the network uses for message delivery — the message
        rides in the heap entry itself, so a send allocates no lambda and
        no :class:`Event` object.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._counter), action, arg)
        )

    def _pop_entry(self) -> tuple[float, int, Callable[..., None], Any]:
        """Pop the next entry, honoring the tie-break hook if installed.

        Gathers every entry sharing the minimum timestamp (in ``seq``
        order, i.e. default-scheduler order), lets the hook pick one,
        and pushes the rest back.  Without a hook — or with a single
        ready entry — this is a plain heappop.
        """
        heap = self._heap
        first = heapq.heappop(heap)
        if self._hook is None or not heap or heap[0][0] != first[0]:
            return first
        time = first[0]
        ready = [first]
        while heap and heap[0][0] == time:
            ready.append(heapq.heappop(heap))
        chosen = ready.pop(self._hook.choose(ready))
        for entry in ready:
            heapq.heappush(heap, entry)
        return chosen

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing ``now``."""
        time, seq, action, arg = self._pop_entry()
        self._now = time
        if arg is not _NO_ARG:
            action = _bind(action, arg)
        return Event(time=time, seq=seq, action=action)

    def run_next(self) -> None:
        """Pop the earliest event and execute its action."""
        time, _, action, arg = self._pop_entry()
        self._now = time
        if arg is _NO_ARG:
            action()
        else:
            action(arg)

    def run_many(self, limit: int) -> int:
        """Execute up to *limit* events in a tight loop; return how many ran.

        This is the simulator's inner loop: locals for the heap and pop
        function, one time-advance per event, no per-event bookkeeping
        beyond the counter.  Callers (e.g.
        :meth:`~repro.sim.network.Network.run_until_quiescent`) batch
        their event-limit accounting around it.
        """
        if self._hook is not None:
            return self._run_many_hooked(limit)
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        ran = 0
        while heap and ran < limit:
            time, _, action, arg = pop(heap)
            self._now = time
            ran += 1
            if arg is no_arg:
                action()
            else:
                action(arg)
        return ran

    def _run_many_hooked(self, limit: int) -> int:
        """The :meth:`run_many` loop with hook-mediated tie-breaking.

        Kept out of the clean loop so explorations pay for candidate
        gathering but ordinary runs pay one ``is None`` check per batch.
        """
        heap = self._heap
        no_arg = _NO_ARG
        ran = 0
        while heap and ran < limit:
            time, _, action, arg = self._pop_entry()
            self._now = time
            ran += 1
            if arg is no_arg:
                action()
            else:
                action(arg)
        return ran

    def clear(self) -> None:
        """Drop all pending events and reset the queue to its initial state.

        Simulated time returns to zero, the tie-break counter restarts,
        and any installed :class:`SchedulerHook` is removed, so a cleared
        queue is indistinguishable from a fresh one — a cleared-then-reused
        queue must not report the stale time of a schedule it abandoned nor
        replay a previous exploration's tie-break choices.
        """
        self._heap.clear()
        self._counter = itertools.count()
        self._now = 0.0
        self._hook = None


def _bind(action: Callable[[Any], None], arg: Any) -> Callable[[], None]:
    """Adapt an argument-carrying entry to the no-argument Event view."""

    def call() -> None:
        action(arg)

    return call
