"""The discrete-event core: timestamped events and a deterministic queue.

The simulator is a classic discrete-event loop.  Two facts matter for
reproducibility:

* ties in time are broken by a monotonically increasing sequence number, so
  two runs with the same seed pop events in exactly the same order;
* events carry plain callables, so the queue knows nothing about messages —
  message semantics live entirely in :mod:`repro.sim.network`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True, slots=True)
class Event:
    """A callback scheduled at a simulated time.

    Ordering is ``(time, seq)``: earlier times first, FIFO among equal
    times.  The callback is excluded from comparisons.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    The queue also tracks the current simulated time: popping an event
    advances ``now`` to that event's timestamp.  Scheduling into the past
    is a programming error and raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule *action* to run *delay* time units from now.

        Returns the scheduled :class:`Event` (useful in tests).  A zero
        delay is allowed and preserves scheduling order among same-time
        events.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self._now + delay, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing ``now``."""
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def run_next(self) -> None:
        """Pop the earliest event and execute its action."""
        self.pop().action()

    def clear(self) -> None:
        """Drop all pending events without executing them."""
        self._heap.clear()
