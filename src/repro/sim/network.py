"""The asynchronous message-passing network simulator.

This is the substrate the whole reproduction runs on.  It provides:

* registration of :class:`~repro.sim.processor.Processor` programs under
  their ids (the paper's processors ``1 .. n``);
* :meth:`Network.send` — the only way any message moves, so the trace is a
  complete ledger;
* operation attribution — every message inherits the ``inc`` operation of
  the event that caused it, which makes the paper's per-operation
  footprints ``I_p`` exact even under concurrency;
* :meth:`Network.run_until_quiescent` — execute events until no message is
  in flight, which is precisely the paper's "the inc process terminates as
  soon as no further messages are sent" (§2).

Determinism: given the same processors, policy and injection sequence, two
runs produce identical traces.  All randomness lives inside the seeded
delivery policy.

Performance: message delivery is the hot path of every experiment, so the
network specializes it per :class:`~repro.sim.trace.TraceLevel` at
construction time — the delivery handler, the policy's ``delay`` method
and the constant-delay shortcut are pre-bound once, a send schedules a
``(deliver, message)`` heap entry instead of a closure, and
:meth:`run_until_quiescent` checks the event limit per batch rather than
per event.  ``FULL`` tracing keeps the exact historical behavior;
``LOADS`` skips record materialization and payload copies; ``OFF`` skips
tracing entirely.

Table-driven fast core: by default (``core="auto"``) the network runs on
a :class:`~repro.sim.events.FlatEventQueue` — messages ride *bare* in
per-timestamp buckets (no per-event tuple), per-processor ``on_message``
handlers are resolved once into a dispatch table, and
:meth:`run_until_quiescent` drains whole buckets in a fused loop with the
trace updates inlined.  The fast core is observationally identical to the
compatible ``heapq`` path (byte-identical traces and fingerprints —
asserted over every registered counter spec in the test suite) but does
not host :class:`~repro.sim.events.SchedulerHook` tie-breaks or fault
plans; installing either migrates all pending events onto a compatible
:class:`~repro.sim.events.EventQueue` and continues there.  Pass
``core="compat"`` to opt out of the fast core entirely.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Mapping

from repro.errors import (
    ConfigurationError,
    DuplicateProcessorError,
    SimulationLimitError,
    UnknownProcessorError,
)
from repro.sim.events import (
    _NO_ARG,
    EventQueue,
    FlatEventQueue,
    SchedulerHook,
    _Local,
)
from repro.sim.faults import FaultPlan
from repro.sim.messages import NO_OP, Message, MessageRecord, OpIndex, ProcessorId
from repro.sim.policies import DeliveryPolicy, UnitDelay
from repro.sim.processor import Processor
from repro.sim.trace import Trace, TraceLevel

DEFAULT_EVENT_LIMIT = 5_000_000
"""Safety valve: a run consuming this many events is assumed to be stuck."""

_LIMIT_CHECK_BATCH = 4096
"""How many events run between event-limit checks in the drain loop."""

_tuple_new = tuple.__new__
"""Direct tuple allocation for Message/MessageRecord on the hot path —
skips the NamedTuple's Python-level ``__new__`` wrapper."""


class Network:
    """A simulated asynchronous point-to-point network.

    Any processor can message any other processor directly (the paper's
    complete communication topology).  Messages are delayed by the
    delivery policy and never lost, duplicated or corrupted — the paper's
    failure-free model.

    Args:
        policy: delivery policy deciding per-message delays
            (default :class:`~repro.sim.policies.UnitDelay`).
        event_limit: livelock safety valve for
            :meth:`run_until_quiescent`.
        trace_level: tracing fidelity — ``FULL`` (default, every record),
            ``LOADS`` (columnar counters only) or ``OFF`` (no tracing).
            Accepts a :class:`~repro.sim.trace.TraceLevel` or its name.
        fault_plan: optional seeded :class:`~repro.sim.faults.FaultPlan`
            consulted per send (``None`` keeps the failure-free model and
            the byte-identical fast path).
        core: event-loop implementation — ``"auto"`` (default; the
            table-driven fast core, unless a *fault_plan* is given),
            ``"fast"`` (table-driven core; hooks/faults migrate it to the
            compatible queue on installation) or ``"compat"`` (the
            historical ``heapq`` path).  All three produce byte-identical
            traces.
    """

    def __init__(
        self,
        policy: DeliveryPolicy | None = None,
        event_limit: int = DEFAULT_EVENT_LIMIT,
        trace_level: TraceLevel | str = TraceLevel.FULL,
        fault_plan: FaultPlan | None = None,
        core: str = "auto",
    ) -> None:
        trace_level = TraceLevel.coerce(trace_level)
        if core not in ("auto", "fast", "compat"):
            raise ConfigurationError(
                f"unknown core {core!r}: expected 'auto', 'fast' or 'compat'"
            )
        if core == "auto":
            core = "compat" if fault_plan is not None else "fast"
        self._fast = core == "fast"
        self._policy = policy or UnitDelay()
        self._queue: EventQueue | FlatEventQueue = (
            FlatEventQueue() if self._fast else EventQueue()
        )
        self._processors: dict[ProcessorId, Processor] = {}
        self._handlers: dict[ProcessorId, Callable[[Message], None]] = {}
        self._trace = Trace(level=trace_level)
        self._trace_level = trace_level
        self._active_op: OpIndex = NO_OP
        self._next_uid = 0
        self._in_flight = 0
        self._event_limit = event_limit
        self._events_executed = 0
        self._fault_plan: FaultPlan | None = None
        self._run_context = ""
        # Hot-path pre-binding: one attribute lookup per send/delivery
        # instead of a chain of them.  `constant_delay` lets constant
        # policies (UnitDelay) skip the per-message delay() call.
        self._policy_delay: Callable[[Message], float] = self._policy.delay
        self._constant_delay: float | None = getattr(
            self._policy, "constant_delay", None
        )
        self._copy_payloads = trace_level is TraceLevel.FULL
        if trace_level is TraceLevel.FULL:
            self._deliver: Callable[[Message], None] = self._deliver_full
        elif trace_level is TraceLevel.LOADS:
            self._deliver = self._deliver_loads
        else:
            self._deliver = self._deliver_off
        # Aliases of the trace's counter dicts for the LOADS delivery
        # handler — the dicts are shared objects, so the trace sees every
        # update (and deepcopy keeps them shared via its memo).
        self._sent_counts = self._trace._sent
        self._received_counts = self._trace._received
        self._op_counts = self._trace._op_counts
        self._footprints = self._trace._footprints
        # The drain strategy run_until_quiescent uses: a fused
        # bucket-walking loop per trace level on the fast core, the
        # queue's own run_many on the compatible core.
        if self._fast:
            self._queue.bind(self._deliver)
            if trace_level is TraceLevel.FULL:
                self._drain: Callable[[int], int] = self._drain_fast_full
            elif trace_level is TraceLevel.LOADS:
                self._drain = self._drain_fast_loads
            else:
                self._drain = self._drain_fast_off
        else:
            self._drain = self._queue.run_many
        if fault_plan is not None:
            self.install_fault_plan(fault_plan)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._queue.now

    @property
    def trace(self) -> Trace:
        """The execution trace (read for analysis; never mutate)."""
        return self._trace

    @property
    def trace_level(self) -> TraceLevel:
        """The tracing fidelity this network was constructed with."""
        return self._trace_level

    @property
    def policy(self) -> DeliveryPolicy:
        """The delivery policy in force."""
        return self._policy

    @property
    def active_op(self) -> OpIndex:
        """Operation index the currently executing event belongs to."""
        return self._active_op

    @property
    def processor_count(self) -> int:
        """Number of registered processors."""
        return len(self._processors)

    @property
    def events_executed(self) -> int:
        """Total events executed since construction (messages + local)."""
        return self._events_executed

    @property
    def fault_plan(self) -> FaultPlan | None:
        """The installed fault plan, or ``None`` (the failure-free model)."""
        return self._fault_plan

    @property
    def core(self) -> str:
        """The event-loop implementation currently in force.

        ``"fast"`` is the table-driven bucket core; ``"compat"`` the
        ``heapq`` path.  A network built on the fast core reports
        ``"compat"`` after a scheduler hook or fault plan migrated it.
        """
        return "fast" if self._fast else "compat"

    @property
    def run_context(self) -> str:
        """Free-text label of what this network is running (e.g. the
        canonical counter spec), echoed in
        :class:`~repro.errors.SimulationLimitError` messages so faulty
        runs that exhaust the event budget are attributable."""
        return self._run_context

    @run_context.setter
    def run_context(self, value: str) -> None:
        self._run_context = value

    def processor(self, pid: ProcessorId) -> Processor:
        """Return the registered processor *pid* or raise."""
        try:
            return self._processors[pid]
        except KeyError:
            raise UnknownProcessorError(f"no processor with id {pid}") from None

    def has_processor(self, pid: ProcessorId) -> bool:
        """True if a processor with id *pid* is registered."""
        return pid in self._processors

    def registered_ids(self) -> list[ProcessorId]:
        """All registered processor ids, ascending.

        Infrastructure that needs a fresh id on an already-wired network
        (e.g. the failure detector's hub processor) picks
        ``max(registered_ids()) + 1`` so it never collides with counter
        processors.
        """
        return sorted(self._processors)

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def register(self, processor: Processor) -> Processor:
        """Register *processor* under its id and attach it to this network.

        Registering two processors under the same id is an error — ids are
        the paper's unique identities.
        """
        if processor.pid in self._processors:
            raise DuplicateProcessorError(
                f"processor id {processor.pid} is already registered"
            )
        processor.attach(self)
        self._processors[processor.pid] = processor
        # Dispatch table: the fast drain loops jump straight to the
        # handler, skipping the per-message dict + attribute lookups.
        self._handlers[processor.pid] = processor.on_message
        return processor

    def register_all(self, processors: list[Processor]) -> None:
        """Register every processor in *processors*."""
        for processor in processors:
            self.register(processor)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan: FaultPlan) -> None:
        """Install *plan* and swap the send path to the faulty variant.

        The clean :meth:`send` stays untouched at class level — networks
        without a plan pay nothing and produce byte-identical traces.
        Installing rebinds ``send`` on this instance only.  Install
        before traffic starts; the plan's ledger is per-network-run.
        Faulty sends schedule through the compatible queue, so a fast
        core migrates first.
        """
        self._ensure_compat_core()
        self._fault_plan = plan
        self.send = self._send_faulty  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Schedule exploration
    # ------------------------------------------------------------------
    @property
    def scheduler_hook(self) -> SchedulerHook | None:
        """The event queue's installed tie-break hook (``None`` = FIFO)."""
        return self._queue.scheduler_hook

    def install_scheduler_hook(self, hook: SchedulerHook | None) -> None:
        """Install (or with ``None`` remove) a tie-break arbiter.

        Forwarded to :meth:`EventQueue.install_hook`: while installed,
        equal-time events run in the order the hook chooses rather than
        FIFO.  This is the schedule explorer's control point; ordinary
        runs never install one and keep the zero-overhead loop.  Both
        :meth:`reset` and :meth:`EventQueue.clear` drop the hook, so a
        reused substrate cannot leak one exploration's tie-break state
        into the next run.  The fast core does not arbitrate ties, so
        installing a hook migrates pending events to the compatible
        queue first; removing one (``None``) never migrates.
        """
        if hook is not None:
            self._ensure_compat_core()
        self._queue.install_hook(hook)

    # ------------------------------------------------------------------
    # Core migration
    # ------------------------------------------------------------------
    def _ensure_compat_core(self) -> None:
        """Switch to the compatible ``heapq`` queue, carrying state over.

        Pending entries transfer in execution order onto a fresh
        :class:`EventQueue` (so their relative order — and therefore the
        trace — is unchanged), simulated time is preserved, and the
        drain strategy drops back to the queue's generic loop.  No-op on
        a network already running the compatible core.
        """
        if not self._fast:
            return
        old = self._queue
        new = EventQueue()
        new._now = old._now
        heap = new._heap
        counter = new._counter
        deliver = self._deliver
        for time, item in old._pending_in_order():
            if type(item) is _Local:
                heappush(heap, (time, next(counter), item.action, item.arg))
            else:
                heappush(heap, (time, next(counter), deliver, item))
        old.clear()
        self._queue = new
        self._fast = False
        self._drain = new.run_many

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        sender: ProcessorId,
        receiver: ProcessorId,
        kind: str,
        payload: Mapping[str, Any],
    ) -> Message:
        """Send one message; called via :meth:`Processor.send`.

        The message inherits the active operation index, receives a unique
        uid, and is scheduled for delivery after the policy's delay.
        Under ``FULL`` tracing the payload is defensively copied (records
        outlive the send); the fast tiers pass the caller's mapping
        through.
        """
        if receiver not in self._processors:
            raise UnknownProcessorError(
                f"message from {sender} addressed to unknown processor {receiver}"
            )
        queue = self._queue
        uid = self._next_uid
        self._next_uid = uid + 1
        if self._copy_payloads:
            payload = dict(payload)
        now = queue._now
        message = _tuple_new(
            Message, (sender, receiver, kind, payload, self._active_op, uid, now)
        )
        self._in_flight += 1
        delay = self._constant_delay
        if delay is None:
            delay = self._policy_delay(message)
            if delay < 0:
                raise ValueError(
                    f"policy {self._policy!r} returned negative delay {delay}"
                )
        if self._fast:
            # Inlined FlatEventQueue._append: the message rides bare in
            # its time bucket — no per-event tuple, no heap traffic
            # unless the timestamp is new.
            time = now + delay
            buckets = queue._buckets
            bucket = buckets.get(time)
            if bucket is None:
                free = queue._free
                bucket = free.pop() if free else []
                buckets[time] = bucket
                heappush(queue._times, time)
            bucket.append(message)
            queue._len += 1
        else:
            # Inlined EventQueue.schedule_call: one send is one heap
            # entry, with the message riding in it instead of a closure.
            heappush(
                queue._heap,
                (now + delay, next(queue._counter), self._deliver, message),
            )
        return message

    def _send_faulty(
        self,
        sender: ProcessorId,
        receiver: ProcessorId,
        kind: str,
        payload: Mapping[str, Any],
    ) -> Message:
        """The send path with a fault plan installed.

        Mirrors :meth:`send` (keep in sync) up to scheduling: the plan
        is consulted once per message and may drop it (no heap entry, no
        in-flight increment — a lost message cannot block quiescence),
        duplicate it (one heap entry per copy, all sharing the uid),
        boost its delay, or rewrite its payload (Byzantine rules: the
        corrupted message is what gets delivered).  Every injected
        fault lands in the plan's ledger and, levels permitting, the
        trace.
        """
        if receiver not in self._processors:
            raise UnknownProcessorError(
                f"message from {sender} addressed to unknown processor {receiver}"
            )
        queue = self._queue
        uid = self._next_uid
        self._next_uid = uid + 1
        if self._copy_payloads:
            payload = dict(payload)
        now = queue._now
        message = _tuple_new(
            Message, (sender, receiver, kind, payload, self._active_op, uid, now)
        )
        delay = self._constant_delay
        if delay is None:
            delay = self._policy_delay(message)
            if delay < 0:
                raise ValueError(
                    f"policy {self._policy!r} returned negative delay {delay}"
                )
        outcome = self._fault_plan.consult(message, now, now + delay)
        if outcome is None:
            self._in_flight += 1
            heappush(
                queue._heap,
                (now + delay, next(queue._counter), self._deliver, message),
            )
            return message
        trace = self._trace
        for record in outcome.records:
            trace.record_fault(record)
        deliver = self._deliver
        counter = queue._counter
        heap = queue._heap
        # A Byzantine rewrite replaces what goes on the wire (same uid,
        # same endpoints); the caller still gets the message it sent.
        delivered = outcome.message if outcome.message is not None else message
        for time in outcome.delivery_times:
            self._in_flight += 1
            heappush(heap, (time, next(counter), deliver, delivered))
        return message

    def _deliver_full(self, message: Message) -> None:
        """Deliver under ``FULL`` tracing: record, then run the handler."""
        self._in_flight -= 1
        sender, pid, kind, _, op_index, uid, send_time = message
        self._trace.record(
            _tuple_new(
                MessageRecord,
                (sender, pid, kind, op_index, uid, send_time, self._queue._now),
            )
        )
        receiver = self._processors[pid]
        previous_op = self._active_op
        if op_index == previous_op:
            receiver.on_message(message)
            return
        self._active_op = op_index
        try:
            receiver.on_message(message)
        finally:
            self._active_op = previous_op

    def _deliver_loads(self, message: Message) -> None:
        """Deliver under ``LOADS`` tracing: counters only, no record.

        The counter updates are :meth:`Trace.count` inlined onto the
        pre-bound dicts — they are the entire cost of LOADS tracing, so
        they run without a method call.  Keep in sync with
        :meth:`repro.sim.trace.Trace.count`.
        """
        self._in_flight -= 1
        # Message tuple layout: (sender, receiver, kind, payload, op_index,
        # uid, send_time) — indexed access skips the descriptor lookups.
        sender = message[0]
        pid = message[1]
        op_index = message[4]
        self._trace._total += 1
        self._sent_counts[sender] += 1
        self._received_counts[pid] += 1
        if op_index != NO_OP:
            self._op_counts[op_index] += 1
            footprint = self._footprints.get(op_index)
            if footprint is None:
                self._footprints[op_index] = {sender, pid}
            else:
                footprint.add(sender)
                footprint.add(pid)
        receiver = self._processors[pid]
        previous_op = self._active_op
        if op_index == previous_op:
            receiver.on_message(message)
            return
        self._active_op = op_index
        try:
            receiver.on_message(message)
        finally:
            self._active_op = previous_op

    def _deliver_off(self, message: Message) -> None:
        """Deliver under ``OFF`` tracing: run the handler, keep nothing."""
        self._in_flight -= 1
        receiver = self._processors[message[1]]
        op_index = message[4]
        previous_op = self._active_op
        if op_index == previous_op:
            receiver.on_message(message)
            return
        self._active_op = op_index
        try:
            receiver.on_message(message)
        finally:
            self._active_op = previous_op

    # ------------------------------------------------------------------
    # Local events (operation initiation, timers)
    # ------------------------------------------------------------------
    def inject(
        self,
        action: Callable[[], None],
        op_index: OpIndex = NO_OP,
        delay: float = 0.0,
    ) -> None:
        """Schedule a local *action* attributed to operation *op_index*.

        This models the paper's operation requests: an ``inc`` "initiates a
        process" at its requesting processor without itself being a
        message.  Messages sent from within *action* belong to *op_index*.
        """

        def run() -> None:
            previous_op = self._active_op
            self._active_op = op_index
            try:
                action()
            finally:
                self._active_op = previous_op

        self._queue.schedule(delay, run)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until_quiescent(self) -> int:
        """Execute events until none remain; return how many ran.

        Quiescence — an empty event queue — is the paper's termination
        condition for an ``inc`` process.  Raises
        :class:`~repro.errors.SimulationLimitError` if the event budget is
        exhausted, which indicates a protocol livelock.  The budget is
        checked once per batch of events (sized so the check never runs
        past the limit by more than one event) rather than per event.
        """
        queue = self._queue
        limit = self._event_limit
        drain = self._drain
        executed = 0
        while queue:
            batch = limit - self._events_executed + 1
            if batch > _LIMIT_CHECK_BATCH:
                batch = _LIMIT_CHECK_BATCH
            ran = drain(batch)
            executed += ran
            self._events_executed += ran
            if self._events_executed > limit:
                raise self._limit_error()
        return executed

    def step(self) -> bool:
        """Execute the single earliest pending event; ``False`` if none.

        The single-step entry point of the runtime seam
        (:mod:`repro.runtime`): cooperative schedulers interleave other
        work between events, so they pull one event at a time instead of
        using the fused drain loops.  Event-limit accounting matches
        :meth:`run_until_quiescent` (checked per event here — a stepped
        run is never hot enough for the batch optimization to matter).
        """
        if not self._queue:
            return False
        self._queue.run_next()
        self._events_executed += 1
        if self._events_executed > self._event_limit:
            raise self._limit_error()
        return True

    def _limit_error(self) -> SimulationLimitError:
        """Build the (context-enriched) event-budget exhaustion error."""
        context = self._run_context
        suffix = f" while running {context}" if context else ""
        if self._fault_plan is not None:
            suffix += f" under fault plan {self._fault_plan.spec!r}"
        return SimulationLimitError(
            f"exceeded event limit of {self._event_limit} "
            f"({self._events_executed} events executed, "
            f"{self._in_flight} messages in flight){suffix}; "
            "the protocol appears not to quiesce — raise "
            "event_limit for genuinely long runs, or suspect a "
            "retransmission/livelock loop",
            events_executed=self._events_executed,
            in_flight=self._in_flight,
            context=context,
        )

    def _drain_fast_off(self, limit: int) -> int:
        """Fused bucket drain, ``OFF`` tracing: dispatch and nothing else.

        Walks the fast queue's buckets in time order with the queue's
        cursor held in locals; messages jump straight to the dispatch
        table.  Queue length, the in-flight count and the active
        operation are reconciled once in the ``finally`` — ``send``
        updates ``_len``/``_in_flight`` through the instance during the
        loop, so only this loop's own deltas are applied there.  Keep
        the three ``_drain_fast_*`` variants in sync; they differ only
        in the inlined trace updates.
        """
        queue = self._queue
        buckets = queue._buckets
        times = queue._times
        free = queue._free
        handlers = self._handlers
        bucket = queue._active
        pos = queue._active_pos
        ran = 0
        delivered = 0
        previous_op = self._active_op
        try:
            while ran < limit:
                if bucket is None or pos >= len(bucket):
                    if bucket is not None:
                        del buckets[queue._now]
                        bucket.clear()
                        free.append(bucket)
                        bucket = queue._active = None
                    if not times:
                        break
                    time = heappop(times)
                    bucket = buckets[time]
                    queue._now = time
                    queue._active = bucket
                    pos = 0
                    continue
                item = bucket[pos]
                bucket[pos] = None
                pos += 1
                ran += 1
                if type(item) is _Local:
                    action = item.action
                    arg = item.arg
                    if arg is _NO_ARG:
                        action()
                    else:
                        action(arg)
                else:
                    delivered += 1
                    op_index = item[4]
                    if op_index != self._active_op:
                        self._active_op = op_index
                    handlers[item[1]](item)
        finally:
            queue._active_pos = pos if bucket is not None else 0
            queue._len -= ran
            self._in_flight -= delivered
            self._active_op = previous_op
        return ran

    def _drain_fast_loads(self, limit: int) -> int:
        """Fused bucket drain, ``LOADS`` tracing.

        :meth:`_drain_fast_off` plus the columnar counter updates of
        :meth:`~repro.sim.trace.Trace.count` inlined onto the pre-bound
        dicts (keep in sync with it and with :meth:`_deliver_loads`).
        """
        queue = self._queue
        buckets = queue._buckets
        times = queue._times
        free = queue._free
        handlers = self._handlers
        trace = self._trace
        sent_counts = self._sent_counts
        received_counts = self._received_counts
        op_counts = self._op_counts
        footprints = self._footprints
        bucket = queue._active
        pos = queue._active_pos
        ran = 0
        delivered = 0
        previous_op = self._active_op
        try:
            while ran < limit:
                if bucket is None or pos >= len(bucket):
                    if bucket is not None:
                        del buckets[queue._now]
                        bucket.clear()
                        free.append(bucket)
                        bucket = queue._active = None
                    if not times:
                        break
                    time = heappop(times)
                    bucket = buckets[time]
                    queue._now = time
                    queue._active = bucket
                    pos = 0
                    continue
                item = bucket[pos]
                bucket[pos] = None
                pos += 1
                ran += 1
                if type(item) is _Local:
                    action = item.action
                    arg = item.arg
                    if arg is _NO_ARG:
                        action()
                    else:
                        action(arg)
                else:
                    delivered += 1
                    sender = item[0]
                    pid = item[1]
                    op_index = item[4]
                    trace._total += 1
                    sent_counts[sender] += 1
                    received_counts[pid] += 1
                    if op_index != NO_OP:
                        op_counts[op_index] += 1
                        footprint = footprints.get(op_index)
                        if footprint is None:
                            footprints[op_index] = {sender, pid}
                        else:
                            footprint.add(sender)
                            footprint.add(pid)
                    if op_index != self._active_op:
                        self._active_op = op_index
                    handlers[pid](item)
        finally:
            queue._active_pos = pos if bucket is not None else 0
            queue._len -= ran
            self._in_flight -= delivered
            self._active_op = previous_op
        return ran

    def _drain_fast_full(self, limit: int) -> int:
        """Fused bucket drain, ``FULL`` tracing.

        :meth:`_drain_fast_off` plus record materialization and
        :meth:`~repro.sim.trace.Trace.record` inlined (keep in sync with
        it and with :meth:`_deliver_full`) — unlike ``LOADS``, FULL
        indexes ``NO_OP`` traffic in the per-operation views too.
        """
        queue = self._queue
        buckets = queue._buckets
        times = queue._times
        free = queue._free
        handlers = self._handlers
        trace = self._trace
        records = trace._records
        by_op = trace._by_op
        sent_counts = self._sent_counts
        received_counts = self._received_counts
        op_counts = self._op_counts
        footprints = self._footprints
        bucket = queue._active
        pos = queue._active_pos
        ran = 0
        delivered = 0
        previous_op = self._active_op
        try:
            while ran < limit:
                if bucket is None or pos >= len(bucket):
                    if bucket is not None:
                        del buckets[queue._now]
                        bucket.clear()
                        free.append(bucket)
                        bucket = queue._active = None
                    if not times:
                        break
                    time = heappop(times)
                    bucket = buckets[time]
                    queue._now = time
                    queue._active = bucket
                    pos = 0
                    continue
                item = bucket[pos]
                bucket[pos] = None
                pos += 1
                ran += 1
                if type(item) is _Local:
                    action = item.action
                    arg = item.arg
                    if arg is _NO_ARG:
                        action()
                    else:
                        action(arg)
                else:
                    delivered += 1
                    sender = item[0]
                    pid = item[1]
                    op_index = item[4]
                    record = _tuple_new(
                        MessageRecord,
                        (
                            sender,
                            pid,
                            item[2],
                            op_index,
                            item[5],
                            item[6],
                            queue._now,
                        ),
                    )
                    trace._total += 1
                    sent_counts[sender] += 1
                    received_counts[pid] += 1
                    records.append(record)
                    by_op[op_index].append(record)
                    op_counts[op_index] += 1
                    footprint = footprints.get(op_index)
                    if footprint is None:
                        footprints[op_index] = {sender, pid}
                    else:
                        footprint.add(sender)
                        footprint.add(pid)
                    if op_index != self._active_op:
                        self._active_op = op_index
                    handlers[pid](item)
        finally:
            queue._active_pos = pos if bucket is not None else 0
            queue._len -= ran
            self._in_flight -= delivered
            self._active_op = previous_op
        return ran

    def reset(self) -> None:
        """Reset the substrate for a fresh run with the same topology.

        Clears the event queue (time returns to zero), zeroes the
        in-flight and executed-event counters, restarts message uids,
        starts a fresh trace at the same level, forks the delivery
        policy (seeded policies replay from scratch) and resets the
        fault plan's generator and ledger, and drops any installed
        scheduler hook (clearing the queue removes it, so back-to-back
        explorations cannot leak tie-break state).  Registered
        processors stay registered; their *protocol* state is theirs to
        reset — this is a substrate-level reuse hook for harnesses that
        rebuild counters on a long-lived network.
        """
        self._queue.clear()
        self._in_flight = 0
        self._events_executed = 0
        self._next_uid = 0
        self._active_op = NO_OP
        self._policy = self._policy.fork()
        self._policy_delay = self._policy.delay
        self._constant_delay = getattr(self._policy, "constant_delay", None)
        self._trace = Trace(level=self._trace_level)
        self._sent_counts = self._trace._sent
        self._received_counts = self._trace._received
        self._op_counts = self._trace._op_counts
        self._footprints = self._trace._footprints
        if self._fault_plan is not None:
            self._fault_plan.reset()

    def is_quiescent(self) -> bool:
        """True if no event (message or local action) is pending."""
        return len(self._queue) == 0

    @property
    def in_flight(self) -> int:
        """Number of messages currently in flight."""
        return self._in_flight
