"""The asynchronous message-passing network simulator.

This is the substrate the whole reproduction runs on.  It provides:

* registration of :class:`~repro.sim.processor.Processor` programs under
  their ids (the paper's processors ``1 .. n``);
* :meth:`Network.send` — the only way any message moves, so the trace is a
  complete ledger;
* operation attribution — every message inherits the ``inc`` operation of
  the event that caused it, which makes the paper's per-operation
  footprints ``I_p`` exact even under concurrency;
* :meth:`Network.run_until_quiescent` — execute events until no message is
  in flight, which is precisely the paper's "the inc process terminates as
  soon as no further messages are sent" (§2).

Determinism: given the same processors, policy and injection sequence, two
runs produce identical traces.  All randomness lives inside the seeded
delivery policy.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import SimulationLimitError, UnknownProcessorError
from repro.sim.events import EventQueue
from repro.sim.messages import NO_OP, Message, MessageRecord, OpIndex, ProcessorId
from repro.sim.policies import DeliveryPolicy, UnitDelay
from repro.sim.processor import Processor
from repro.sim.trace import Trace

DEFAULT_EVENT_LIMIT = 5_000_000
"""Safety valve: a run consuming this many events is assumed to be stuck."""


class Network:
    """A simulated asynchronous point-to-point network.

    Any processor can message any other processor directly (the paper's
    complete communication topology).  Messages are delayed by the
    delivery policy and never lost, duplicated or corrupted — the paper's
    failure-free model.
    """

    def __init__(
        self,
        policy: DeliveryPolicy | None = None,
        event_limit: int = DEFAULT_EVENT_LIMIT,
    ) -> None:
        self._policy = policy or UnitDelay()
        self._queue = EventQueue()
        self._processors: dict[ProcessorId, Processor] = {}
        self._trace = Trace()
        self._active_op: OpIndex = NO_OP
        self._next_uid = 0
        self._in_flight = 0
        self._event_limit = event_limit
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._queue.now

    @property
    def trace(self) -> Trace:
        """The execution trace (read for analysis; never mutate)."""
        return self._trace

    @property
    def policy(self) -> DeliveryPolicy:
        """The delivery policy in force."""
        return self._policy

    @property
    def active_op(self) -> OpIndex:
        """Operation index the currently executing event belongs to."""
        return self._active_op

    @property
    def processor_count(self) -> int:
        """Number of registered processors."""
        return len(self._processors)

    @property
    def events_executed(self) -> int:
        """Total events executed since construction (messages + local)."""
        return self._events_executed

    def processor(self, pid: ProcessorId) -> Processor:
        """Return the registered processor *pid* or raise."""
        try:
            return self._processors[pid]
        except KeyError:
            raise UnknownProcessorError(f"no processor with id {pid}") from None

    def has_processor(self, pid: ProcessorId) -> bool:
        """True if a processor with id *pid* is registered."""
        return pid in self._processors

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def register(self, processor: Processor) -> Processor:
        """Register *processor* under its id and attach it to this network.

        Registering two processors under the same id is an error — ids are
        the paper's unique identities.
        """
        if processor.pid in self._processors:
            raise UnknownProcessorError(
                f"processor id {processor.pid} is already registered"
            )
        processor.attach(self)
        self._processors[processor.pid] = processor
        return processor

    def register_all(self, processors: list[Processor]) -> None:
        """Register every processor in *processors*."""
        for processor in processors:
            self.register(processor)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        sender: ProcessorId,
        receiver: ProcessorId,
        kind: str,
        payload: Mapping[str, Any],
    ) -> Message:
        """Send one message; called via :meth:`Processor.send`.

        The message inherits the active operation index, receives a unique
        uid, and is scheduled for delivery after the policy's delay.
        """
        if receiver not in self._processors:
            raise UnknownProcessorError(
                f"message from {sender} addressed to unknown processor {receiver}"
            )
        message = Message(
            sender=sender,
            receiver=receiver,
            kind=kind,
            payload=dict(payload),
            op_index=self._active_op,
            uid=self._next_uid,
            send_time=self.now,
        )
        self._next_uid += 1
        self._in_flight += 1
        delay = self._policy.delay(message)
        self._queue.schedule(delay, lambda: self._deliver(message))
        return message

    def _deliver(self, message: Message) -> None:
        """Deliver *message*: record it, then run the receiver's handler."""
        self._in_flight -= 1
        record = MessageRecord.from_message(message, deliver_time=self.now)
        self._trace.record(record)
        receiver = self._processors[message.receiver]
        previous_op = self._active_op
        self._active_op = message.op_index
        try:
            receiver.on_message(message)
        finally:
            self._active_op = previous_op

    # ------------------------------------------------------------------
    # Local events (operation initiation, timers)
    # ------------------------------------------------------------------
    def inject(
        self,
        action: Callable[[], None],
        op_index: OpIndex = NO_OP,
        delay: float = 0.0,
    ) -> None:
        """Schedule a local *action* attributed to operation *op_index*.

        This models the paper's operation requests: an ``inc`` "initiates a
        process" at its requesting processor without itself being a
        message.  Messages sent from within *action* belong to *op_index*.
        """

        def run() -> None:
            previous_op = self._active_op
            self._active_op = op_index
            try:
                action()
            finally:
                self._active_op = previous_op

        self._queue.schedule(delay, run)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until_quiescent(self) -> int:
        """Execute events until none remain; return how many ran.

        Quiescence — an empty event queue — is the paper's termination
        condition for an ``inc`` process.  Raises
        :class:`~repro.errors.SimulationLimitError` if the event budget is
        exhausted, which indicates a protocol livelock.
        """
        executed = 0
        while self._queue:
            self._queue.run_next()
            executed += 1
            self._events_executed += 1
            if self._events_executed > self._event_limit:
                raise SimulationLimitError(
                    f"exceeded event limit of {self._event_limit}; "
                    "the protocol appears not to quiesce"
                )
        return executed

    def is_quiescent(self) -> bool:
        """True if no event (message or local action) is pending."""
        return len(self._queue) == 0

    @property
    def in_flight(self) -> int:
        """Number of messages currently in flight."""
        return self._in_flight
