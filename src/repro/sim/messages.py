"""Message and message-record types for the simulator.

The paper's cost measure is the *message load*: the number of messages a
processor sends or receives (§3, "Definitions").  Everything in this module
exists to make that quantity exact and auditable — each network-level send
produces exactly one :class:`Message` and, once delivered, exactly one
:class:`MessageRecord` in the trace (at trace levels that keep records).

Both types are :class:`typing.NamedTuple` subclasses rather than frozen
dataclasses: the simulator constructs one of each per delivered message,
and tuple allocation is several times cheaper than a frozen dataclass's
``object.__setattr__`` chain.  They remain immutable — assigning to a
field raises :class:`AttributeError` — and keep keyword construction,
defaults, equality and reprs.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Mapping, NamedTuple

ProcessorId = int
"""Processors are identified by the integers ``1 .. n`` as in the paper."""

OpIndex = int
"""Zero-based index of an ``inc`` operation inside an operation sequence."""

NO_OP: OpIndex = -1
"""Sentinel op index for traffic outside any tracked operation."""

_EMPTY_PAYLOAD: Mapping[str, Any] = MappingProxyType({})
"""Shared immutable default payload (a mapping proxy, so it cannot be
mutated through the default)."""


class Message(NamedTuple):
    """A single point-to-point message in flight.

    Attributes:
        sender: processor id that sent the message.
        receiver: processor id the message is addressed to.
        kind: protocol-level message type, e.g. ``"inc"`` or ``"retire"``.
        payload: immutable-by-convention mapping with protocol data.
        op_index: the ``inc`` operation this message causally belongs to.
        uid: unique, monotonically increasing id assigned by the network.
        send_time: simulated time at which the message was sent.
    """

    sender: ProcessorId
    receiver: ProcessorId
    kind: str
    payload: Mapping[str, Any] = _EMPTY_PAYLOAD
    op_index: OpIndex = NO_OP
    uid: int = -1
    send_time: float = 0.0

    def __str__(self) -> str:
        return (
            f"[op {self.op_index}] {self.sender} -> {self.receiver}: "
            f"{self.kind} {dict(self.payload)!r}"
        )


class MessageRecord(NamedTuple):
    """A delivered message, as recorded in the execution trace.

    Identical to :class:`Message` plus the delivery time.  Records are what
    the analysis layer consumes: loads, footprints and communication DAGs
    are all derived from sequences of records.
    """

    sender: ProcessorId
    receiver: ProcessorId
    kind: str
    op_index: OpIndex
    uid: int
    send_time: float
    deliver_time: float

    @classmethod
    def from_message(cls, message: Message, deliver_time: float) -> "MessageRecord":
        """Build a record for *message* delivered at *deliver_time*."""
        return cls(
            sender=message.sender,
            receiver=message.receiver,
            kind=message.kind,
            op_index=message.op_index,
            uid=message.uid,
            send_time=message.send_time,
            deliver_time=deliver_time,
        )

    def endpoints(self) -> tuple[ProcessorId, ProcessorId]:
        """Return ``(sender, receiver)`` — the two loaded processors."""
        return (self.sender, self.receiver)

    def __str__(self) -> str:
        return (
            f"[op {self.op_index}] t={self.send_time:g}->{self.deliver_time:g} "
            f"{self.sender} -> {self.receiver}: {self.kind}"
        )
