"""The processor abstraction: a message-driven program with an identity.

A processor owns no threads; it is a pure event handler.  The network
delivers one message at a time to :meth:`Processor.on_message`, during
which the processor may update local state and send further messages.
This mirrors the paper's model: unbounded local memory, no shared memory,
communication only by point-to-point messages (§2).

Processors send exclusively through :meth:`Processor.send`, which routes
through the owning network — so every message is delayed by the delivery
policy and accounted in the trace.  There is deliberately no back door.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import SimulationError
from repro.sim.messages import Message, ProcessorId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.network import Network


class Processor(ABC):
    """Base class for all simulated processor programs.

    Subclasses implement :meth:`on_message` and may define additional
    entry points invoked via :meth:`Network.inject` (for example, an
    ``inc`` initiation, which the paper models as a local request rather
    than a message).
    """

    def __init__(self, pid: ProcessorId) -> None:
        if pid <= 0:
            raise ValueError(f"processor ids are positive integers, got {pid}")
        self.pid = pid
        self._network: "Network | None" = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def network(self) -> "Network":
        """The network this processor is registered with."""
        if self._network is None:
            raise SimulationError(
                f"processor {self.pid} is not registered with a network"
            )
        return self._network

    def attach(self, network: "Network") -> None:
        """Called by :meth:`Network.register`; not for direct use."""
        if self._network is not None and self._network is not network:
            raise SimulationError(
                f"processor {self.pid} is already attached to another network"
            )
        self._network = network

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(
        self,
        receiver: ProcessorId,
        kind: str,
        payload: Mapping[str, Any] | None = None,
    ) -> None:
        """Send one message to *receiver* through the network.

        The message is attributed to the operation currently executing on
        the network, is delayed by the delivery policy, and adds one unit
        of load to both endpoints when delivered.
        """
        self.network.send(self.pid, receiver, kind, payload or {})

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    @abstractmethod
    def on_message(self, message: Message) -> None:
        """Handle one delivered message.

        Runs atomically: no other delivery interleaves with this call.
        """


class InertProcessor(Processor):
    """A processor that ignores every message.

    Useful as a placeholder for processors that exist in the id space but
    play no active role in a given protocol (and in tests that need a
    registered-but-passive endpoint).
    """

    def on_message(self, message: Message) -> None:  # noqa: ARG002
        return None
