"""Opt-in fault injection: breaking the paper's failure-free promise.

The paper's model (§2) guarantees messages are "never lost, duplicated
or corrupted".  This module is the deliberate, *opt-in* departure from
that guarantee: a seeded, deterministic :class:`FaultPlan` the network
consults on its send path.  With no plan installed the simulator is
byte-identical to the failure-free substrate (the faulty send path is
swapped in only by :meth:`~repro.sim.network.Network.install_fault_plan`,
so the clean path carries zero extra work); with a plan installed, every
injected fault becomes a first-class :class:`FaultRecord` in both the
plan's ledger and the execution trace.

A plan composes :class:`FaultRule` instances, evaluated in order per
message:

* :class:`DropRule` — lose a message with some probability;
* :class:`DuplicateRule` — deliver extra copies with some probability;
* :class:`ReorderRule` — boost a message's delay with some probability,
  forcing reorderings far beyond what the delivery policy produces;
* :class:`PartitionRule` — drop every message crossing a two-group cut
  during a time window;
* :class:`CrashRule` — a processor is down during a window: it neither
  sends (messages sent while crashed are lost) nor receives (messages
  that would arrive while it is down are lost).
* :class:`CorruptRule` / :class:`EquivocateRule` / :class:`SilenceRule` /
  :class:`MixedRule` — *Byzantine* rules: a seeded budget of ``f``
  compromised processors whose outgoing messages are rewritten
  (``corrupt``), rewritten differently per receiver (``equivocate``),
  selectively withheld (``silence``), or any of the three per message
  (``mixed``).  The compromised set is fixed by
  :meth:`FaultPlan.bind_clients` once the population size is known;
  the schedule explorer can take over both the set and the per-message
  rule choice via :meth:`FaultPlan.install_adversary`.

Determinism: all randomness lives in the plan's seeded generator, rules
are evaluated in a fixed order, and a rule draws only when it is
reached, so two runs with equal seeds inject identical faults.  The
plan :meth:`FaultPlan.fork`/:meth:`FaultPlan.reset` contract mirrors
:meth:`~repro.sim.policies.DeliveryPolicy.fork`: forks are independent
and equivalently seeded, which is what keeps parallel sweep workers
isolated.

Fault specs are strings for the CLI/sweep layer
(:func:`parse_fault_spec`)::

    drop=0.05,dup=0.01,reorder=0.1,crash=3@t50,partition=1..4|5..8@t10-t50
    byz=1@corrupt                 (budget of 1 Byzantine processor)

A ``recover=PID@tT`` clause turns a crash into a crash-*with-recovery*:
it truncates the matching crash window at ``T`` (links restored from
``T`` on) and records a :class:`RecoveryPoint` that the recovery layer
(:mod:`repro.sim.recovery`) turns into a checkpoint-restore event at
time ``T``.  ``crash=3@t50,recover=3@t90`` is therefore canonically
``crash=3@t50-t90,recover=3@t90``: the wire behaviour is the finite
window, the recovery point is the extra promise that processor 3 comes
back *with its role and state restored*, not merely with live links.

Loads under faults: the trace counts *delivered* messages, so a dropped
message adds load to nobody — the retransmission that replaces it (see
:mod:`repro.sim.transport`) is what shows up in ``m_p``.  Duplicates are
real traffic and are counted per delivered copy.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import NamedTuple, Sequence

from repro.errors import ConfigurationError
from repro.sim.messages import Message, OpIndex, ProcessorId

__all__ = [
    "BYZANTINE_STRATEGIES",
    "ByzantineRule",
    "CorruptRule",
    "CrashRule",
    "DropRule",
    "DuplicateRule",
    "EquivocateRule",
    "FaultOutcome",
    "FaultPlan",
    "FaultRecord",
    "FaultRule",
    "MixedRule",
    "PartitionRule",
    "RecoveryPoint",
    "ReorderRule",
    "SilenceRule",
    "canonical_fault_spec",
    "make_byzantine_rule",
    "parse_fault_spec",
]


class FaultRecord(NamedTuple):
    """One injected fault, as recorded by the plan and the trace.

    Attributes:
        time: simulated send time of the affected message.
        kind: fault family — ``"drop"``, ``"duplicate"``, ``"reorder"``,
            ``"partition"`` or ``"crash"`` for wire faults, and
            ``"corrupt"``, ``"equivocate"`` or ``"silence"`` for the
            Byzantine rules; the recovery layer additionally records
            ``"suspect"``, ``"restore"`` and ``"recover"`` events
            through the same channel.
        sender: sender of the affected message.
        receiver: receiver of the affected message.
        op_index: operation the affected message belongs to.
        uid: network uid of the affected message.
        detail: human-readable specifics (copies added, boost size, ...).
    """

    time: float
    kind: str
    sender: ProcessorId
    receiver: ProcessorId
    op_index: OpIndex
    uid: int
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"[t={self.time:g}] {self.kind} {self.sender}->{self.receiver} "
            f"(op {self.op_index}, uid {self.uid}) {self.detail}"
        )


class _Effect(NamedTuple):
    """One rule's contribution to a message's fate (internal)."""

    drop_reason: str | None = None
    detail: str = ""
    copy_delays: tuple[float, ...] = ()
    extra_delay: float = 0.0
    replace: Message | None = None
    kind: str = ""


class FaultOutcome(NamedTuple):
    """What the plan decided for one message (``None`` means untouched).

    Attributes:
        delivery_times: absolute simulated times at which copies of the
            message are delivered; empty when the message was dropped.
        records: the :class:`FaultRecord` entries the decision produced.
        message: a rewritten message to deliver in place of the
            original (same uid, same endpoints — only the payload
            lies), or ``None`` when the content is untouched.  Only
            Byzantine rules produce rewrites.
    """

    delivery_times: tuple[float, ...]
    records: tuple[FaultRecord, ...]
    message: Message | None = None


class FaultRule(ABC):
    """One composable ingredient of a :class:`FaultPlan`.

    Rules are evaluated in plan order for every sent message.  A rule
    that drops the message short-circuits the rest; non-dropping effects
    (duplicates, delay boosts) accumulate.
    """

    #: True if this rule can ever lose a message — plans containing a
    #: lossy rule require counters to run behind the reliable transport.
    can_drop: bool = False

    @abstractmethod
    def judge(
        self,
        message: Message,
        send_time: float,
        deliver_time: float,
        rng: random.Random,
    ) -> _Effect | None:
        """Return this rule's effect on *message*, or ``None`` for none."""

    @abstractmethod
    def spec_fragment(self) -> str:
        """The rule's canonical fault-spec fragment."""

    def fork(self) -> "FaultRule":
        """A fresh, equivalently configured rule (stateless rules: self)."""
        return self

    def reset(self) -> None:
        """Clear per-run state for network reuse (stateless rules: no-op)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec_fragment()!r})"


def _check_probability(name: str, probability: float) -> float:
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(
            f"{name} probability must be in [0, 1], got {probability}"
        )
    return float(probability)


class DropRule(FaultRule):
    """Lose each message independently with probability *probability*."""

    def __init__(self, probability: float) -> None:
        self.probability = _check_probability("drop", probability)
        self.can_drop = self.probability > 0.0

    def judge(self, message, send_time, deliver_time, rng):
        if self.probability and rng.random() < self.probability:
            return _Effect(drop_reason="drop", detail=f"p={self.probability}")
        return None

    def spec_fragment(self) -> str:
        return f"drop={self.probability:g}"


class DuplicateRule(FaultRule):
    """Deliver *copies* extra copies with probability *probability*.

    Extra copies are delayed by an additional uniform draw in
    ``[0, spread]`` beyond the original delivery time, so duplicates
    arrive out of order with the original — the worst case a
    deduplicating transport must handle.
    """

    def __init__(
        self, probability: float, copies: int = 1, spread: float = 10.0
    ) -> None:
        self.probability = _check_probability("dup", probability)
        if copies < 1:
            raise ConfigurationError(f"dup copies must be >= 1, got {copies}")
        if spread < 0:
            raise ConfigurationError(f"dup spread must be >= 0, got {spread}")
        self.copies = int(copies)
        self.spread = float(spread)

    def judge(self, message, send_time, deliver_time, rng):
        if self.probability and rng.random() < self.probability:
            delays = tuple(
                rng.uniform(0.0, self.spread) for _ in range(self.copies)
            )
            return _Effect(
                detail=f"+{self.copies} copies", copy_delays=delays
            )
        return None

    def spec_fragment(self) -> str:
        if self.copies == 1:
            return f"dup={self.probability:g}"
        return f"dup={self.probability:g}x{self.copies}"


class ReorderRule(FaultRule):
    """Boost a message's delay with probability *probability*.

    The boost is a uniform draw in ``[0, max_boost]`` added to the
    policy's delay — enough to push a message behind traffic sent long
    after it, which is the reordering regime FIFO-assuming protocols
    break under.
    """

    def __init__(self, probability: float, max_boost: float = 10.0) -> None:
        self.probability = _check_probability("reorder", probability)
        if max_boost <= 0:
            raise ConfigurationError(
                f"reorder max_boost must be > 0, got {max_boost}"
            )
        self.max_boost = float(max_boost)

    def judge(self, message, send_time, deliver_time, rng):
        if self.probability and rng.random() < self.probability:
            boost = rng.uniform(0.0, self.max_boost)
            return _Effect(detail=f"+{boost:.2f} delay", extra_delay=boost)
        return None

    def spec_fragment(self) -> str:
        if self.max_boost == 10.0:
            return f"reorder={self.probability:g}"
        return f"reorder={self.probability:g}@{self.max_boost:g}"


class PartitionRule(FaultRule):
    """Drop every message crossing the cut between two groups in a window.

    The partition is active for send times in ``[start, end)``.  Messages
    within one group, or with an endpoint outside both groups, pass.
    """

    can_drop = True

    def __init__(
        self,
        group_a: Sequence[ProcessorId],
        group_b: Sequence[ProcessorId],
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)
        if not self.group_a or not self.group_b:
            raise ConfigurationError("partition groups must be non-empty")
        if self.group_a & self.group_b:
            raise ConfigurationError(
                "partition groups must be disjoint, got overlap "
                f"{sorted(self.group_a & self.group_b)}"
            )
        if end <= start:
            raise ConfigurationError(
                f"partition window must satisfy start < end, got "
                f"[{start}, {end})"
            )
        self.start = float(start)
        self.end = float(end)

    def judge(self, message, send_time, deliver_time, rng):
        if not self.start <= send_time < self.end:
            return None
        sender, receiver = message[0], message[1]
        crosses = (sender in self.group_a and receiver in self.group_b) or (
            sender in self.group_b and receiver in self.group_a
        )
        if crosses:
            return _Effect(
                drop_reason="partition",
                detail=f"window [{self.start:g}, {self.end:g})",
            )
        return None

    def spec_fragment(self) -> str:
        def _group(ids: frozenset[ProcessorId]) -> str:
            ordered = sorted(ids)
            if ordered == list(range(ordered[0], ordered[-1] + 1)):
                return f"{ordered[0]}..{ordered[-1]}"
            return "+".join(str(pid) for pid in ordered)

        window = f"@t{self.start:g}" + (
            f"-t{self.end:g}" if self.end != math.inf else ""
        )
        return f"partition={_group(self.group_a)}|{_group(self.group_b)}{window}"


class CrashRule(FaultRule):
    """Processor *pid* is down for send/arrival times in ``[start, end)``.

    While down, the processor sends nothing (messages it would send are
    lost) and receives nothing (messages that would *arrive* during the
    window are lost — the wire eats them, matching a crash that wipes
    the inbound queue).  ``end=inf`` models a crash with no recovery.
    """

    can_drop = True

    def __init__(
        self, pid: ProcessorId, start: float, end: float = math.inf
    ) -> None:
        if pid <= 0:
            raise ConfigurationError(f"crash pid must be positive, got {pid}")
        if end <= start:
            raise ConfigurationError(
                f"crash window must satisfy start < end, got [{start}, {end})"
            )
        self.pid = pid
        self.start = float(start)
        self.end = float(end)

    def judge(self, message, send_time, deliver_time, rng):
        pid = self.pid
        if message[0] == pid and self.start <= send_time < self.end:
            return _Effect(drop_reason="crash", detail=f"sender {pid} down")
        if message[1] == pid and self.start <= deliver_time < self.end:
            return _Effect(drop_reason="crash", detail=f"receiver {pid} down")
        return None

    def spec_fragment(self) -> str:
        window = f"@t{self.start:g}" + (
            f"-t{self.end:g}" if self.end != math.inf else ""
        )
        return f"crash={self.pid}{window}"


#: Strategies accepted by the ``byz=F@STRATEGY`` spec field.
BYZANTINE_STRATEGIES = ("corrupt", "equivocate", "silence", "mixed")

#: Small payload shifts: close enough to honest values that corrupted
#: counter values collide with real ones (agreement violations) or step
#: just outside the issued range (validity violations).
_CORRUPT_DELTAS = (-2, -1, 1, 2, 3)


def _mutate_ints(
    payload: "Mapping[str, object]", rng: random.Random, shift: int
) -> tuple[dict | None, tuple[str, ...]]:
    """Shift every integer field of *payload* by a seeded delta (+ *shift*).

    Returns ``(mutated, changed)`` where *mutated* is ``None`` when the
    payload carries no integers worth lying about.  Booleans are left
    alone (they are ``int`` subclasses but flipping them is a different
    lie).  Fields are visited in sorted order so equal seeds mutate
    identically regardless of payload construction order.
    """
    mutated: dict = {}
    changed: list[str] = []
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, bool) or not isinstance(value, int):
            mutated[key] = value
            continue
        twisted = value + rng.choice(_CORRUPT_DELTAS) + shift
        mutated[key] = twisted
        changed.append(f"{key}:{value}->{twisted}")
    if not changed:
        return None, ()
    return mutated, tuple(changed)


class ByzantineRule(FaultRule):
    """Base class: a budget of ``f`` compromised (lying) processors.

    The rule touches only messages *sent by* a compromised processor.
    Which processors are compromised is not known at parse time (the
    population size isn't): the set is fixed by
    :meth:`FaultPlan.bind_clients`, either from a seeded draw derived
    from the plan seed (so the main fault stream is untouched) or from
    an explorer-supplied chooser.  Consulting an unbound rule is a
    configuration error with an actionable message.

    Sender ids stay authentic: this is the standard "oral messages over
    authenticated channels" model — a Byzantine processor can lie about
    *content*, not about *who is speaking*.
    """

    #: Subclasses set their spec-grammar strategy name.
    strategy: str = ""

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise ConfigurationError(
                f"byz budget must be >= 1, got {budget}"
            )
        self.budget = int(budget)
        self._pids: frozenset[ProcessorId] | None = None
        self._arbiter = None

    @property
    def pids(self) -> frozenset[ProcessorId] | None:
        """The compromised set, or ``None`` before binding."""
        return self._pids

    def bind(self, pids: Sequence[ProcessorId]) -> None:
        """Fix the compromised set (normally via ``bind_clients``)."""
        chosen = frozenset(pids)
        if len(chosen) != self.budget:
            raise ConfigurationError(
                f"byz rule with budget {self.budget} bound to "
                f"{len(chosen)} pids {sorted(chosen)}"
            )
        self._pids = chosen

    def fork(self) -> "ByzantineRule":
        clone = type(self)(self.budget)
        clone._pids = self._pids
        return clone

    def judge(self, message, send_time, deliver_time, rng):
        pids = self._pids
        if pids is None:
            raise ConfigurationError(
                f"byzantine rule {self.spec_fragment()!r} consulted before "
                "binding; call FaultPlan.bind_clients(n) once the "
                "population size is known (RunSession does this for you)"
            )
        if message[0] not in pids:
            return None
        return self._judge_byzantine(message, rng)

    def _judge_byzantine(
        self, message: Message, rng: random.Random
    ) -> _Effect | None:
        raise NotImplementedError

    def spec_fragment(self) -> str:
        return f"byz={self.budget}@{self.strategy}"

    # -- per-message behaviours shared with MixedRule ------------------
    def _corrupt_effect(self, message, rng, shift=0, kind="corrupt"):
        mutated, changed = _mutate_ints(message.payload, rng, shift)
        if mutated is None:
            return None
        detail = ",".join(changed)
        if shift:
            detail += f" (receiver {message.receiver} variant)"
        return _Effect(
            kind=kind,
            detail=detail,
            replace=message._replace(payload=mutated),
        )


class CorruptRule(ByzantineRule):
    """Compromised senders rewrite integer payload fields (same lie to all)."""

    strategy = "corrupt"

    def _judge_byzantine(self, message, rng):
        return self._corrupt_effect(message, rng)


class EquivocateRule(ByzantineRule):
    """Compromised senders tell *different* lies to different receivers.

    The mutation adds the receiver id on top of the seeded delta, so two
    receivers of the same logical broadcast see conflicting values — the
    split-vote attack quorum protocols must survive.
    """

    strategy = "equivocate"

    def _judge_byzantine(self, message, rng):
        return self._corrupt_effect(
            message, rng, shift=message.receiver, kind="equivocate"
        )


class SilenceRule(ByzantineRule):
    """Compromised senders go selectively deaf: per-link sticky omission.

    Each (sender, receiver) link is judged once, on first use — a seeded
    coin decides whether the compromised sender *never* sends on that
    link.  Sticky omission starves the same victims all run long, the
    regime threshold-counting protocols must make progress under.
    """

    strategy = "silence"
    can_drop = True

    def __init__(self, budget: int) -> None:
        super().__init__(budget)
        self._deaf: dict[tuple[ProcessorId, ProcessorId], bool] = {}

    def fork(self) -> "SilenceRule":
        clone = super().fork()
        clone._deaf = {}
        return clone

    def reset(self) -> None:
        self._deaf.clear()

    def _judge_byzantine(self, message, rng):
        link = (message.sender, message.receiver)
        silent = self._deaf.get(link)
        if silent is None:
            silent = rng.random() < 0.5
            self._deaf[link] = silent
        if silent:
            return _Effect(
                drop_reason="silence",
                detail=f"{link[0]} withholds from {link[1]}",
            )
        return None


class MixedRule(ByzantineRule):
    """Per message, the adversary picks corrupt, equivocate or silence.

    The pick is seeded by default; the schedule explorer can take it
    over via :meth:`FaultPlan.install_adversary`, which makes the rule
    choice part of the explored (and shrunk) decision space.
    """

    strategy = "mixed"
    can_drop = True

    _BEHAVIOURS = ("corrupt", "equivocate", "silence")

    def _judge_byzantine(self, message, rng):
        if self._arbiter is not None:
            pick = self._arbiter("byz-rule", len(self._BEHAVIOURS))
        else:
            pick = rng.randrange(len(self._BEHAVIOURS))
        behaviour = self._BEHAVIOURS[pick % len(self._BEHAVIOURS)]
        if behaviour == "corrupt":
            return self._corrupt_effect(message, rng)
        if behaviour == "equivocate":
            return self._corrupt_effect(
                message, rng, shift=message.receiver, kind="equivocate"
            )
        return _Effect(
            drop_reason="silence",
            detail=f"{message.sender} withholds from {message.receiver}",
        )


_BYZANTINE_CLASSES = {
    "corrupt": CorruptRule,
    "equivocate": EquivocateRule,
    "silence": SilenceRule,
    "mixed": MixedRule,
}


def make_byzantine_rule(budget: int, strategy: str) -> ByzantineRule:
    """Build the Byzantine rule for ``byz=budget@strategy``."""
    try:
        cls = _BYZANTINE_CLASSES[strategy]
    except KeyError:
        raise ConfigurationError(
            f"unknown byzantine strategy {strategy!r}; expected one of "
            + ", ".join(BYZANTINE_STRATEGIES)
        ) from None
    return cls(budget)


class RecoveryPoint(NamedTuple):
    """A promise that a crashed processor recovers (state and role) at *time*.

    The wire side of a recovery is just a finite crash window — links work
    again from the window's end.  The recovery point is the *semantic*
    side: at :attr:`time` the recovery layer
    (:class:`~repro.sim.recovery.RecoveryManager`) re-delivers the
    processor's last checkpoint and lets the counter replay what it
    missed.  Always paired with a crash rule for the same pid whose
    window ends at or before :attr:`time`.

    Attributes:
        pid: the recovering processor.
        time: simulated time the checkpoint restore fires.
    """

    pid: ProcessorId
    time: float

    def spec_fragment(self) -> str:
        return f"recover={self.pid}@t{self.time:g}"


class FaultPlan:
    """A seeded, deterministic composition of :class:`FaultRule`\\ s.

    The plan owns all fault randomness (one seeded generator, drawn in
    rule order) and the fault ledger: every injected fault is appended
    to :attr:`events` and tallied in :attr:`counts` regardless of the
    network's trace level, so experiments can report fault totals even
    from ``OFF``-traced runs.

    Args:
        rules: the composed rules, evaluated in order per message.
        seed: generator seed; equal seeds give equal injections.
        recoveries: :class:`RecoveryPoint` entries.  Each must name a pid
            with a crash rule starting before the recovery time; crash
            windows extending past the recovery time (including
            open-ended ``end=inf`` crashes) are truncated there, so the
            links come back exactly when the checkpoint restore fires.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule],
        seed: int = 0,
        recoveries: Sequence[RecoveryPoint] = (),
    ) -> None:
        rule_list = list(rules)
        for rule in rule_list:
            if not isinstance(rule, FaultRule):
                raise ConfigurationError(
                    f"fault plan rules must be FaultRule instances, "
                    f"got {rule!r}"
                )
        points = sorted(recoveries, key=lambda point: (point.time, point.pid))
        for point in points:
            if not isinstance(point, RecoveryPoint):
                raise ConfigurationError(
                    f"fault plan recoveries must be RecoveryPoint "
                    f"instances, got {point!r}"
                )
        seen_pids = set()
        for point in points:
            if point.pid in seen_pids:
                raise ConfigurationError(
                    f"duplicate recovery for processor {point.pid}; one "
                    "recover= clause per pid"
                )
            seen_pids.add(point.pid)
            matching = [
                index
                for index, rule in enumerate(rule_list)
                if isinstance(rule, CrashRule)
                and rule.pid == point.pid
                and rule.start < point.time
            ]
            if not matching:
                raise ConfigurationError(
                    f"recover={point.pid}@t{point.time:g} has no matching "
                    f"crash rule (need crash={point.pid}@tS with S < "
                    f"{point.time:g})"
                )
            for index in matching:
                rule = rule_list[index]
                if rule.end > point.time:
                    rule_list[index] = CrashRule(
                        rule.pid, rule.start, point.time
                    )
        self._rules: tuple[FaultRule, ...] = tuple(rule_list)
        self._recoveries: tuple[RecoveryPoint, ...] = tuple(points)
        self._seed = seed
        self._rng = random.Random(seed)
        self._events: list[FaultRecord] = []
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rules(self) -> tuple[FaultRule, ...]:
        """The composed rules, in evaluation order."""
        return self._rules

    @property
    def seed(self) -> int:
        """The seed the plan's generator was created with."""
        return self._seed

    @property
    def lossy(self) -> bool:
        """True if any rule can lose a message.

        A lossy plan requires counters to run behind
        :class:`~repro.sim.transport.ReliableTransport`; the registry's
        :class:`~repro.registry.RunSession` enforces this via the
        ``tolerates_message_loss`` capability.
        """
        return any(rule.can_drop for rule in self._rules)

    @property
    def recoveries(self) -> tuple[RecoveryPoint, ...]:
        """Recovery points, ordered by (time, pid)."""
        return self._recoveries

    @property
    def crash_rules(self) -> tuple[CrashRule, ...]:
        """Every crash rule in the plan, in evaluation order."""
        return tuple(
            rule for rule in self._rules if isinstance(rule, CrashRule)
        )

    @property
    def permanent_crash_pids(self) -> frozenset[ProcessorId]:
        """Pids crashed with no window end (and no recovery point).

        These processors never come back: the registry refuses such
        plans on counters without ``tolerates_crash``, because no amount
        of retransmission recovers state parked on a dead processor.
        """
        return frozenset(
            rule.pid
            for rule in self._rules
            if isinstance(rule, CrashRule) and math.isinf(rule.end)
        )

    @property
    def byzantine_rules(self) -> tuple["ByzantineRule", ...]:
        """Every Byzantine rule in the plan, in evaluation order."""
        return tuple(
            rule for rule in self._rules if isinstance(rule, ByzantineRule)
        )

    @property
    def byzantine_pids(self) -> frozenset[ProcessorId]:
        """The union of all bound compromised sets (empty before binding).

        Drivers and oracles treat these processors' own operations as
        optional: a liar's op may never complete, and whatever it
        reports is not evidence against the protocol.
        """
        pids: set[ProcessorId] = set()
        for rule in self._rules:
            if isinstance(rule, ByzantineRule) and rule.pids is not None:
                pids.update(rule.pids)
        return frozenset(pids)

    @property
    def non_byzantine_lossy(self) -> bool:
        """True if a *non-Byzantine* rule can lose a message.

        Byzantine omission (``silence``) is covered by the
        ``tolerates_byzantine`` capability — a protocol that survives
        lying senders survives their silence.  Only honest-link loss
        (drop/partition/crash) forces the reliable-transport gate.
        """
        return any(
            rule.can_drop and not isinstance(rule, ByzantineRule)
            for rule in self._rules
        )

    def bind_clients(self, n: int, chooser=None) -> None:
        """Fix each Byzantine rule's compromised set for population *n*.

        Idempotent: rules already bound (e.g. a plan reused across
        sessions, or a fork of a bound plan) keep their sets.  Pids are
        drawn without replacement from ``1..n`` using a generator
        *derived* from the plan seed — never the plan's own stream, so
        binding does not perturb the fault injections.  An explorer can
        pass ``chooser(kind, count) -> index`` to take the draw over
        (kind ``"byz-pid"``), which makes the compromised set part of
        the recorded, replayable, shrinkable schedule.
        """
        unbound = [
            rule
            for rule in self._rules
            if isinstance(rule, ByzantineRule) and rule.pids is None
        ]
        if not unbound:
            return
        derived = random.Random(f"{self._seed}:byz")
        for rule in unbound:
            if rule.budget >= n:
                raise ConfigurationError(
                    f"byz budget {rule.budget} must be < n={n}: the "
                    "adversary cannot compromise every client"
                )
            candidates = list(range(1, n + 1))
            chosen = []
            for _ in range(rule.budget):
                if chooser is not None:
                    index = chooser("byz-pid", len(candidates))
                else:
                    index = derived.randrange(len(candidates))
                chosen.append(candidates.pop(index % len(candidates)))
            rule.bind(tuple(sorted(chosen)))

    def install_adversary(self, chooser) -> None:
        """Route per-message Byzantine choices through *chooser*.

        *chooser(kind, count)* returns an index in ``[0, count)``; the
        only per-message kind today is ``"byz-rule"`` (which behaviour a
        ``mixed`` adversary uses).  The explorer installs its schedule
        controller here so adversary choices live in the same decision
        stream as delays and tie-breaks.
        """
        for rule in self._rules:
            if isinstance(rule, ByzantineRule):
                rule._arbiter = chooser

    @property
    def events(self) -> list[FaultRecord]:
        """Every injected fault so far, in injection order (do not mutate)."""
        return self._events

    @property
    def counts(self) -> dict[str, int]:
        """Injected-fault tallies by kind (a fresh copy)."""
        return dict(self._counts)

    @property
    def spec(self) -> str:
        """The plan's canonical fault-spec string."""
        fragments = [rule.spec_fragment() for rule in self._rules]
        fragments.extend(point.spec_fragment() for point in self._recoveries)
        return ",".join(fragments)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec!r}, seed={self._seed})"

    # ------------------------------------------------------------------
    # Lifecycle (the DeliveryPolicy fork/reset contract)
    # ------------------------------------------------------------------
    def fork(self) -> "FaultPlan":
        """A fresh, equivalently-seeded, independent plan.

        The fork starts with an empty ledger and a generator reseeded
        from scratch: its injections equal a brand-new plan's, whatever
        the parent has already consumed.
        """
        return FaultPlan(
            [rule.fork() for rule in self._rules],
            seed=self._seed,
            recoveries=self._recoveries,
        )

    def reset(self) -> None:
        """Reseed the generator and clear the ledger (network reuse).

        Stateful rules (sticky ``silence`` links) clear their per-run
        state too, so a reset plan injects exactly what a fresh one
        would.  Bound Byzantine sets survive — they are configuration,
        not consumption.
        """
        self._rng = random.Random(self._seed)
        self._events.clear()
        self._counts.clear()
        for rule in self._rules:
            rule.reset()

    # ------------------------------------------------------------------
    # The send-path consultation
    # ------------------------------------------------------------------
    def consult(
        self, message: Message, send_time: float, deliver_time: float
    ) -> FaultOutcome | None:
        """Decide the fate of one message about to be scheduled.

        Returns ``None`` when no rule touches the message (the network's
        common case: schedule one delivery at *deliver_time* exactly as
        the clean path would).  Otherwise returns the absolute delivery
        times of every copy (empty on drop) plus the fault records the
        decision produced — already appended to the plan's own ledger.
        """
        rng = self._rng
        drop_reason: str | None = None
        effects: list[_Effect] = []
        current = message
        for rule in self._rules:
            effect = rule.judge(current, send_time, deliver_time, rng)
            if effect is None:
                continue
            effects.append(effect)
            if effect.replace is not None:
                # Later rules judge the rewritten message; the last
                # rewrite is what goes on the wire.
                current = effect.replace
            if effect.drop_reason is not None:
                drop_reason = effect.drop_reason
                break
        if not effects:
            return None
        sender, receiver = message[0], message[1]
        op_index, uid = message[4], message[5]
        records = tuple(
            FaultRecord(
                time=send_time,
                kind=effect.kind
                or effect.drop_reason
                or ("duplicate" if effect.copy_delays else "reorder"),
                sender=sender,
                receiver=receiver,
                op_index=op_index,
                uid=uid,
                detail=effect.detail,
            )
            for effect in effects
        )
        for record in records:
            self._counts[record.kind] = self._counts.get(record.kind, 0) + 1
        self._events.extend(records)
        replacement = current if current is not message else None
        if drop_reason is not None:
            return FaultOutcome(delivery_times=(), records=records)
        base = deliver_time + sum(e.extra_delay for e in effects)
        times = [base]
        for effect in effects:
            times.extend(base + extra for extra in effect.copy_delays)
        return FaultOutcome(
            delivery_times=tuple(times),
            records=records,
            message=replacement,
        )


# ----------------------------------------------------------------------
# Fault-spec strings (the CLI / sweep naming layer)
# ----------------------------------------------------------------------

def _parse_float(field: str, text: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"fault spec field {field!r} expects a number, got {text!r}"
        ) from None


def _parse_window(field: str, text: str) -> tuple[float, float]:
    """Parse ``t50`` or ``t50-t80`` into a ``[start, end)`` window."""
    if not text.startswith("t"):
        raise ConfigurationError(
            f"fault spec field {field!r} expects a window like 't50' or "
            f"'t50-t80', got {text!r}"
        )
    start_text, separator, end_text = text[1:].partition("-")
    start = _parse_float(field, start_text)
    if not separator:
        return start, math.inf
    if not end_text.startswith("t"):
        raise ConfigurationError(
            f"fault spec field {field!r}: window end must look like 't80', "
            f"got {end_text!r}"
        )
    return start, _parse_float(field, end_text[1:])


def _parse_group(field: str, text: str) -> list[ProcessorId]:
    """Parse ``1..4`` (range) or ``1+3+9`` (explicit ids) into pids."""
    if ".." in text:
        lo_text, _, hi_text = text.partition("..")
        try:
            lo, hi = int(lo_text), int(hi_text)
        except ValueError:
            raise ConfigurationError(
                f"fault spec field {field!r}: bad id range {text!r}"
            ) from None
        if lo > hi:
            raise ConfigurationError(
                f"fault spec field {field!r}: empty id range {text!r}"
            )
        return list(range(lo, hi + 1))
    try:
        return [int(part) for part in text.split("+")]
    except ValueError:
        raise ConfigurationError(
            f"fault spec field {field!r}: bad id list {text!r}"
        ) from None


def _rule_from_field(key: str, value: str) -> FaultRule:
    if key == "drop":
        return DropRule(_parse_float(key, value))
    if key == "dup":
        probability_text, separator, copies_text = value.partition("x")
        probability = _parse_float(key, probability_text)
        copies = 1
        if separator:
            try:
                copies = int(copies_text)
            except ValueError:
                raise ConfigurationError(
                    f"fault spec field 'dup': bad copy count {copies_text!r}"
                ) from None
        return DuplicateRule(probability, copies=copies)
    if key == "reorder":
        probability_text, separator, boost_text = value.partition("@")
        probability = _parse_float(key, probability_text)
        if separator:
            return ReorderRule(probability, max_boost=_parse_float(key, boost_text))
        return ReorderRule(probability)
    if key == "crash":
        pid_text, separator, window_text = value.partition("@")
        try:
            pid = int(pid_text)
        except ValueError:
            raise ConfigurationError(
                f"fault spec field 'crash': bad processor id {pid_text!r}"
            ) from None
        if not separator:
            raise ConfigurationError(
                "fault spec field 'crash' needs a window, e.g. crash=3@t50 "
                "or crash=3@t50-t80"
            )
        start, end = _parse_window(key, window_text)
        return CrashRule(pid, start, end)
    if key == "partition":
        groups_text, separator, window_text = value.partition("@")
        if "|" not in groups_text:
            raise ConfigurationError(
                "fault spec field 'partition' needs two groups separated "
                "by '|', e.g. partition=1..4|5..8@t10-t50"
            )
        a_text, _, b_text = groups_text.partition("|")
        start, end = (
            _parse_window(key, window_text) if separator else (0.0, math.inf)
        )
        return PartitionRule(
            _parse_group(key, a_text), _parse_group(key, b_text), start, end
        )
    if key == "byz":
        budget_text, separator, strategy = value.partition("@")
        try:
            budget = int(budget_text)
        except ValueError:
            raise ConfigurationError(
                f"fault spec field 'byz': bad budget {budget_text!r}; "
                "expected an integer count of compromised processors"
            ) from None
        if not separator or not strategy:
            raise ConfigurationError(
                "fault spec field 'byz' needs a strategy, e.g. "
                "byz=1@corrupt (one of "
                + ", ".join(BYZANTINE_STRATEGIES)
                + ")"
            )
        return make_byzantine_rule(budget, strategy)
    raise ConfigurationError(
        f"unknown fault spec field {key!r}; expected one of "
        "drop, dup, reorder, crash, partition, byz, recover"
    )


def _recovery_from_field(value: str) -> RecoveryPoint:
    pid_text, separator, time_text = value.partition("@")
    try:
        pid = int(pid_text)
    except ValueError:
        raise ConfigurationError(
            f"fault spec field 'recover': bad processor id {pid_text!r}"
        ) from None
    if not separator or not time_text.startswith("t"):
        raise ConfigurationError(
            "fault spec field 'recover' needs a time, e.g. recover=3@t90"
        )
    return RecoveryPoint(pid, _parse_float("recover", time_text[1:]))


#: canonical ordering of rule families in a parsed plan — parsing is
#: order-insensitive, so equivalent spellings build identical plans (and
#: identical RNG streams).  ``recover`` fields become
#: :class:`RecoveryPoint` entries, not rules, and always sort last.
_FIELD_ORDER = {
    "drop": 0,
    "dup": 1,
    "reorder": 2,
    "partition": 3,
    "crash": 4,
    "byz": 5,
    "recover": 6,
}


def parse_fault_spec(text: str, seed: int = 0) -> FaultPlan:
    """Build a :class:`FaultPlan` from a spec string.

    Grammar (comma-separated fields, any order)::

        drop=P                      lose messages with probability P
        dup=P[xC]                   duplicate with probability P (C copies)
        reorder=P[@BOOST]           delay-boost with probability P
        crash=PID@tSTART[-tEND]     processor down in [START, END)
        partition=A|B@tSTART[-tEND] drop the A/B cut in the window
                                    (groups: '1..4' ranges or '1+5+9' lists)
        byz=F@STRATEGY              F Byzantine processors; STRATEGY one of
                                    corrupt, equivocate, silence, mixed
        recover=PID@tT              crashed PID restored (state + role) at T;
                                    truncates PID's crash window at T

    Fields are canonically reordered (drop, dup, reorder, partitions,
    crashes, byzantine budgets, recoveries) so equivalent spellings produce identical
    plans — :func:`canonical_fault_spec` is the cache key for sweeps.
    A ``recover`` field requires a ``crash`` field for the same pid
    starting before the recovery time.
    """
    stripped = text.strip()
    if not stripped:
        raise ConfigurationError("empty fault spec")
    fields: list[tuple[int, int, str, str]] = []
    for position, part in enumerate(stripped.split(",")):
        key, separator, value = part.strip().partition("=")
        if not separator or not key or not value:
            raise ConfigurationError(
                f"malformed fault spec field {part!r} in {text!r}; "
                "expected key=value"
            )
        if key not in _FIELD_ORDER:
            raise ConfigurationError(
                f"unknown fault spec field {key!r}; expected one of "
                "drop, dup, reorder, crash, partition, recover"
            )
        if key in ("drop", "dup", "reorder") and any(
            existing == key for _, _, existing, _ in fields
        ):
            raise ConfigurationError(
                f"duplicate fault spec field {key!r} in {text!r}"
            )
        fields.append((_FIELD_ORDER[key], position, key, value))
    fields.sort(key=lambda item: (item[0], item[1]))
    rules = [
        _rule_from_field(key, value)
        for _, _, key, value in fields
        if key != "recover"
    ]
    recoveries = [
        _recovery_from_field(value)
        for _, _, key, value in fields
        if key == "recover"
    ]
    return FaultPlan(rules, seed=seed, recoveries=recoveries)


def canonical_fault_spec(text: str) -> str:
    """The canonical form of a fault-spec string (sweep cache key)."""
    return parse_fault_spec(text).spec
