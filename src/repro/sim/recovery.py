"""Checkpoint/restore and role handoff for crash-tolerant counters.

The fault layer can crash a processor
(:class:`~repro.sim.faults.CrashRule`); the failure detector
(:mod:`repro.sim.failure_detector`) can notice.  This module closes the
loop: a :class:`RecoveryManager` owns the detector, a checkpoint store
modelling stable storage, and the fault plan's
:class:`~repro.sim.faults.RecoveryPoint` schedule, and drives a
:class:`Recoverable` counter through the resulting lifecycle:

* **suspect** — the detector stopped hearing from a critical processor;
  the counter hands its role elsewhere (standby promotion, tree bypass).
* **restore** — a suspicion turned out to be false (or the processor's
  links came back); the counter may reintegrate it.
* **recover** — a ``recover=PID@tT`` point fired: the manager re-delivers
  the processor's last checkpoint and the counter replays whatever the
  checkpoint predates (the increments the processor missed while down).

Checkpoints are plain dictionaries the counter chooses to save
(:meth:`RecoveryManager.save_checkpoint`); the manager deep-copies them,
which is the simulation analogue of writing to storage that survives the
crash.  Note the contrast with the fault layer's crash approximation:
``CrashRule`` only severs *links*, so in-memory state technically
survives — the recovery contract is that a :class:`Recoverable` counter
never reads its own pre-crash volatile state after a recovery, only the
checkpoint plus what the protocol re-sends.

Failovers are measured, not just performed: the manager timestamps each
role handoff against the crash window that caused it, giving experiments
the failover-latency metric directly.
"""

from __future__ import annotations

import copy
import math
from abc import ABC, abstractmethod
from typing import Any, NamedTuple, Sequence

from repro.errors import ConfigurationError
from repro.sim.failure_detector import FailureDetector
from repro.sim.faults import FaultPlan, FaultRecord, RecoveryPoint
from repro.sim.messages import NO_OP, ProcessorId
from repro.sim.network import Network

__all__ = ["Recoverable", "RecoveryEvent", "RecoveryManager"]


class RecoveryEvent(NamedTuple):
    """One entry of the recovery ledger.

    Attributes:
        time: simulated time of the event.
        kind: ``"suspect"``, ``"restore"``, ``"recover"``, ``"failover"``
            or ``"checkpoint"``.
        pid: the processor concerned (for failovers: the *old* role
            holder).
        detail: human-readable specifics.
    """

    time: float
    kind: str
    pid: ProcessorId
    detail: str = ""

    def __str__(self) -> str:
        return f"[t={self.time:g}] {self.kind} pid={self.pid} {self.detail}"


class Recoverable(ABC):
    """The counter-side contract of crash recovery.

    Counters that declare ``Capabilities.tolerates_crash`` implement
    this alongside :class:`~repro.api.DistributedCounter`; the
    :class:`RecoveryManager` drives the hooks.  All hooks run as
    simulation events (inside the event loop), so they may send
    messages and schedule work like any protocol handler.
    """

    @abstractmethod
    def critical_pids(self) -> Sequence[ProcessorId]:
        """Processors whose crash the protocol must survive (monitored)."""

    @abstractmethod
    def on_processor_suspected(self, pid: ProcessorId, time: float) -> None:
        """The detector suspects *pid*; hand its role elsewhere."""

    @abstractmethod
    def on_processor_restored(self, pid: ProcessorId, time: float) -> None:
        """A suspicion of *pid* was cleared (false alarm or links back)."""

    @abstractmethod
    def on_processor_recovered(
        self, pid: ProcessorId, time: float, checkpoint: Any
    ) -> None:
        """*pid* formally recovered with its last *checkpoint* restored.

        *checkpoint* is the most recent state saved via
        :meth:`RecoveryManager.save_checkpoint`, or ``None`` if the
        processor never checkpointed — the counter must then rebuild
        from its peers.
        """

    def attach_recovery(self, manager: "RecoveryManager") -> None:
        """Called once by the manager so the counter can checkpoint."""
        self._recovery_manager = manager


class RecoveryManager:
    """Owns failure detection, checkpoints and recovery scheduling.

    Args:
        network: the *raw* faulty network (not the reliable transport —
            heartbeats must be droppable or crashes are undetectable).
        counter: the :class:`Recoverable` counter to drive.
        plan: the installed fault plan; its crash rules size the
            monitoring horizon and its recovery points are scheduled as
            checkpoint restores.
        period / timeout: forwarded to the :class:`FailureDetector`.
        horizon: monitoring horizon override; by default derived from
            the plan — the latest interesting crash time (window starts,
            finite window ends, recovery points) plus ``timeout`` plus
            two periods, so every crash of interest is detectable and
            the run still quiesces.

    Call :meth:`start` once the counter is fully registered.
    """

    def __init__(
        self,
        network: Network,
        counter: Recoverable,
        plan: FaultPlan,
        *,
        period: float = 5.0,
        timeout: float = 15.0,
        horizon: float | None = None,
    ) -> None:
        if not isinstance(counter, Recoverable):
            raise ConfigurationError(
                f"counter {counter!r} does not implement Recoverable"
            )
        self._network = network
        self._counter = counter
        self._plan = plan
        if horizon is None:
            horizon = self.derive_horizon(plan, period=period, timeout=timeout)
        self._detector = FailureDetector(
            network,
            counter.critical_pids(),
            period=period,
            timeout=timeout,
            horizon=horizon,
        )
        self._detector.add_suspect_callback(self._suspected)
        self._detector.add_restore_callback(self._restored)
        self._checkpoints: dict[ProcessorId, Any] = {}
        self._events: list[RecoveryEvent] = []
        self._failover_latencies: list[float] = []
        self._started = False

    @staticmethod
    def derive_horizon(
        plan: FaultPlan, *, period: float = 5.0, timeout: float = 15.0
    ) -> float:
        """The default monitoring horizon for *plan*.

        Covers every crash window start, finite window end and recovery
        point, plus one timeout (so the last crash is suspectable) and
        two heartbeat periods (so the suspicion tick actually runs).
        """
        times = [0.0]
        for rule in plan.crash_rules:
            times.append(rule.start)
            if not math.isinf(rule.end):
                times.append(rule.end)
        times.extend(point.time for point in plan.recoveries)
        return max(times) + timeout + 2.0 * period

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start detection and schedule the plan's recovery points."""
        if self._started:
            raise ConfigurationError("recovery manager already started")
        self._started = True
        self._detector.start()
        self._counter.attach_recovery(self)
        now = self._network.now
        for point in self._plan.recoveries:
            if point.time < now:
                raise ConfigurationError(
                    f"recovery point {point} lies in the past (now={now:g})"
                )
            self._network.inject(
                lambda p=point: self._recover(p), delay=point.time - now
            )

    # ------------------------------------------------------------------
    # The checkpoint store (stable storage)
    # ------------------------------------------------------------------
    def save_checkpoint(self, pid: ProcessorId, state: Any) -> None:
        """Persist *state* as *pid*'s crash-surviving checkpoint."""
        self._checkpoints[pid] = copy.deepcopy(state)
        self._events.append(
            RecoveryEvent(self._network.now, "checkpoint", pid)
        )

    def checkpoint_for(self, pid: ProcessorId) -> Any:
        """The latest checkpoint of *pid* (a copy), or ``None``."""
        state = self._checkpoints.get(pid)
        return copy.deepcopy(state) if state is not None else None

    # ------------------------------------------------------------------
    # Measurement hooks (called by counters)
    # ------------------------------------------------------------------
    def note_failover(self, old_pid: ProcessorId, new_pid: ProcessorId) -> None:
        """Record that *new_pid* took over *old_pid*'s role now.

        The failover latency is measured from the *start* of the crash
        window that felled *old_pid* — the whole detection-plus-handoff
        cost, which is what an experiment comparing against a crash-free
        run wants.
        """
        now = self._network.now
        starts = [
            rule.start
            for rule in self._plan.crash_rules
            if rule.pid == old_pid and rule.start <= now
        ]
        if starts:
            self._failover_latencies.append(now - min(starts))
        self._events.append(
            RecoveryEvent(
                now, "failover", old_pid, f"role moved to {new_pid}"
            )
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def detector(self) -> FailureDetector:
        """The failure detector driving this manager."""
        return self._detector

    @property
    def events(self) -> list[RecoveryEvent]:
        """The recovery ledger, in order (do not mutate)."""
        return self._events

    def suspicion_count(self) -> int:
        """Total suspicion events raised by the detector."""
        return self._detector.suspicion_count()

    def failover_count(self) -> int:
        """Role handoffs performed so far."""
        return len(self._failover_latencies)

    def failover_latency(self) -> float | None:
        """Crash-start → handoff latency of the first failover, if any."""
        return self._failover_latencies[0] if self._failover_latencies else None

    def recovery_count(self) -> int:
        """Recovery points executed so far."""
        return sum(1 for event in self._events if event.kind == "recover")

    # ------------------------------------------------------------------
    # Detector / schedule plumbing
    # ------------------------------------------------------------------
    def _suspected(self, pid: ProcessorId, time: float) -> None:
        self._events.append(RecoveryEvent(time, "suspect", pid))
        self._counter.on_processor_suspected(pid, time)

    def _restored(self, pid: ProcessorId, time: float) -> None:
        self._events.append(RecoveryEvent(time, "restore", pid))
        self._counter.on_processor_restored(pid, time)

    def _recover(self, point: RecoveryPoint) -> None:
        now = self._network.now
        checkpoint = self.checkpoint_for(point.pid)
        detail = "from checkpoint" if checkpoint is not None else "no checkpoint"
        self._events.append(
            RecoveryEvent(now, "recover", point.pid, detail)
        )
        self._network.trace.record_fault(
            FaultRecord(
                time=now,
                kind="recover",
                sender=point.pid,
                receiver=point.pid,
                op_index=NO_OP,
                uid=-1,
                detail=detail,
            )
        )
        self._counter.on_processor_recovered(point.pid, now, checkpoint)
