"""Reliable delivery over a lossy network: ack / retransmit / dedup.

With a lossy :class:`~repro.sim.faults.FaultPlan` installed, the bare
network violates the paper's §2 delivery guarantee.
:class:`ReliableTransport` restores it *above* the faulty wire, the way
real systems do: every protocol message travels inside a sequenced
``transport.data`` envelope, the receiving endpoint acknowledges each
copy with ``transport.ack``, the sender retransmits unacknowledged
envelopes on a capped exponential backoff, and per-channel sequence
numbers suppress duplicates (whether injected by the fault layer or
created by retransmission races).

Counters run **unmodified**: the transport is a drop-in stand-in for the
:class:`~repro.sim.network.Network` they are constructed on.  Counter
processors register through it and send through it; the transport wraps
each one in an endpoint registered on the real network, so all envelope
traffic is delayed, faulted and traced like any other message.  The
trace therefore distinguishes goodput from overhead by message kind
(``FULL`` level) while :meth:`ReliableTransport.stats` keeps the
aggregate ledger (data sent, retransmissions, acks, duplicates
suppressed, goodput) at every trace level.

Guarantees restored (and their limits):

* every logical message is delivered exactly once to the destination's
  protocol handler — provided the destination is eventually up long
  enough for a retransmission to land, and retries are not exhausted;
* delivery order is *not* restored: the transport is reliable, not
  FIFO — exactly the asynchrony the paper's model permits, so protocol
  correctness arguments carry over unchanged;
* a permanently crashed destination does **not** make the sender retry
  forever: after ``attempt_cap`` transmissions the transport raises a
  typed :class:`~repro.errors.DeliveryAbandonedError` naming the dead
  pid and the attempt count, instead of burning the event budget and
  dying later on an opaque
  :class:`~repro.errors.SimulationLimitError`.  Callers that want
  silent best-effort semantics pass an explicit ``max_retries``, after
  which an abandoned send merely counts as ``gave_up``.

Operation attribution survives faults: retransmissions are re-injected
under the original operation's index, so per-operation footprints
``I_p`` include retry traffic exactly where the paper's accounting
would put it.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import (
    ConfigurationError,
    DeliveryAbandonedError,
    UnknownProcessorError,
)
from repro.sim.messages import NO_OP, Message, OpIndex, ProcessorId
from repro.sim.network import Network
from repro.sim.processor import Processor

__all__ = ["ACK_KIND", "DATA_KIND", "ReliableTransport"]

DATA_KIND = "transport.data"
"""Envelope kind carrying one sequenced protocol message."""

ACK_KIND = "transport.ack"
"""Acknowledgement kind; payload names the acknowledged sequence number."""

_tuple_new = tuple.__new__


class _Pending:
    """Sender-side state of one unacknowledged envelope."""

    __slots__ = ("envelope", "op_index", "attempts")

    def __init__(self, envelope: dict[str, Any], op_index: OpIndex) -> None:
        self.envelope = envelope
        self.op_index = op_index
        self.attempts = 0


class _Endpoint(Processor):
    """The per-processor shim registered on the real network.

    Outgoing protocol sends become sequenced envelopes with a retransmit
    timer; incoming envelopes are acked, deduplicated, unwrapped and
    handed to the wrapped protocol processor.
    """

    def __init__(self, inner: Processor, transport: "ReliableTransport") -> None:
        super().__init__(inner.pid)
        self._inner = inner
        self._transport = transport
        self._next_seq: dict[ProcessorId, int] = {}
        self._pending: dict[tuple[ProcessorId, int], _Pending] = {}
        self._seen: dict[ProcessorId, set[int]] = {}

    # ------------------------------------------------------------------
    # Sending (called by ReliableTransport.send)
    # ------------------------------------------------------------------
    def send_reliable(
        self, receiver: ProcessorId, kind: str, payload: Mapping[str, Any]
    ) -> None:
        seq = self._next_seq.get(receiver, 0)
        self._next_seq[receiver] = seq + 1
        envelope = {"seq": seq, "kind": kind, "data": payload}
        self._pending[(receiver, seq)] = _Pending(
            envelope, self.network.active_op
        )
        self._transmit(receiver, seq)

    def _transmit(self, receiver: ProcessorId, seq: int) -> None:
        pending = self._pending.get((receiver, seq))
        if pending is None:  # acknowledged since the timer was set
            return
        transport = self._transport
        stats = transport._stats
        if pending.attempts:
            stats["retransmissions"] += 1
        else:
            stats["data_sent"] += 1
        self.send(receiver, DATA_KIND, pending.envelope)
        backoff = min(
            transport._rto * (2.0 ** pending.attempts), transport._rto_cap
        )
        pending.attempts += 1
        max_retries = transport._max_retries
        if max_retries is not None and pending.attempts > max_retries:
            # Out of budget: if the ack never comes, give up when the
            # final timer fires instead of scheduling another attempt.
            self.network.inject(
                lambda: self._give_up(receiver, seq),
                op_index=pending.op_index,
                delay=backoff,
            )
            return
        if max_retries is None and pending.attempts >= transport._attempt_cap:
            # No explicit retry budget: a peer that has ignored this many
            # attempts is treated as dead, loudly.
            self.network.inject(
                lambda: self._abandon(receiver, seq),
                op_index=pending.op_index,
                delay=backoff,
            )
            return
        self.network.inject(
            lambda: self._transmit(receiver, seq),
            op_index=pending.op_index,
            delay=backoff,
        )

    def _give_up(self, receiver: ProcessorId, seq: int) -> None:
        if self._pending.pop((receiver, seq), None) is not None:
            self._transport._stats["gave_up"] += 1

    def _abandon(self, receiver: ProcessorId, seq: int) -> None:
        pending = self._pending.pop((receiver, seq), None)
        if pending is None:  # acknowledged since the final timer was set
            return
        self._transport._stats["gave_up"] += 1
        raise DeliveryAbandonedError(
            f"reliable delivery {self.pid}->{receiver} abandoned after "
            f"{pending.attempts} attempts; processor {receiver} looks "
            "permanently dead (pass max_retries= for silent best-effort "
            "delivery, or give the fault plan a recover= clause)",
            receiver=receiver,
            attempts=pending.attempts,
        )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        kind = message[2]
        if kind == DATA_KIND:
            self._on_data(message)
        elif kind == ACK_KIND:
            self._pending.pop(
                (message[0], message[3]["seq"]), None
            )
        else:
            # Traffic from processors outside the transport (registered
            # directly on the real network) passes through unwrapped.
            self._inner.on_message(message)

    def _on_data(self, message: Message) -> None:
        envelope = message[3]
        seq = envelope["seq"]
        source = message[0]
        stats = self._transport._stats
        # Ack every copy: the original ack may itself have been lost.
        stats["acks_sent"] += 1
        self.send(source, ACK_KIND, {"seq": seq})
        seen = self._seen.setdefault(source, set())
        if seq in seen:
            stats["duplicates_suppressed"] += 1
            return
        seen.add(seq)
        stats["delivered"] += 1
        inner_message = _tuple_new(
            Message,
            (
                source,
                self.pid,
                envelope["kind"],
                envelope["data"],
                message[4],
                message[5],
                message[6],
            ),
        )
        self._inner.on_message(inner_message)


class ReliableTransport:
    """A reliable, network-shaped facade counters are built on.

    Pass a transport wherever a :class:`~repro.sim.network.Network` is
    expected when constructing a counter::

        network = Network(policy=RandomDelay(seed=3),
                          fault_plan=parse_fault_spec("drop=0.05", seed=3))
        transport = ReliableTransport(network)
        counter = spec.build(transport, n)      # counters run unmodified

    Registration wraps each processor in an acknowledging endpoint on
    the real network; ``send`` routes through the sender's endpoint;
    everything else (``inject``, ``run_until_quiescent``, ``trace``,
    ``now``, ...) forwards to the wrapped network, so drivers and
    analysis code cannot tell the difference.

    Args:
        network: the (possibly faulty) network to run over.
        rto: base retransmission timeout in simulated time.  Must exceed
            the worst-case round trip of the delivery policy or clean
            runs produce spurious retransmissions (the default clears
            every built-in policy).
        rto_cap: upper bound for the exponential backoff.
        max_retries: retransmissions per envelope before *silently*
            giving up (the send counts as ``gave_up``); ``None``
            (default) means there is no silent budget and the
            ``attempt_cap`` safety net applies instead.
        attempt_cap: with ``max_retries=None``, total transmissions per
            envelope before the transport declares the destination dead
            and raises :class:`~repro.errors.DeliveryAbandonedError`.
            With the default backoff this spans thousands of simulated
            time units — far beyond any transient crash window — so it
            only fires against a genuinely unreachable peer.
    """

    def __init__(
        self,
        network: Network,
        rto: float = 25.0,
        rto_cap: float = 200.0,
        max_retries: int | None = None,
        attempt_cap: int = 25,
    ) -> None:
        if rto <= 0:
            raise ConfigurationError(f"rto must be positive, got {rto}")
        if rto_cap < rto:
            raise ConfigurationError(
                f"rto_cap must be >= rto, got {rto_cap} < {rto}"
            )
        if max_retries is not None and max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1 or None, got {max_retries}"
            )
        if attempt_cap < 1:
            raise ConfigurationError(
                f"attempt_cap must be >= 1, got {attempt_cap}"
            )
        self._network = network
        self._rto = float(rto)
        self._rto_cap = float(rto_cap)
        self._max_retries = max_retries
        self._attempt_cap = int(attempt_cap)
        self._endpoints: dict[ProcessorId, _Endpoint] = {}
        self._stats: dict[str, int] = {
            "data_sent": 0,
            "retransmissions": 0,
            "acks_sent": 0,
            "duplicates_suppressed": 0,
            "delivered": 0,
            "gave_up": 0,
        }

    # ------------------------------------------------------------------
    # The Network-shaped surface counters use
    # ------------------------------------------------------------------
    def register(self, processor: Processor) -> Processor:
        """Wrap *processor* in an endpoint and register it."""
        endpoint = _Endpoint(processor, self)
        self._network.register(endpoint)
        processor.attach(self)  # the processor's sends route through us
        self._endpoints[processor.pid] = endpoint
        return processor

    def register_all(self, processors: list[Processor]) -> None:
        """Register every processor in *processors*."""
        for processor in processors:
            self.register(processor)

    def send(
        self,
        sender: ProcessorId,
        receiver: ProcessorId,
        kind: str,
        payload: Mapping[str, Any],
    ) -> None:
        """Send one protocol message reliably from *sender*."""
        try:
            endpoint = self._endpoints[sender]
        except KeyError:
            raise UnknownProcessorError(
                f"sender {sender} is not registered with this transport"
            ) from None
        endpoint.send_reliable(receiver, kind, payload)

    def inject(
        self,
        action: Callable[[], None],
        op_index: OpIndex = NO_OP,
        delay: float = 0.0,
    ) -> None:
        """Forwarded to :meth:`Network.inject` (local events are lossless)."""
        self._network.inject(action, op_index=op_index, delay=delay)

    def processor(self, pid: ProcessorId) -> Processor:
        """The *protocol* processor registered under *pid* (unwrapped)."""
        endpoint = self._endpoints.get(pid)
        if endpoint is not None:
            return endpoint._inner
        return self._network.processor(pid)

    def has_processor(self, pid: ProcessorId) -> bool:
        """True if *pid* is registered (through the transport or not)."""
        return self._network.has_processor(pid)

    def run_until_quiescent(self) -> int:
        """Forwarded to :meth:`Network.run_until_quiescent`."""
        return self._network.run_until_quiescent()

    def is_quiescent(self) -> bool:
        """Forwarded to :meth:`Network.is_quiescent`."""
        return self._network.is_quiescent()

    # ------------------------------------------------------------------
    # Forwarded introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The wrapped (possibly faulty) network."""
        return self._network

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._network.now

    @property
    def trace(self):
        """The wrapped network's trace."""
        return self._network.trace

    @property
    def trace_level(self):
        """The wrapped network's trace level."""
        return self._network.trace_level

    @property
    def policy(self):
        """The wrapped network's delivery policy."""
        return self._network.policy

    @property
    def active_op(self) -> OpIndex:
        """The wrapped network's active operation index."""
        return self._network.active_op

    @property
    def in_flight(self) -> int:
        """Messages currently in flight on the wrapped network."""
        return self._network.in_flight

    @property
    def events_executed(self) -> int:
        """Events executed on the wrapped network."""
        return self._network.events_executed

    @property
    def processor_count(self) -> int:
        """Processors registered on the wrapped network."""
        return self._network.processor_count

    # ------------------------------------------------------------------
    # Transport accounting
    # ------------------------------------------------------------------
    @property
    def rto(self) -> float:
        """Base retransmission timeout."""
        return self._rto

    def stats(self) -> dict[str, int]:
        """Aggregate delivery ledger (a fresh copy).

        Keys: ``data_sent`` (first transmissions), ``retransmissions``,
        ``acks_sent``, ``duplicates_suppressed``, ``delivered`` (unique
        envelopes handed to protocol handlers — the goodput), and
        ``gave_up`` (envelopes abandoned after ``max_retries``).
        """
        return dict(self._stats)

    @property
    def retransmissions(self) -> int:
        """Envelopes re-sent after an unacknowledged timeout."""
        return self._stats["retransmissions"]

    @property
    def goodput(self) -> int:
        """Unique envelopes delivered to protocol handlers."""
        return self._stats["delivered"]

    def overhead_ratio(self) -> float:
        """Wire messages per delivered envelope (1 ack each is free).

        ``(data_sent + retransmissions) / delivered`` — 1.0 on a clean
        network, growing with loss.  Returns 0.0 before any delivery.
        """
        delivered = self._stats["delivered"]
        if not delivered:
            return 0.0
        return (
            self._stats["data_sent"] + self._stats["retransmissions"]
        ) / delivered
