"""The asyncio TCP front-end: any registered counter as a live service.

A :class:`CounterService` owns a :class:`~repro.registry.RunSession`
built on the asyncio runtime and exposes its counter over a
newline-delimited TCP protocol:

=============== ===================================== =======================
Request         Response                              Meaning
=============== ===================================== =======================
``INC``         ``OK <value>``                        one test-and-increment
``INC R``       ``OK <value>``                        idempotent: retries of
                                                      request id ``R`` return
                                                      the committed value
``INC R D``     ``OK <value>`` or                     as above, with a
                ``ERR DEADLINE_EXCEEDED ...``         deadline of ``D`` ms
``STATS``       ``STATS spec=<s> n=<n> ...``          service counters
``PING``        ``PONG``                              liveness probe
``SHUTDOWN``    ``BYE``                               drain in-flight ops,
                                                      then stop
(overlong line) ``ERR LINE_TOO_LONG ...``             reader bound exceeded
(other)         ``ERR ...``                           protocol error
=============== ===================================== =======================

Concurrency model: the counter has ``n`` client processors; a pool
(:class:`asyncio.Queue`) hands each in-flight request a free processor
id and takes it back on completion, so at most ``n`` operations overlap
and each processor runs at most one at a time — exactly the discipline
the protocols assume.

Resilience (see :mod:`repro.serve.resilience`): requests beyond ``n``
wait for a processor only up to a bounded backlog — past it the service
*sheds* with ``ERR OVERLOADED`` instead of queueing without bound.  A
request whose deadline expires answers ``ERR DEADLINE_EXCEEDED``
immediately, but an operation already injected into the protocol runs
to completion in the background: its processor id returns to the pool
then, and its request id is recorded as committed, so a client retry
with the same id receives the committed value instead of
double-counting.  ``SHUTDOWN`` drains: new operations are refused with
``ERR SHUTTING_DOWN`` while in-flight ones finish.

Execution: protocol events run in a single pump task that drains the
:class:`~repro.runtime.AsyncioRuntime` whenever new work is injected —
client handlers never touch the network concurrently, so no locking is
needed anywhere.  If the pump dies *or is cancelled*, every in-flight
waiter is failed with the cause, so no client ever hangs on a stranded
future.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import (
    CapabilityError,
    DeadlineExceededError,
    OverloadedError,
    ServiceError,
    ServiceStoppedError,
)
from repro.registry import RunSession, parse_spec
from repro.serve.resilience import DedupTable, ResilienceConfig
from repro.sim.trace import TraceLevel

__all__ = ["CounterService", "LineProtocolService", "serve_counter"]


class LineProtocolService:
    """Shared machinery of the newline-delimited TCP services.

    Owns the socket lifecycle (bind, graceful drain, abort-and-join on
    stop), the bounded per-line reader, and the protocol loop with the
    commands every service speaks — ``PING``, bare ``STATS`` and
    ``SHUTDOWN``.  Subclasses add their own grammar by overriding
    :meth:`_dispatch` (return ``True`` when the command was handled)
    and hook the drain phase of :meth:`stop` via :meth:`_drain_work`.
    :class:`CounterService` serves one counter;
    :class:`repro.serve.keyed.KeyedCounterService` serves a sharded
    keyspace of them.
    """

    def __init__(
        self, host: str, port: int, config: ResilienceConfig
    ) -> None:
        self.host = host
        self.port = port
        self.config = config
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self._draining = False
        self._handlers: set[asyncio.Task] = set()
        self._client_writers: set[asyncio.StreamWriter] = set()
        self._overlong = 0

    @property
    def address(self) -> str:
        """``host:port`` once started."""
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the TCP server."""
        self._server = await asyncio.start_server(
            self._handle_client,
            self.host,
            self.port,
            limit=self.config.line_limit,
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        """Block until a ``SHUTDOWN`` (or :meth:`stop`) completes."""
        await self._stopped.wait()

    async def stop(self, *, drain: bool = True) -> None:
        """Stop serving: refuse new work, optionally drain, then halt.

        With *drain* (the default), in-flight operations get up to
        ``drain_timeout`` seconds to commit before the machinery stops;
        without it, in-flight waiters fail immediately with
        :class:`~repro.errors.ServiceStoppedError` instead of hanging.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._drain_work(drain)
        # abort lingering client connections so their handler tasks
        # finish *before* the event loop tears down (no stray
        # CancelledError noise from half-closed streams)
        for writer in list(self._client_writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._handlers:
            await asyncio.wait(list(self._handlers), timeout=2.0)
        self._stopped.set()

    async def serve_forever(self) -> None:
        """:meth:`start` then run until shut down."""
        await self.start()
        await self.wait_closed()

    async def _drain_work(self, drain: bool) -> None:
        """Subclass hook: settle or fail in-flight work during stop."""

    # ------------------------------------------------------------------
    # The TCP side
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The bare ``STATS`` payload as a dict."""
        raise NotImplementedError

    async def _dispatch(
        self, command: str, args: list[str], writer: asyncio.StreamWriter
    ) -> bool:
        """Handle a service-specific command; ``False`` if unknown."""
        return False

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._client_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # StreamReader's translation of LimitOverrunError:
                    # the line never ended within the configured bound
                    self._overlong += 1
                    writer.write(
                        f"ERR LINE_TOO_LONG protocol lines are capped at "
                        f"{self.config.line_limit} bytes\n".encode("ascii")
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                parts = line.decode("ascii", "replace").split()
                if not parts:
                    continue
                command = parts[0].upper()
                if await self._dispatch(command, parts[1:], writer):
                    pass
                elif command == "PING":
                    writer.write(b"PONG\n")
                elif command == "STATS":
                    stats = self.stats()
                    rendered = " ".join(
                        f"{key}={stats[key]}" for key in stats
                    )
                    writer.write(f"STATS {rendered}\n".encode("ascii"))
                elif command == "SHUTDOWN":
                    self._draining = True  # refuse new work immediately
                    writer.write(b"BYE\n")
                    await writer.drain()
                    asyncio.create_task(self.stop())
                    break
                else:
                    writer.write(
                        f"ERR unknown command {command!r}\n"
                        .encode("ascii", "replace")
                    )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._client_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            if task is not None:
                self._handlers.discard(task)


class CounterService(LineProtocolService):
    """Serve one counter configuration over TCP.

    Args:
        spec: registry spec string (e.g. ``"ww-tree?interval_mode=wrap"``).
            Sequential-only specs are rejected: a network service
            overlaps operations by construction.
        n: number of client processors (= maximum in-flight operations).
        host: interface to bind.
        port: TCP port (0 = let the OS pick; read :attr:`port` after
            :meth:`start`).
        policy: delivery-policy name forwarded to the session.
        seed: seed forwarded to the session.
        time_scale: real seconds per unit of simulated time (0 = run the
            protocol flat out; >0 makes simulated delays real).
        trace_level: trace fidelity (loads-only is faster for pure
            benchmarking).
        resilience: server-side resilience policy
            (:class:`~repro.serve.resilience.ResilienceConfig`);
            defaults to bounded backlog, no default deadline.
    """

    def __init__(
        self,
        spec: str,
        n: int,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        policy: str | None = None,
        seed: int = 0,
        time_scale: float = 0.0,
        trace_level: TraceLevel | str = TraceLevel.FULL,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        ref = parse_spec(spec)
        if not ref.capabilities.supports_concurrent:
            reason = (
                ref.capabilities.restriction
                or "the protocol is sequential-only"
            )
            raise CapabilityError(
                f"cannot serve {ref.canonical!r}: {reason}"
            )
        self.session = RunSession(
            ref,
            n,
            policy=policy,
            seed=seed,
            trace_level=trace_level,
            runtime="asyncio",
            time_scale=time_scale,
        )
        super().__init__(
            host,
            port,
            resilience if resilience is not None else ResilienceConfig(),
        )
        self._pump_task: asyncio.Task | None = None
        self._work = asyncio.Event()
        self._pid_pool: asyncio.Queue[int] = asyncio.Queue()
        for pid in self.session.counter.client_ids():
            self._pid_pool.put_nowait(pid)
        self._waiters: dict[int, asyncio.Future[int]] = {}
        self._commits: set[asyncio.Task[int]] = set()
        self._dedup = DedupTable(self.config.dedup_capacity)
        self._op_index = 0
        self._served = 0
        self._backlog = 0
        self._shed = 0
        self._expired = 0
        self._deduped = 0
        self._install_result_hook()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        """Canonical spec string of the served counter."""
        return self.session.canonical

    @property
    def n(self) -> int:
        """Client processors (= maximum in-flight operations)."""
        return self.session.n

    @property
    def served(self) -> int:
        """Committed ``INC`` operations so far (= the counter's value)."""
        return self._served

    @property
    def inflight(self) -> int:
        """Operations currently between injection and result delivery."""
        return len(self._waiters)

    @property
    def backlog(self) -> int:
        """Admitted operations waiting for a free processor."""
        return self._backlog

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the TCP server and start the protocol pump."""
        await super().start()
        self._pump_task = asyncio.create_task(self._pump())

    async def _drain_work(self, drain: bool) -> None:
        """Drain in-flight commits (optionally), then stop the pump."""
        if drain and self._commits:
            self._work.set()
            await asyncio.wait(
                list(self._commits), timeout=self.config.drain_timeout
            )
        if self._pump_task is not None:
            self._work.set()  # unblock the pump so it can observe the stop
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------
    # The counter side
    # ------------------------------------------------------------------
    def _install_result_hook(self) -> None:
        counter = self.session.counter
        original = counter.deliver_result

        def deliver(pid: int, value: int) -> None:
            original(pid, value)
            future = self._waiters.pop(pid, None)
            if future is not None and not future.done():
                future.set_result(value)

        counter.deliver_result = deliver  # type: ignore[method-assign]

    def _poison_waiters(self, error: BaseException) -> None:
        """Fail every in-flight waiter so no client hangs forever."""
        for future in self._waiters.values():
            if not future.done():
                future.set_exception(error)
        self._waiters.clear()

    async def _pump(self) -> None:
        """Drain the runtime whenever a handler injects new work.

        Neither a protocol failure (e.g. an exhausted event budget) nor
        a cancellation mid-drain may strand in-flight clients on
        never-resolving futures: both paths fail every waiter before
        the pump dies, so their handlers answer ``ERR`` instead of
        hanging.
        """
        runtime = self.session.runtime
        try:
            while True:
                await self._work.wait()
                self._work.clear()
                await runtime.drain()
        except asyncio.CancelledError:
            self._poison_waiters(
                ServiceStoppedError(
                    "service stopped with the operation in flight"
                )
            )
            raise
        except Exception as exc:
            self._poison_waiters(exc)
            raise

    async def inc(
        self,
        *,
        rid: str | None = None,
        deadline: float | None = None,
    ) -> int:
        """Run one increment, subject to the resilience policy.

        Args:
            rid: client-supplied request id.  A repeated ``rid``
                attaches to the original operation (in flight) or
                returns its committed value — never a second increment.
            deadline: seconds this call may take (admission wait
                included); ``None`` falls back to the config's
                ``default_deadline``.  Expiry raises
                :class:`~repro.errors.DeadlineExceededError`; an
                already-injected operation still commits in the
                background.

        Raises:
            OverloadedError: the admission backlog is full.
            ServiceStoppedError: the service is draining or stopped.
            DeadlineExceededError: the deadline expired first.
        """
        if self._draining:
            raise ServiceStoppedError("service is shutting down")
        loop = asyncio.get_running_loop()
        if deadline is None:
            deadline = self.config.default_deadline
        expires = None if deadline is None else loop.time() + deadline
        entry = None
        if rid is not None:
            existing = self._dedup.get(rid)
            if existing is not None:
                self._deduped += 1
                return await self._await_value(existing.future, expires)
            entry = self._dedup.create(rid, loop.create_future())
        try:
            pid = await self._admit(expires)
        except BaseException as exc:
            # nothing was injected: forget the rid so a retry may try
            # again (and wake any co-waiter with the same failure)
            if rid is not None:
                self._dedup.fail(rid, exc)
            raise
        future: asyncio.Future[int] = loop.create_future()
        self._waiters[pid] = future
        op_index = self._op_index
        self._op_index += 1
        self.session.counter.begin_inc(pid, op_index)
        commit = loop.create_task(self._commit(pid, future, rid))
        self._commits.add(commit)
        commit.add_done_callback(self._reap_commit)
        self._work.set()
        return await self._await_value(commit, expires)

    async def _admit(self, expires: float | None) -> int:
        """Lease a processor id, shedding or expiring as configured."""
        if (
            self.config.max_backlog is not None
            and self._pid_pool.empty()
            and self._backlog >= self.config.max_backlog
        ):
            self._shed += 1
            raise OverloadedError(
                f"admission backlog full ({self._backlog} waiting, "
                f"cap {self.config.max_backlog})"
            )
        loop = asyncio.get_running_loop()
        self._backlog += 1
        try:
            if expires is None:
                return await self._pid_pool.get()
            try:
                return await asyncio.wait_for(
                    self._pid_pool.get(), max(0.0, expires - loop.time())
                )
            except asyncio.TimeoutError:
                self._expired += 1
                raise DeadlineExceededError(
                    "deadline expired waiting for a free processor"
                ) from None
        finally:
            self._backlog -= 1

    async def _await_value(self, awaitable: Any, expires: float | None) -> int:
        """Await a commit (task or rid future) under the deadline."""
        if expires is None:
            return await asyncio.shield(awaitable)
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                asyncio.shield(awaitable), max(0.0, expires - loop.time())
            )
        except asyncio.TimeoutError:
            self._expired += 1
            raise DeadlineExceededError(
                "deadline expired with the operation in flight; it will "
                "commit in the background — retry with the same request "
                "id for its value"
            ) from None

    async def _commit(
        self, pid: int, future: asyncio.Future[int], rid: str | None
    ) -> int:
        """Finish one injected operation: value, lease return, dedup."""
        try:
            value = await future
        except BaseException as exc:
            # the pump died with the op in flight: return the lease and
            # release any rid retries with the same failure
            self._pid_pool.put_nowait(pid)
            if rid is not None:
                self._dedup.fail(rid, exc)
            raise
        self._pid_pool.put_nowait(pid)
        self._served += 1
        if rid is not None:
            self._dedup.commit(rid, value)
        return value

    def _reap_commit(self, task: asyncio.Task[int]) -> None:
        self._commits.discard(task)
        if not task.cancelled():
            task.exception()  # deadline-abandoned commits must not warn

    def stats(self) -> dict[str, Any]:
        """The ``STATS`` payload as a dict (also used by the CLI).

        Field order is part of the wire contract (tests pin it):
        ``spec n served inflight backlog shed expired deduped
        rid_committed messages``.
        """
        return {
            "spec": self.spec,
            "n": self.n,
            "served": self._served,
            "inflight": self.inflight,
            "backlog": self._backlog,
            "shed": self._shed,
            "expired": self._expired,
            "deduped": self._deduped,
            "rid_committed": self._dedup.committed_total,
            "messages": self.session.network.trace.total_messages,
        }

    # ------------------------------------------------------------------
    # The TCP side
    # ------------------------------------------------------------------
    async def _handle_inc(
        self, writer: asyncio.StreamWriter, args: list[str]
    ) -> None:
        rid = args[0] if args else None
        deadline: float | None = None
        if len(args) > 1:
            try:
                deadline = float(args[1]) / 1000.0
            except ValueError:
                deadline = -1.0
            if deadline <= 0 or len(args) > 2:
                writer.write(
                    b"ERR BAD_REQUEST usage: INC [rid] [deadline_ms>0]\n"
                )
                return
        try:
            value = await self.inc(rid=rid, deadline=deadline)
        except ServiceError as exc:
            writer.write(
                f"ERR {exc.code} {exc}\n".encode("ascii", "replace")
            )
        except Exception as exc:
            writer.write(
                f"ERR {type(exc).__name__}: {exc}\n"
                .encode("ascii", "replace")
            )
        else:
            writer.write(f"OK {value}\n".encode("ascii"))

    async def _dispatch(
        self, command: str, args: list[str], writer: asyncio.StreamWriter
    ) -> bool:
        if command == "INC":
            await self._handle_inc(writer, args)
            return True
        return False


async def serve_counter(
    spec: str,
    n: int,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    policy: str | None = None,
    seed: int = 0,
    time_scale: float = 0.0,
    resilience: ResilienceConfig | None = None,
    announce: bool = False,
) -> None:
    """Convenience runner: build a :class:`CounterService` and serve.

    With *announce* the bound address is printed as
    ``SERVING <spec> n=<n> <host>:<port>`` once the socket is ready —
    machine-readable, so scripts (the CI smoke test) can bind port 0 and
    discover the real port.
    """
    service = CounterService(
        spec,
        n,
        host,
        port,
        policy=policy,
        seed=seed,
        time_scale=time_scale,
        resilience=resilience,
    )
    await service.start()
    if announce:
        print(
            f"SERVING {service.spec} n={service.n} {service.address}",
            flush=True,
        )
    await service.wait_closed()
