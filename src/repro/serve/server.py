"""The asyncio TCP front-end: any registered counter as a live service.

A :class:`CounterService` owns a :class:`~repro.registry.RunSession`
built on the asyncio runtime and exposes its counter over a
newline-delimited TCP protocol:

========== ===================================== =======================
Request    Response                              Meaning
========== ===================================== =======================
``INC``    ``OK <value>``                        one test-and-increment
``STATS``  ``STATS spec=<s> n=<n> served=<k>``   service counters
           `` inflight=<j> messages=<m>``
``PING``   ``PONG``                              liveness probe
``SHUTDOWN`` ``BYE``                             drain and stop
(other)    ``ERR <reason>``                      protocol error
========== ===================================== =======================

Concurrency model: the counter has ``n`` client processors; a pool
(:class:`asyncio.Queue`) hands each in-flight request a free processor
id and takes it back on completion, so at most ``n`` operations overlap
and each processor runs at most one at a time — exactly the discipline
the protocols assume.  Requests beyond ``n`` queue on the pool, so the
TCP service has the same concurrency-limited capacity the simulated
open-loop driver models.

Execution: protocol events run in a single pump task that drains the
:class:`~repro.runtime.AsyncioRuntime` whenever new work is injected —
client handlers never touch the network concurrently, so no locking is
needed anywhere.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import CapabilityError
from repro.registry import RunSession, parse_spec
from repro.sim.trace import TraceLevel

__all__ = ["CounterService", "serve_counter"]


class CounterService:
    """Serve one counter configuration over TCP.

    Args:
        spec: registry spec string (e.g. ``"ww-tree?interval_mode=wrap"``).
            Sequential-only specs are rejected: a network service
            overlaps operations by construction.
        n: number of client processors (= maximum in-flight operations).
        host: interface to bind.
        port: TCP port (0 = let the OS pick; read :attr:`port` after
            :meth:`start`).
        policy: delivery-policy name forwarded to the session.
        seed: seed forwarded to the session.
        time_scale: real seconds per unit of simulated time (0 = run the
            protocol flat out; >0 makes simulated delays real).
        trace_level: trace fidelity (loads-only is faster for pure
            benchmarking).
    """

    def __init__(
        self,
        spec: str,
        n: int,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        policy: str | None = None,
        seed: int = 0,
        time_scale: float = 0.0,
        trace_level: TraceLevel | str = TraceLevel.FULL,
    ) -> None:
        ref = parse_spec(spec)
        if not ref.capabilities.supports_concurrent:
            reason = (
                ref.capabilities.restriction
                or "the protocol is sequential-only"
            )
            raise CapabilityError(
                f"cannot serve {ref.canonical!r}: {reason}"
            )
        self.session = RunSession(
            ref,
            n,
            policy=policy,
            seed=seed,
            trace_level=trace_level,
            runtime="asyncio",
            time_scale=time_scale,
        )
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._work = asyncio.Event()
        self._stopped = asyncio.Event()
        self._pid_pool: asyncio.Queue[int] = asyncio.Queue()
        for pid in self.session.counter.client_ids():
            self._pid_pool.put_nowait(pid)
        self._waiters: dict[int, asyncio.Future[int]] = {}
        self._op_index = 0
        self._served = 0
        self._install_result_hook()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        """Canonical spec string of the served counter."""
        return self.session.canonical

    @property
    def n(self) -> int:
        """Client processors (= maximum in-flight operations)."""
        return self.session.n

    @property
    def served(self) -> int:
        """Completed ``INC`` operations so far."""
        return self._served

    @property
    def inflight(self) -> int:
        """Operations currently between injection and result delivery."""
        return len(self._waiters)

    @property
    def address(self) -> str:
        """``host:port`` once started."""
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the TCP server and start the protocol pump."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._pump_task = asyncio.create_task(self._pump())

    async def wait_closed(self) -> None:
        """Block until a ``SHUTDOWN`` (or :meth:`stop`) completes."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain pending protocol work and stop serving."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pump_task is not None:
            self._work.set()  # unblock the pump so it can observe the stop
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        self._stopped.set()

    async def serve_forever(self) -> None:
        """:meth:`start` then run until shut down."""
        await self.start()
        await self.wait_closed()

    # ------------------------------------------------------------------
    # The counter side
    # ------------------------------------------------------------------
    def _install_result_hook(self) -> None:
        counter = self.session.counter
        original = counter.deliver_result

        def deliver(pid: int, value: int) -> None:
            original(pid, value)
            future = self._waiters.pop(pid, None)
            if future is not None and not future.done():
                future.set_result(value)

        counter.deliver_result = deliver  # type: ignore[method-assign]

    async def _pump(self) -> None:
        """Drain the runtime whenever a handler injects new work.

        A protocol failure (e.g. an exhausted event budget) must not
        strand in-flight clients on never-resolving futures: the pump
        fails every waiter with the error before dying, so their
        handlers answer ``ERR`` instead of hanging.
        """
        runtime = self.session.runtime
        try:
            while True:
                await self._work.wait()
                self._work.clear()
                await runtime.drain()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            for future in self._waiters.values():
                if not future.done():
                    future.set_exception(exc)
            self._waiters.clear()
            raise

    async def inc(self) -> int:
        """Run one increment: lease a processor, inject, await the value."""
        pid = await self._pid_pool.get()
        future: asyncio.Future[int] = (
            asyncio.get_running_loop().create_future()
        )
        self._waiters[pid] = future
        op_index = self._op_index
        self._op_index += 1
        self.session.counter.begin_inc(pid, op_index)
        self._work.set()
        try:
            value = await future
        finally:
            self._pid_pool.put_nowait(pid)
        self._served += 1
        return value

    def stats(self) -> dict[str, Any]:
        """The ``STATS`` payload as a dict (also used by the CLI)."""
        return {
            "spec": self.spec,
            "n": self.n,
            "served": self._served,
            "inflight": self.inflight,
            "messages": self.session.network.trace.total_messages,
        }

    # ------------------------------------------------------------------
    # The TCP side
    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                command = line.decode("ascii", "replace").strip().upper()
                if command == "INC":
                    try:
                        value = await self.inc()
                    except Exception as exc:
                        writer.write(
                            f"ERR {type(exc).__name__}: {exc}\n"
                            .encode("ascii", "replace")
                        )
                    else:
                        writer.write(f"OK {value}\n".encode("ascii"))
                elif command == "PING":
                    writer.write(b"PONG\n")
                elif command == "STATS":
                    stats = self.stats()
                    rendered = " ".join(
                        f"{key}={stats[key]}" for key in stats
                    )
                    writer.write(f"STATS {rendered}\n".encode("ascii"))
                elif command == "SHUTDOWN":
                    writer.write(b"BYE\n")
                    await writer.drain()
                    asyncio.create_task(self.stop())
                    break
                elif command:
                    writer.write(
                        f"ERR unknown command {command!r}\n".encode("ascii")
                    )
                else:
                    continue
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def serve_counter(
    spec: str,
    n: int,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    policy: str | None = None,
    seed: int = 0,
    time_scale: float = 0.0,
    announce: bool = False,
) -> None:
    """Convenience runner: build a :class:`CounterService` and serve.

    With *announce* the bound address is printed as
    ``SERVING <spec> n=<n> <host>:<port>`` once the socket is ready —
    machine-readable, so scripts (the CI smoke test) can bind port 0 and
    discover the real port.
    """
    service = CounterService(
        spec, n, host, port, policy=policy, seed=seed, time_scale=time_scale
    )
    await service.start()
    if announce:
        print(
            f"SERVING {service.spec} n={service.n} {service.address}",
            flush=True,
        )
    await service.wait_closed()
