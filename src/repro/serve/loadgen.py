"""Open-loop load generation against a running counter service.

The generator is *open-loop*: request send times come from an arrival
process (Poisson or bursty, see
:mod:`repro.workloads.sequences`) fixed before the run, independent of
how fast the server answers.  Latency is measured from the scheduled
arrival time — a request that had to wait for a free connection counts
that wait, exactly like a user behind a saturated service would.  This
is the measurement discipline that makes the saturation knee visible;
a closed-loop client would politely slow down instead.

:func:`run_load` drives one offered rate; :func:`run_rate_sweep` walks
an ascending rate grid and reports the detected knee
(:func:`repro.analysis.latency.detect_knee` on mean latency).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.workloads.sequences import arrival_times

__all__ = ["LoadResult", "SweepResult", "run_load", "run_rate_sweep"]


@dataclass(slots=True)
class LoadResult:
    """One load-generation run at a single offered rate."""

    offered_rate: float
    process: str
    sent: int
    completed: int
    errors: int
    duration: float
    final_value: int
    latencies: list[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Completed operations per second over the run."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_latency(self) -> float:
        """Average arrival-to-response latency in seconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        """Latency at quantile *q* in [0, 1] (nearest-rank), seconds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self.latencies)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    @property
    def p50(self) -> float:
        """Median latency, seconds."""
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        """99th-percentile latency, seconds."""
        return self.percentile(0.99)

    def summary(self) -> str:
        """One human-readable line (the CLI's per-rate output)."""
        return (
            f"rate={self.offered_rate:g}/s sent={self.sent} "
            f"ok={self.completed} err={self.errors} "
            f"tput={self.throughput:.1f}/s "
            f"p50={self.p50 * 1000:.2f}ms p99={self.p99 * 1000:.2f}ms"
        )


@dataclass(slots=True)
class SweepResult:
    """A rate sweep and its detected saturation knee."""

    runs: list[LoadResult]
    knee_rate: float | None

    @property
    def rates(self) -> list[float]:
        """The swept offered rates, ascending."""
        return [run.offered_rate for run in self.runs]


class _ConnectionPool:
    """A lazily-grown pool of persistent connections to the service.

    One request is in flight per connection (the line protocol answers
    in order), so the pool size caps client-side concurrency; arrivals
    beyond it wait for a free connection and their wait counts toward
    measured latency.
    """

    def __init__(self, host: str, port: int, limit: int) -> None:
        self._host = host
        self._port = port
        self._limit = limit
        self._created = 0
        self._free: asyncio.Queue = asyncio.Queue()

    async def acquire(self):
        if self._free.empty() and self._created < self._limit:
            self._created += 1
            try:
                return await asyncio.open_connection(self._host, self._port)
            except BaseException:
                self._created -= 1
                raise
        return await self._free.get()

    def release(self, connection) -> None:
        self._free.put_nowait(connection)

    async def close(self) -> None:
        while not self._free.empty():
            _, writer = self._free.get_nowait()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def _inc_once(pool: _ConnectionPool) -> int:
    """One INC round-trip over a pooled connection; returns the value."""
    reader, writer = await pool.acquire()
    try:
        writer.write(b"INC\n")
        await writer.drain()
        line = await reader.readline()
    except BaseException:
        writer.close()
        raise
    pool.release((reader, writer))
    text = line.decode("ascii", "replace").strip()
    if not text.startswith("OK "):
        raise ProtocolError(f"INC failed: server answered {text!r}")
    return int(text[3:])


async def run_load(
    host: str,
    port: int,
    ops: int,
    rate: float,
    *,
    process: str = "poisson",
    seed: int = 0,
    max_connections: int = 64,
) -> LoadResult:
    """Drive *ops* increments at offered *rate* (ops/second).

    Arrival offsets come from the named *process*; each request is sent
    at its scheduled wall-clock time (never earlier) and measured from
    it.  *max_connections* caps client-side concurrency — requests
    arriving faster than connections free up queue, and their queueing
    time is part of the measured latency.
    """
    arrivals = arrival_times(process, ops, rate, seed=seed)
    pool = _ConnectionPool(host, port, max_connections)
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    values: list[int] = []
    errors = 0

    start = loop.time()

    async def one(offset: float) -> None:
        nonlocal errors
        target = start + offset
        delay = target - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            value = await _inc_once(pool)
        except (ProtocolError, OSError, ValueError):
            errors += 1
            return
        latencies.append(loop.time() - target)
        values.append(value)

    try:
        await asyncio.gather(*(one(offset) for offset in arrivals))
    finally:
        await pool.close()
    return LoadResult(
        offered_rate=rate,
        process=process,
        sent=ops,
        completed=len(values),
        errors=errors,
        duration=loop.time() - start,
        final_value=max(values, default=-1) + 1,
        latencies=latencies,
    )


async def run_rate_sweep(
    host: str,
    port: int,
    ops: int,
    rates: list[float] | tuple[float, ...],
    *,
    process: str = "poisson",
    seed: int = 0,
    max_connections: int = 64,
    knee_threshold: float = 3.0,
) -> SweepResult:
    """Run :func:`run_load` at each of the ascending *rates*; find the knee.

    The knee is the first rate whose mean latency exceeds
    *knee_threshold* times the lowest rate's — ``None`` if the sweep
    never saturated the service.
    """
    from repro.analysis.latency import detect_knee

    if list(rates) != sorted(rates):
        raise ValueError("sweep rates must be ascending")
    runs: list[LoadResult] = []
    for index, rate in enumerate(rates):
        runs.append(
            await run_load(
                host,
                port,
                ops,
                rate,
                process=process,
                seed=seed + index,
                max_connections=max_connections,
            )
        )
    knee = detect_knee(
        [run.offered_rate for run in runs],
        [run.mean_latency for run in runs],
        threshold=knee_threshold,
    )
    return SweepResult(runs=runs, knee_rate=knee)
