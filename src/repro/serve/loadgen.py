"""Open-loop load generation against a running counter service.

The generator is *open-loop*: request send times come from an arrival
process (Poisson or bursty, see
:mod:`repro.workloads.sequences`) fixed before the run, independent of
how fast the server answers.  Latency is measured from the scheduled
arrival time — a request that had to wait for a free connection counts
that wait, exactly like a user behind a saturated service would.  This
is the measurement discipline that makes the saturation knee visible;
a closed-loop client would politely slow down instead.

Resilience (opt-in via ``retry=``): each request carries a unique
request id and a deadline, failures are classified and counted per
type instead of killing the run, retries back off exponentially with
full jitter under a shared :class:`~repro.serve.resilience.RetryBudget`,
and the connection pool sits behind a
:class:`~repro.serve.resilience.CircuitBreaker` that fails fast after
consecutive transport errors.  Because the server dedups request ids,
a retried increment can never double-count — the client may safely
retry even ``ERR DEADLINE_EXCEEDED``, whose operation might have
committed.

:func:`run_load` drives one offered rate; :func:`run_rate_sweep` walks
an ascending rate grid and reports the detected knee
(:func:`repro.analysis.latency.detect_knee` on mean latency).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    ServiceStoppedError,
)
from repro.serve.resilience import CircuitBreaker, RetryBudget, RetryPolicy
from repro.workloads.sequences import arrival_times, zipf_keys

__all__ = [
    "KeyedLoadResult",
    "LoadResult",
    "SweepResult",
    "run_keyed_load",
    "run_load",
    "run_rate_sweep",
]


@dataclass(slots=True)
class LoadResult:
    """One load-generation run at a single offered rate."""

    offered_rate: float
    process: str
    sent: int
    completed: int
    errors: int
    duration: float
    final_value: int
    latencies: list[float] = field(default_factory=list)
    values: list[int] = field(default_factory=list)
    error_counts: dict[str, int] = field(default_factory=dict)
    retries: int = 0

    @property
    def throughput(self) -> float:
        """Completed operations per second over the run (goodput)."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_latency(self) -> float:
        """Average arrival-to-response latency in seconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        """Latency at quantile *q* in [0, 1] (nearest-rank), seconds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self.latencies)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    @property
    def p50(self) -> float:
        """Median latency, seconds."""
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        """99th-percentile latency, seconds."""
        return self.percentile(0.99)

    def summary(self) -> str:
        """One human-readable line (the CLI's per-rate output)."""
        line = (
            f"rate={self.offered_rate:g}/s sent={self.sent} "
            f"ok={self.completed} err={self.errors} "
            f"tput={self.throughput:.1f}/s "
            f"p50={self.p50 * 1000:.2f}ms p99={self.p99 * 1000:.2f}ms"
        )
        if self.retries:
            line += f" retries={self.retries}"
        if self.error_counts:
            breakdown = ",".join(
                f"{kind}:{count}"
                for kind, count in sorted(self.error_counts.items())
            )
            line += f" err_types={breakdown}"
        return line


@dataclass(slots=True)
class KeyedLoadResult(LoadResult):
    """A keyed load run: per-key values on top of the usual metrics.

    ``key_values`` maps each key to the values its completed requests
    observed.  Because a key's value is its private ledger count, the
    exactness oracle is per key: when every request for key ``k``
    completed, ``sorted(key_values[k])`` must be a contiguous run of
    consecutive integers — each increment got a distinct consecutive
    slot, none lost, none doubled.  Against a fresh service the run
    starts at 0; against a service that already served the key it
    starts at the key's prior count, which is why the check anchors at
    the observed minimum rather than at zero.
    """

    key_population: int = 0
    key_values: dict[str, list[int]] = field(default_factory=dict)

    def exactness_violations(self) -> list[str]:
        """Keys whose observed values are not one consecutive run."""
        violations = []
        for key, values in sorted(self.key_values.items()):
            lo = min(values)
            if sorted(values) != list(range(lo, lo + len(values))):
                violations.append(key)
        return violations


@dataclass(slots=True)
class SweepResult:
    """A rate sweep and its detected saturation knee."""

    runs: list[LoadResult]
    knee_rate: float | None

    @property
    def rates(self) -> list[float]:
        """The swept offered rates, ascending."""
        return [run.offered_rate for run in self.runs]


def _classify(error: BaseException) -> str:
    """Map a per-request failure to its accounting bucket."""
    if isinstance(error, OverloadedError):
        return "overloaded"
    if isinstance(error, DeadlineExceededError):
        return "deadline"
    if isinstance(error, CircuitOpenError):
        return "circuit_open"
    if isinstance(error, ServiceStoppedError):
        return "shutting_down"
    if isinstance(error, asyncio.TimeoutError):
        return "timeout"
    if isinstance(error, (ConnectionError, OSError, asyncio.IncompleteReadError)):
        return "connection"
    return "protocol"


_RETRYABLE = ("overloaded", "deadline", "circuit_open", "timeout", "connection")
"""Buckets worth retrying: transient overload or transport loss.  A
``protocol`` error is a contract violation and a ``shutting_down``
answer will not get better — neither is retried."""

_ERR_CODES: dict[str, type[Exception]] = {
    "OVERLOADED": OverloadedError,
    "DEADLINE_EXCEEDED": DeadlineExceededError,
    "SHUTTING_DOWN": ServiceStoppedError,
}


class _ConnectionPool:
    """A lazily-grown pool of persistent connections to the service.

    One request is in flight per connection (the line protocol answers
    in order), so the pool size caps client-side concurrency; arrivals
    beyond it wait for a free connection and their wait counts toward
    measured latency.

    A connection that fails mid-request is *discarded* — its slot
    returns to the pool as a permission to dial a fresh connection, so
    chaos-induced resets cannot silently shrink client concurrency to
    zero.  An optional :class:`CircuitBreaker` gates acquisition.
    """

    def __init__(
        self,
        host: str,
        port: int,
        limit: int,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._limit = limit
        self._breaker = breaker
        self._created = 0
        # holds live (reader, writer) pairs and None tokens, each token
        # being permission to dial a replacement connection
        self._free: asyncio.Queue = asyncio.Queue()

    async def _dial(self):
        self._created += 1
        try:
            connection = await asyncio.open_connection(self._host, self._port)
        except BaseException:
            self._created -= 1
            self.note_failure()
            raise
        return connection

    async def acquire(self):
        if self._breaker is not None and not self._breaker.allow():
            raise CircuitOpenError(
                f"circuit breaker is {self._breaker.state}; "
                "failing fast instead of dialing"
            )
        if self._free.empty() and self._created < self._limit:
            return await self._dial()
        connection = await self._free.get()
        if connection is None:  # a discarded slot: dial a replacement
            return await self._dial()
        return connection

    def release(self, connection) -> None:
        self._free.put_nowait(connection)

    def discard(self, connection) -> None:
        """Drop a broken connection; free its slot for a fresh dial."""
        _, writer = connection
        writer.close()
        self._created -= 1
        self._free.put_nowait(None)

    def note_success(self) -> None:
        if self._breaker is not None:
            self._breaker.record_success()

    def note_failure(self) -> None:
        if self._breaker is not None:
            self._breaker.record_failure()

    async def close(self) -> None:
        while not self._free.empty():
            connection = self._free.get_nowait()
            if connection is None:
                continue
            _, writer = connection
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def _inc_once(
    pool: _ConnectionPool,
    rid: str | None = None,
    deadline: float | None = None,
    timeout: float | None = None,
    key: str | None = None,
) -> int:
    """One INC round-trip over a pooled connection; returns the value.

    With *key* the request is the keyed form ``INC <key> [rid]
    [deadline_ms]`` (see :class:`~repro.serve.KeyedCounterService`).
    *timeout* bounds the round-trip on the client side (a blackholed
    connection would otherwise hang forever); on timeout the connection
    is discarded, because a late response would desynchronize the
    request/response pairing of the pooled stream.
    """
    connection = await pool.acquire()
    reader, writer = connection
    request = "INC" if key is None else f"INC {key}"
    if rid is not None:
        request += f" {rid}"
        if deadline is not None:
            request += f" {deadline * 1000:g}"
    try:
        writer.write(f"{request}\n".encode("ascii"))
        await writer.drain()
        if timeout is None:
            line = await reader.readline()
        else:
            line = await asyncio.wait_for(reader.readline(), timeout)
    except BaseException:
        pool.discard(connection)
        pool.note_failure()
        raise
    if not line.endswith(b"\n"):
        # empty (EOF) or truncated mid-line: the connection died and
        # the answer — if any — is unusable; the operation may still
        # have committed server-side, so this must stay retryable
        pool.discard(connection)
        pool.note_failure()
        raise ConnectionResetError(
            "connection lost mid-answer"
            if line
            else "server closed the connection mid-request"
        )
    text = line.decode("ascii", "replace").strip()
    pool.release(connection)
    pool.note_success()
    if text.startswith("OK "):
        return int(text[3:])
    if text.startswith("ERR "):
        code = text[4:].split(None, 1)[0] if len(text) > 4 else ""
        error_type = _ERR_CODES.get(code, ProtocolError)
        raise error_type(f"INC failed: server answered {text!r}")
    raise ProtocolError(f"INC failed: server answered {text!r}")


async def run_load(
    host: str,
    port: int,
    ops: int,
    rate: float,
    *,
    process: str = "poisson",
    seed: int = 0,
    max_connections: int = 64,
    retry: RetryPolicy | None = None,
    retry_budget: RetryBudget | None = None,
    deadline: float | None = None,
    attempt_timeout: float | None = None,
    breaker: CircuitBreaker | None = None,
    rid_prefix: str | None = None,
) -> LoadResult:
    """Drive *ops* increments at offered *rate* (ops/second).

    Arrival offsets come from the named *process*; each request is sent
    at its scheduled wall-clock time (never earlier) and measured from
    it.  *max_connections* caps client-side concurrency — requests
    arriving faster than connections free up queue, and their queueing
    time is part of the measured latency.

    Failures never kill the run: each request's final failure is
    counted in ``error_counts`` by type.  With *retry* set, every
    request carries a unique request id (``{rid_prefix}-{index}``) and
    retryable failures back off with full jitter, up to
    ``retry.attempts`` tries and within *retry_budget* (defaults to
    ``ops * (attempts - 1)``); the server's request-id dedup makes
    retries exactly-once.  *deadline* (seconds) rides on each request;
    *attempt_timeout* bounds each round-trip client-side (default:
    ``1.5 * deadline + 0.1`` when a deadline is set) so a blackholed
    connection cannot hang the generator.  *breaker* gates the
    connection pool.
    """
    arrivals = arrival_times(process, ops, rate, seed=seed)
    pool = _ConnectionPool(host, port, max_connections, breaker)
    loop = asyncio.get_running_loop()
    jitter_rng = random.Random(seed ^ 0x5EED)
    if attempt_timeout is None and deadline is not None:
        attempt_timeout = 1.5 * deadline + 0.1
    if retry is not None and retry_budget is None:
        retry_budget = RetryBudget(ops * (retry.attempts - 1))
    if rid_prefix is None and retry is not None:
        rid_prefix = f"lg{seed}"
    latencies: list[float] = []
    values: list[int] = []
    error_counts: dict[str, int] = {}
    errors = 0
    retries = 0

    async def one(index: int, offset: float) -> None:
        nonlocal errors, retries
        target = start + offset
        delay = target - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        rid = None if rid_prefix is None else f"{rid_prefix}-{index}"
        attempts = retry.attempts if retry is not None else 1
        for attempt in range(attempts):
            try:
                value = await _inc_once(
                    pool, rid, deadline, timeout=attempt_timeout
                )
            except Exception as exc:
                kind = _classify(exc)
                can_retry = (
                    retry is not None
                    and attempt + 1 < attempts
                    and kind in _RETRYABLE
                    and (retry_budget is None or retry_budget.take())
                )
                if not can_retry:
                    errors += 1
                    error_counts[kind] = error_counts.get(kind, 0) + 1
                    return
                retries += 1
                backoff = retry.delay(attempt, jitter_rng)
                if backoff > 0:
                    await asyncio.sleep(backoff)
                continue
            latencies.append(loop.time() - target)
            values.append(value)
            return

    start = loop.time()
    try:
        await asyncio.gather(
            *(one(index, offset) for index, offset in enumerate(arrivals))
        )
    finally:
        await pool.close()
    return LoadResult(
        offered_rate=rate,
        process=process,
        sent=ops,
        completed=len(values),
        errors=errors,
        duration=loop.time() - start,
        final_value=max(values, default=-1) + 1,
        latencies=latencies,
        values=values,
        error_counts=error_counts,
        retries=retries,
    )


async def run_keyed_load(
    host: str,
    port: int,
    ops: int,
    rate: float,
    *,
    keys: int = 64,
    zipf: float = 1.1,
    key_prefix: str = "k",
    process: str = "poisson",
    seed: int = 0,
    max_connections: int = 64,
    retry: RetryPolicy | None = None,
    retry_budget: RetryBudget | None = None,
    deadline: float | None = None,
    attempt_timeout: float | None = None,
    breaker: CircuitBreaker | None = None,
    rid_prefix: str | None = None,
) -> KeyedLoadResult:
    """Drive *ops* keyed increments at offered *rate* (ops/second).

    The keyed sibling of :func:`run_load`, against a
    :class:`~repro.serve.KeyedCounterService`: each request increments
    a key drawn from a Zipf(*zipf*) popularity distribution over *keys*
    names (:func:`~repro.workloads.sequences.zipf_keys` — ``k00`` is
    always the hottest).  Arrival pacing, retry/deadline/breaker
    semantics and error accounting are identical to :func:`run_load`;
    additionally every completed request's value is recorded per key,
    so :meth:`KeyedLoadResult.exactness_violations` can check the
    per-key exactly-once contract after the run.
    """
    arrivals = arrival_times(process, ops, rate, seed=seed)
    request_keys = zipf_keys(
        keys, ops, skew=zipf, seed=seed ^ 0x6B65, prefix=key_prefix
    )
    pool = _ConnectionPool(host, port, max_connections, breaker)
    loop = asyncio.get_running_loop()
    jitter_rng = random.Random(seed ^ 0x5EED)
    if attempt_timeout is None and deadline is not None:
        attempt_timeout = 1.5 * deadline + 0.1
    if retry is not None and retry_budget is None:
        retry_budget = RetryBudget(ops * (retry.attempts - 1))
    if rid_prefix is None and retry is not None:
        rid_prefix = f"klg{seed}"
    latencies: list[float] = []
    values: list[int] = []
    key_values: dict[str, list[int]] = {}
    error_counts: dict[str, int] = {}
    errors = 0
    retries = 0

    async def one(index: int, offset: float) -> None:
        nonlocal errors, retries
        target = start + offset
        delay = target - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        key = request_keys[index]
        rid = None if rid_prefix is None else f"{rid_prefix}-{index}"
        attempts = retry.attempts if retry is not None else 1
        for attempt in range(attempts):
            try:
                value = await _inc_once(
                    pool, rid, deadline, timeout=attempt_timeout, key=key
                )
            except Exception as exc:
                kind = _classify(exc)
                can_retry = (
                    retry is not None
                    and attempt + 1 < attempts
                    and kind in _RETRYABLE
                    and (retry_budget is None or retry_budget.take())
                )
                if not can_retry:
                    errors += 1
                    error_counts[kind] = error_counts.get(kind, 0) + 1
                    return
                retries += 1
                backoff = retry.delay(attempt, jitter_rng)
                if backoff > 0:
                    await asyncio.sleep(backoff)
                continue
            latencies.append(loop.time() - target)
            values.append(value)
            key_values.setdefault(key, []).append(value)
            return

    start = loop.time()
    try:
        await asyncio.gather(
            *(one(index, offset) for index, offset in enumerate(arrivals))
        )
    finally:
        await pool.close()
    return KeyedLoadResult(
        offered_rate=rate,
        process=process,
        sent=ops,
        completed=len(values),
        errors=errors,
        duration=loop.time() - start,
        final_value=max(values, default=-1) + 1,
        latencies=latencies,
        values=values,
        error_counts=error_counts,
        retries=retries,
        key_population=keys,
        key_values=key_values,
    )


async def run_rate_sweep(
    host: str,
    port: int,
    ops: int,
    rates: list[float] | tuple[float, ...],
    *,
    process: str = "poisson",
    seed: int = 0,
    max_connections: int = 64,
    knee_threshold: float = 3.0,
    retry: RetryPolicy | None = None,
    retry_budget: RetryBudget | None = None,
    deadline: float | None = None,
    attempt_timeout: float | None = None,
    breaker: CircuitBreaker | None = None,
) -> SweepResult:
    """Run :func:`run_load` at each of the ascending *rates*; find the knee.

    The knee is the first rate whose mean latency exceeds
    *knee_threshold* times the lowest rate's — ``None`` if the sweep
    never saturated the service.  With *retry* set and no explicit
    *retry_budget*, one budget of ``ops * (attempts - 1)`` retries is
    shared across the whole sweep, so saturation at the top rates
    cannot amplify offered load without bound; the breaker (if given)
    is likewise shared.
    """
    from repro.analysis.latency import detect_knee

    if list(rates) != sorted(rates):
        raise ValueError("sweep rates must be ascending")
    if retry is not None and retry_budget is None:
        retry_budget = RetryBudget(ops * (retry.attempts - 1))
    runs: list[LoadResult] = []
    for index, rate in enumerate(rates):
        runs.append(
            await run_load(
                host,
                port,
                ops,
                rate,
                process=process,
                seed=seed + index,
                max_connections=max_connections,
                retry=retry,
                retry_budget=retry_budget,
                deadline=deadline,
                attempt_timeout=attempt_timeout,
                breaker=breaker,
                rid_prefix=f"lg{seed}r{index}" if retry is not None else None,
            )
        )
    knee = detect_knee(
        [run.offered_rate for run in runs],
        [run.mean_latency for run in runs],
        threshold=knee_threshold,
    )
    return SweepResult(runs=runs, knee_rate=knee)
