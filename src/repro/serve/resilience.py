"""Resilience building blocks for the serving stack.

The paper guarantees the bottleneck; this module decides what happens
past it.  Every real deployment of a Θ(k)-bottlenecked counter
saturates — the serving knee of E24 locates *where* — so the service
needs machinery for the regime beyond the knee:

* :class:`ResilienceConfig` — the server-side policy knobs:
  bounded admission backlog (shed with ``ERR OVERLOADED`` instead of
  queueing without bound), per-request deadlines, request-id dedup
  capacity, protocol line limit, drain timeout;
* :class:`DedupTable` — exactly-once retry semantics: a bounded ledger
  mapping client-supplied request ids to in-flight or committed
  operations, so a retried ``INC`` attaches to the original instead of
  double-counting (the serving-layer twin of
  :class:`~repro.sim.transport.ReliableTransport`'s sequence-number
  dedup);
* :class:`RetryPolicy` / :class:`RetryBudget` — client-side capped
  exponential backoff with full jitter, and a shared budget so a sweep
  cannot amplify overload with unbounded retries;
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine on consecutive transport failures, failing fast locally
  instead of hammering a dead service.

All randomness (retry jitter) is seeded and all clocks are injectable,
so every component is deterministic under test.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = [
    "CircuitBreaker",
    "DedupTable",
    "ResilienceConfig",
    "RetryBudget",
    "RetryPolicy",
]


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Server-side resilience policy for a :class:`~repro.serve.CounterService`.

    Attributes:
        max_backlog: operations allowed to *wait* for a free client
            processor (beyond the ``n`` in flight) before new arrivals
            are shed with ``ERR OVERLOADED``; ``None`` disables
            shedding (the pre-resilience unbounded behaviour).
        default_deadline: deadline in seconds applied to ``INC``
            requests that do not carry their own; ``None`` means no
            server-imposed deadline.
        dedup_capacity: bound on the request-id ledger; the oldest
            committed entries are evicted first.  Size it to cover the
            retry horizon (in-flight + recently answered), not the
            service lifetime.
        line_limit: per-line byte bound on the TCP protocol reader; a
            longer line answers ``ERR LINE_TOO_LONG`` and drops the
            connection instead of growing memory without bound.
        drain_timeout: seconds a graceful ``SHUTDOWN`` waits for
            in-flight operations to commit before stopping anyway.
    """

    max_backlog: int | None = 256
    default_deadline: float | None = None
    dedup_capacity: int = 4096
    line_limit: int = 8192
    drain_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_backlog is not None and self.max_backlog < 0:
            raise ConfigurationError(
                f"max_backlog must be >= 0 or None, got {self.max_backlog}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigurationError(
                "default_deadline must be positive or None, "
                f"got {self.default_deadline}"
            )
        if self.dedup_capacity < 1:
            raise ConfigurationError(
                f"dedup_capacity must be >= 1, got {self.dedup_capacity}"
            )
        if self.line_limit < 16:
            raise ConfigurationError(
                f"line_limit must be >= 16 bytes, got {self.line_limit}"
            )
        if self.drain_timeout < 0:
            raise ConfigurationError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}"
            )


class _RidEntry:
    """One request id's state: a future plus a committed flag."""

    __slots__ = ("future", "committed")

    def __init__(self, future: Any) -> None:
        self.future = future
        self.committed = False


class DedupTable:
    """Bounded request-id ledger giving retries exactly-once semantics.

    An entry is created the moment a request id is first seen (before
    admission), so two racing requests with the same id can never both
    inject an operation.  The entry's future resolves with the
    committed counter value — or with the admission error when the
    first attempt was shed or expired before injection, in which case
    the entry is removed and a later retry starts fresh.

    Eviction: committed entries are evicted oldest-first once the table
    exceeds ``capacity``; pending entries are never evicted (they are
    bounded by the service's own in-flight + backlog caps).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, _RidEntry] = OrderedDict()
        self.committed_total = 0
        """Distinct request ids whose operation committed, ever."""

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, rid: str) -> _RidEntry | None:
        """The live entry for *rid*, or ``None``."""
        return self._entries.get(rid)

    def create(self, rid: str, future: Any) -> _RidEntry:
        """Register a fresh pending entry for *rid* (must be unseen)."""
        if rid in self._entries:
            raise ConfigurationError(f"request id {rid!r} already tracked")
        entry = _RidEntry(future)
        self._entries[rid] = entry
        self._evict()
        return entry

    def commit(self, rid: str, value: int) -> None:
        """Resolve *rid* with its committed *value*."""
        entry = self._entries.get(rid)
        if entry is None:  # evicted mid-flight: impossible by policy
            return
        entry.committed = True
        self.committed_total += 1
        if not entry.future.done():
            entry.future.set_result(value)

    def fail(self, rid: str, error: BaseException) -> None:
        """Resolve *rid* with a pre-injection failure and forget it.

        Only legal before the operation was injected — afterwards the
        commit is inevitable and the entry must survive for retries.
        """
        entry = self._entries.pop(rid, None)
        if entry is None:
            return
        if not entry.future.done():
            entry.future.set_exception(error)
            # a retry may arrive only after this future was awaited; if
            # nobody ever awaits it, don't warn at garbage collection
            entry.future.exception()

    def _evict(self) -> None:
        if len(self._entries) <= self.capacity:
            return
        for rid, entry in list(self._entries.items()):
            if entry.committed:
                del self._entries[rid]
                if len(self._entries) <= self.capacity:
                    return


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    Attempt ``k`` (0-based first *retry*) sleeps a uniform random
    duration in ``[0, min(max_delay, base_delay * 2**k)]`` — the
    "full jitter" scheme, which decorrelates retry storms instead of
    synchronizing them.

    Attributes:
        attempts: total tries per operation (first attempt + retries).
        base_delay: backoff scale in seconds.
        max_delay: backoff cap in seconds.
    """

    attempts: int = 4
    base_delay: float = 0.01
    max_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be >= 1, got {self.attempts}"
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigurationError(
                "need 0 <= base_delay <= max_delay, got "
                f"base={self.base_delay} max={self.max_delay}"
            )

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """The jittered sleep before retry number *retry_index* (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** retry_index))
        return rng.uniform(0.0, ceiling)

    def worst_case_latency(self, attempt_timeout: float) -> float:
        """Upper bound on one operation's client-observed latency.

        Every attempt takes at most *attempt_timeout*, and every retry
        sleeps at most its backoff ceiling — the bound E26 asserts p99
        against.
        """
        total = self.attempts * attempt_timeout
        for retry_index in range(self.attempts - 1):
            total += min(self.max_delay, self.base_delay * (2 ** retry_index))
        return total


class RetryBudget:
    """A shared cap on total retries (one per sweep, not per request).

    Unbounded per-request retries amplify overload: at 2x the knee,
    every shed request retried forever doubles offered load again.  A
    budget makes the amplification factor explicit and finite.
    """

    def __init__(self, total: int) -> None:
        if total < 0:
            raise ConfigurationError(f"budget must be >= 0, got {total}")
        self.total = total
        self.used = 0

    @property
    def remaining(self) -> int:
        return self.total - self.used

    def take(self) -> bool:
        """Consume one retry token; ``False`` when the budget is dry."""
        if self.used >= self.total:
            return False
        self.used += 1
        return True


class CircuitBreaker:
    """Consecutive-failure circuit breaker: closed → open → half-open.

    * **closed** — requests flow; ``failure_threshold`` consecutive
      transport failures trip the breaker;
    * **open** — requests fail fast (the pool raises
      :class:`~repro.errors.CircuitOpenError`) for ``reset_timeout``
      seconds;
    * **half-open** — exactly one probe request is allowed through;
      success closes the breaker, failure re-opens it for another
      ``reset_timeout``.

    The clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ConfigurationError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.trips = 0
        """Times the breaker has opened (monitoring counter)."""

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half-open"
        if self._clock() - self._opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state the first caller becomes the probe; callers
        racing the probe are refused until it resolves.
        """
        if self._opened_at is None:
            return True
        if self._probing:
            return False
        if self._clock() - self._opened_at >= self.reset_timeout:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """A request completed its transport round-trip."""
        self._consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """A request failed at the transport level."""
        self._consecutive_failures += 1
        if self._probing:
            # failed probe: re-open for a fresh timeout
            self._opened_at = self._clock()
            self._probing = False
            self.trips += 1
        elif (
            self._opened_at is None
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self.trips += 1
