"""A seeded, deterministic chaos TCP proxy for the serving stack.

The resilience layer's claims — graceful shedding, deadline-bounded
latency, exactly-once retries — are only as good as the failures they
were proven against.  :class:`ChaosProxy` sits between the load
generator and a :class:`~repro.serve.CounterService` and injects
transport-level misbehaviour the *simulator's* fault plans cannot
reach, because it happens on real sockets: connection resets mid
request, stalled streams, blackholed bytes, truncated responses.

Rules compose into a :class:`ChaosPlan`, specified with the same
comma-separated grammar style as :func:`repro.sim.faults.parse_fault_spec`::

    delay=0.005@0.2,stall=0.1@0.1,trunc=8@0.05,reset@0.05,blackhole@0.02

* ``delay=S@P`` — with probability *P* per forwarded chunk (either
  direction), hold the chunk *S* seconds before forwarding;
* ``stall=S@P`` — with probability *P* per connection, pause *S*
  seconds before forwarding the first client chunk (a slow-to-wake
  upstream), then continue normally;
* ``trunc=K@P`` — with probability *P* per server-to-client chunk,
  forward only its first *K* bytes and then abort the connection
  (a response cut off mid-line);
* ``reset@P`` — with probability *P* per connection, abort it the
  moment the first client chunk arrives (the request may or may not
  have reached the server — exactly the ambiguity idempotent retries
  must survive);
* ``blackhole@P`` — with probability *P* per connection, read and
  discard every client byte and never answer (only a client-side
  deadline rescues the caller).

Determinism: every decision draws from a generator keyed on
``(seed, connection index, direction)``, so a given accept-order of
connections replays the same fates and the same per-chunk draws
regardless of event-loop timing.  Connection fates are drawn in a
fixed order (blackhole, reset, stall) whatever the spec order.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "ChaosPlan",
    "ChaosProxy",
    "canonical_chaos_spec",
    "parse_chaos_spec",
]


def _check_probability(name: str, probability: float) -> float:
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(
            f"{name} probability must be in [0, 1], got {probability}"
        )
    return probability


@dataclass(frozen=True, slots=True)
class _DelayRule:
    seconds: float
    probability: float

    def spec_fragment(self) -> str:
        return f"delay={self.seconds:g}@{self.probability:g}"


@dataclass(frozen=True, slots=True)
class _StallRule:
    seconds: float
    probability: float

    def spec_fragment(self) -> str:
        return f"stall={self.seconds:g}@{self.probability:g}"


@dataclass(frozen=True, slots=True)
class _TruncateRule:
    keep_bytes: int
    probability: float

    def spec_fragment(self) -> str:
        return f"trunc={self.keep_bytes}@{self.probability:g}"


@dataclass(frozen=True, slots=True)
class _ResetRule:
    probability: float

    def spec_fragment(self) -> str:
        return f"reset@{self.probability:g}"


@dataclass(frozen=True, slots=True)
class _BlackholeRule:
    probability: float

    def spec_fragment(self) -> str:
        return f"blackhole@{self.probability:g}"


@dataclass(frozen=True, slots=True)
class _ConnectionFate:
    """Per-connection decisions, drawn once at accept time."""

    blackhole: bool
    reset: bool
    stall_seconds: float


class ChaosPlan:
    """A composed set of chaos rules plus the seed that drives them."""

    def __init__(
        self,
        *,
        delay: _DelayRule | None = None,
        stall: _StallRule | None = None,
        trunc: _TruncateRule | None = None,
        reset: _ResetRule | None = None,
        blackhole: _BlackholeRule | None = None,
        seed: int = 0,
    ) -> None:
        self.delay = delay
        self.stall = stall
        self.trunc = trunc
        self.reset = reset
        self.blackhole = blackhole
        self.seed = seed

    def canonical(self) -> str:
        """The canonical spec string (fixed rule order)."""
        fragments = [
            rule.spec_fragment()
            for rule in (
                self.delay,
                self.stall,
                self.trunc,
                self.reset,
                self.blackhole,
            )
            if rule is not None
        ]
        return ",".join(fragments)

    def __repr__(self) -> str:
        return f"ChaosPlan({self.canonical()!r}, seed={self.seed})"

    # -- deterministic draws ------------------------------------------
    def fate(self, connection_index: int) -> _ConnectionFate:
        """Draw the per-connection decisions (fixed draw order)."""
        rng = random.Random(f"{self.seed}:{connection_index}:fate")
        blackhole = (
            self.blackhole is not None
            and rng.random() < self.blackhole.probability
        )
        reset = (
            self.reset is not None and rng.random() < self.reset.probability
        )
        stall_seconds = 0.0
        if self.stall is not None and rng.random() < self.stall.probability:
            stall_seconds = self.stall.seconds
        return _ConnectionFate(
            blackhole=blackhole, reset=reset, stall_seconds=stall_seconds
        )

    def chunk_rng(self, connection_index: int, direction: str) -> random.Random:
        """The per-chunk generator for one direction of one connection."""
        return random.Random(f"{self.seed}:{connection_index}:{direction}")


_FIELDS = ("delay", "stall", "trunc", "reset", "blackhole")


def parse_chaos_spec(text: str, seed: int = 0) -> ChaosPlan:
    """Build a :class:`ChaosPlan` from a spec string.

    Grammar (comma-separated fields, any order, each at most once)::

        delay=S@P        hold chunks S seconds with probability P
        stall=S@P        pause S seconds before the first client chunk
        trunc=K@P        cut a response chunk to K bytes, then abort
        reset@P          abort on the first client chunk
        blackhole@P      swallow all client bytes, never answer

    Fields are canonically reordered (delay, stall, trunc, reset,
    blackhole) so equivalent spellings produce identical plans —
    :func:`canonical_chaos_spec` round-trips.
    """
    stripped = text.strip()
    if not stripped:
        raise ConfigurationError("empty chaos spec")
    parsed: dict[str, object] = {}
    for part in stripped.split(","):
        body, at, prob_text = part.strip().partition("@")
        if not at or not prob_text:
            raise ConfigurationError(
                f"malformed chaos field {part!r} in {text!r}; every rule "
                "needs a probability: kind[=value]@P"
            )
        name, eq, value_text = body.partition("=")
        if name not in _FIELDS:
            raise ConfigurationError(
                f"unknown chaos field {name!r}; expected one of "
                f"{', '.join(_FIELDS)}"
            )
        if name in parsed:
            raise ConfigurationError(
                f"duplicate chaos field {name!r} in {text!r}"
            )
        try:
            probability = _check_probability(name, float(prob_text))
        except ValueError:
            raise ConfigurationError(
                f"bad probability {prob_text!r} for chaos field {name!r}"
            ) from None
        if name in ("delay", "stall", "trunc"):
            if not eq or not value_text:
                raise ConfigurationError(
                    f"chaos field {name!r} needs a value: {name}=V@P"
                )
            try:
                value = float(value_text)
            except ValueError:
                raise ConfigurationError(
                    f"bad value {value_text!r} for chaos field {name!r}"
                ) from None
            if value <= 0:
                raise ConfigurationError(
                    f"chaos field {name!r} needs a positive value, "
                    f"got {value:g}"
                )
        elif eq:
            raise ConfigurationError(
                f"chaos field {name!r} takes no value; write {name}@P"
            )
        if name == "delay":
            parsed[name] = _DelayRule(value, probability)
        elif name == "stall":
            parsed[name] = _StallRule(value, probability)
        elif name == "trunc":
            keep = int(value)
            if keep != value or keep < 1:
                raise ConfigurationError(
                    f"trunc keep-bytes must be a positive integer, "
                    f"got {value:g}"
                )
            parsed[name] = _TruncateRule(keep, probability)
        elif name == "reset":
            parsed[name] = _ResetRule(probability)
        else:
            parsed[name] = _BlackholeRule(probability)
    return ChaosPlan(seed=seed, **parsed)  # type: ignore[arg-type]


def canonical_chaos_spec(text: str) -> str:
    """The canonical form of a chaos-spec string."""
    return parse_chaos_spec(text).canonical()


class ChaosProxy:
    """A TCP proxy that forwards loopback traffic through a chaos plan.

    Args:
        upstream_host: the real service's host.
        upstream_port: the real service's port.
        plan: the chaos rules; ``None`` forwards cleanly (useful as a
            control).
        host: interface to bind.
        port: TCP port (0 = let the OS pick; read :attr:`port` after
            :meth:`start`).

    Stats (``proxy.stats``) count connections and injected events per
    rule kind, so tests can assert the chaos actually happened.
    """

    _CHUNK = 4096

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        plan: ChaosPlan | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connection_index = 0
        self._live: set[asyncio.Task] = set()
        self.stats: dict[str, int] = {
            "connections": 0,
            "upstream_failures": 0,
            "delays": 0,
            "stalls": 0,
            "truncations": 0,
            "resets": 0,
            "blackholed": 0,
        }

    @property
    def address(self) -> str:
        """``host:port`` once started."""
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the proxy socket."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, abort live pipes, release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._live):
            task.cancel()
        if self._live:
            await asyncio.gather(*self._live, return_exceptions=True)

    async def serve_forever(self) -> None:
        """:meth:`start` (unless already bound) then run until stopped."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- internals -----------------------------------------------------
    @staticmethod
    def _abort(*writers: asyncio.StreamWriter) -> None:
        """Tear a connection down abruptly (no FIN handshake)."""
        for writer in writers:
            transport = writer.transport
            if transport is not None:
                transport.abort()

    async def _handle(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        index = self._connection_index
        self._connection_index += 1
        self.stats["connections"] += 1
        plan = self.plan
        fate = (
            plan.fate(index)
            if plan is not None
            else _ConnectionFate(False, False, 0.0)
        )
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            self.stats["upstream_failures"] += 1
            self._abort(client_writer)
            return
        if fate.blackhole:
            self.stats["blackholed"] += 1
        pipes = (
            asyncio.create_task(
                self._pipe(
                    client_reader,
                    upstream_writer,
                    client_writer,
                    index,
                    "c2s",
                    fate,
                )
            ),
            asyncio.create_task(
                self._pipe(
                    upstream_reader,
                    client_writer,
                    upstream_writer,
                    index,
                    "s2c",
                    fate,
                )
            ),
        )
        for task in pipes:
            self._live.add(task)
            task.add_done_callback(self._live.discard)
        try:
            await asyncio.wait(pipes, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in pipes:
                task.cancel()
            await asyncio.gather(*pipes, return_exceptions=True)
            for writer in (client_writer, upstream_writer):
                writer.close()

    async def _pipe(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer_writer: asyncio.StreamWriter,
        index: int,
        direction: str,
        fate: _ConnectionFate,
    ) -> None:
        plan = self.plan
        rng = (
            plan.chunk_rng(index, direction) if plan is not None else None
        )
        first = True
        try:
            while True:
                chunk = await reader.read(self._CHUNK)
                if not chunk:
                    break
                if direction == "c2s":
                    if fate.blackhole:
                        continue  # swallow; the client's deadline rescues it
                    if first and fate.reset:
                        self.stats["resets"] += 1
                        self._abort(writer, peer_writer)
                        return
                    if first and fate.stall_seconds > 0:
                        self.stats["stalls"] += 1
                        await asyncio.sleep(fate.stall_seconds)
                if (
                    plan is not None
                    and plan.delay is not None
                    and rng.random() < plan.delay.probability
                ):
                    self.stats["delays"] += 1
                    await asyncio.sleep(plan.delay.seconds)
                if (
                    direction == "s2c"
                    and plan is not None
                    and plan.trunc is not None
                    and rng.random() < plan.trunc.probability
                ):
                    self.stats["truncations"] += 1
                    writer.write(chunk[: plan.trunc.keep_bytes])
                    with contextlib.suppress(
                        ConnectionResetError, BrokenPipeError
                    ):
                        await writer.drain()
                    self._abort(writer, peer_writer)
                    return
                writer.write(chunk)
                await writer.drain()
                first = False
        except (ConnectionResetError, BrokenPipeError):
            pass
