"""Live counter serving: a TCP front-end and an open-loop load generator.

The north-star behind the runtime seam: the paper's bottleneck is not
just a message count in a simulator — run any registered counter as a
real asyncio service and drive it with open-loop traffic, and the same
bottleneck reappears as a saturation knee in wall-clock latency.

* :mod:`repro.serve.server` — :class:`CounterService`: any
  non-``sequential_only`` registered spec behind a newline-delimited TCP
  protocol (``INC`` / ``STATS`` / ``PING`` / ``SHUTDOWN``), executing on
  the :class:`~repro.runtime.AsyncioRuntime`;
* :mod:`repro.serve.loadgen` — the open-loop client: Poisson or bursty
  arrivals at a configured offered load, per-run p50/p99 latency, and
  rate sweeps with saturation-knee detection.

CLI entry points: ``repro serve SPEC`` and ``repro loadgen``.
"""

from repro.serve.loadgen import (
    LoadResult,
    SweepResult,
    run_load,
    run_rate_sweep,
)
from repro.serve.server import CounterService, serve_counter

__all__ = [
    "CounterService",
    "LoadResult",
    "SweepResult",
    "run_load",
    "run_rate_sweep",
    "serve_counter",
]
