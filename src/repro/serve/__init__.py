"""Live counter serving: a TCP front-end, load generator, and chaos proxy.

The north-star behind the runtime seam: the paper's bottleneck is not
just a message count in a simulator — run any registered counter as a
real asyncio service and drive it with open-loop traffic, and the same
bottleneck reappears as a saturation knee in wall-clock latency.  And
because the Θ(k) bottleneck guarantees saturation, the service carries
a full resilience layer for the regime beyond the knee — and a sharded
keyed layer that amortizes the bottleneck across keys and batches.

* :mod:`repro.serve.server` — :class:`CounterService`: any
  non-``sequential_only`` registered spec behind a newline-delimited TCP
  protocol (``INC`` / ``STATS`` / ``PING`` / ``SHUTDOWN``), executing on
  the :class:`~repro.runtime.AsyncioRuntime`, with per-request
  deadlines, bounded-backlog load shedding, request-id dedup
  (exactly-once retries) and graceful drain — plus
  :class:`LineProtocolService`, the shared TCP machinery;
* :mod:`repro.serve.keyed` — :class:`KeyedCounterService`: a whole
  keyspace of counters (``INC <key>``, ``STATS <key>``, ``SPLIT`` /
  ``MERGE``) over a :class:`~repro.shard.CounterShardMap` — consistent
  hashing across shard pools, per-shard batch combining, elastic
  resharding, and replayable fixture bundles (``repro replay``);
* :mod:`repro.serve.resilience` — the policy objects:
  :class:`ResilienceConfig`, :class:`RetryPolicy`, :class:`RetryBudget`,
  :class:`CircuitBreaker`, :class:`DedupTable`;
* :mod:`repro.serve.loadgen` — the open-loop client: Poisson or bursty
  arrivals at a configured offered load, per-run p50/p99 latency, rate
  sweeps with saturation-knee detection, idempotent retries with full
  jitter, per-error-type accounting, a circuit breaker on the
  connection pool, and Zipf-skewed keyed workloads
  (:func:`run_keyed_load`);
* :mod:`repro.serve.chaos` — :class:`ChaosProxy`: a seeded
  deterministic TCP proxy injecting resets, stalls, blackholes, delays
  and truncations between the generator and the service — the harness
  that proves graceful degradation (experiments E26 and E27).

CLI entry points: ``repro serve``, ``repro loadgen``, ``repro chaos``,
``repro replay``.
"""

from repro.serve.chaos import (
    ChaosPlan,
    ChaosProxy,
    canonical_chaos_spec,
    parse_chaos_spec,
)
from repro.serve.keyed import KeyedCounterService, serve_keyed_counter
from repro.serve.loadgen import (
    KeyedLoadResult,
    LoadResult,
    SweepResult,
    run_keyed_load,
    run_load,
    run_rate_sweep,
)
from repro.serve.resilience import (
    CircuitBreaker,
    DedupTable,
    ResilienceConfig,
    RetryBudget,
    RetryPolicy,
)
from repro.serve.server import (
    CounterService,
    LineProtocolService,
    serve_counter,
)

__all__ = [
    "ChaosPlan",
    "ChaosProxy",
    "CircuitBreaker",
    "CounterService",
    "DedupTable",
    "KeyedCounterService",
    "KeyedLoadResult",
    "LineProtocolService",
    "LoadResult",
    "ResilienceConfig",
    "RetryBudget",
    "RetryPolicy",
    "SweepResult",
    "canonical_chaos_spec",
    "parse_chaos_spec",
    "run_keyed_load",
    "run_load",
    "run_rate_sweep",
    "serve_counter",
    "serve_keyed_counter",
]
