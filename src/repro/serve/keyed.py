"""The keyed TCP front-end: a sharded counter keyspace as a service.

A :class:`KeyedCounterService` owns a
:class:`~repro.shard.CounterShardMap` on the asyncio runtime and speaks
a keyed superset of the single-counter protocol:

==================== ================================= ==================
Request              Response                          Meaning
==================== ================================= ==================
``INC K``            ``OK <value>``                    increment key ``K``
``INC K R``          ``OK <value>``                    idempotent: retries
                                                       of request id ``R``
                                                       return the
                                                       committed value
``INC K R D``        ``OK <value>`` or                 as above, deadline
                     ``ERR DEADLINE_EXCEEDED ...``     of ``D`` ms
``STATS``            ``STATS spec=<s> shards=<k> ...`` service counters
``STATS K``          ``STATS key=<K> value=<v>         one key's value and
                     shard=<id>``                      placement (a never-
                                                       incremented key is
                                                       a zero counter)
``SPLIT S``          ``OK <S> <new>``                  split shard ``S``
``MERGE A B``        ``OK <A>``                        merge ``B`` into
                                                       adjacent ``A``
``PING``/``SHUTDOWN``                                  as the base service
==================== ================================= ==================

Concurrency model: requests never touch a protocol pool directly.  Each
live shard runs one *batcher* task that takes a window of queued
increments (up to ``batch_max``), injects them as a **single** combined
traversal via :meth:`~repro.shard.CounterShardMap.begin_batch`, awaits
the shard runtime's drain, settles, and answers the whole window — the
paper's Θ(k) traversal cost is paid once per window.  Shards drain
concurrently (independent pools), which is where goodput scales with
the shard count (experiment E27).

Resilience semantics mirror :class:`~repro.serve.CounterService`:
bounded total backlog with ``ERR OVERLOADED`` shedding, per-request
deadlines whose expiry answers early while the queued operation still
commits in the background, and a *service-global* request-id dedup
ledger — global, not per-shard, so a retry dedups correctly even when
its key's shard was split or merged between attempts.

Every run can record a fixture bundle (pass *fixture_dir*): requests,
topology events and the final keyspace snapshot are written at stop,
re-verifiable offline with ``repro replay``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ServiceError,
    ServiceStoppedError,
)
from repro.serve.resilience import DedupTable, ResilienceConfig
from repro.serve.server import LineProtocolService
from repro.shard import (
    CounterShardMap,
    FixtureRecorder,
    RebalancePolicy,
    validate_key,
    write_bundle,
)
from repro.sim.trace import TraceLevel

__all__ = ["KeyedCounterService", "serve_keyed_counter"]


@dataclass(slots=True)
class _PendingOp:
    """One queued keyed increment awaiting its batch."""

    key: str
    rid: str | None
    future: asyncio.Future[int] = field(repr=False)


class KeyedCounterService(LineProtocolService):
    """Serve a sharded counter keyspace over TCP.

    Args:
        spec: registry spec string every shard pool runs (any registered
            spec — batches serialize per shard).
        n: processors per shard pool.
        host / port: bind address (0 = OS-assigned; read :attr:`port`
            after :meth:`start`).
        shards: initial shard count.
        batch_max: largest window one combined traversal may carry.
        policy / seed / time_scale / trace_level: forwarded to every
            shard session (see :class:`~repro.shard.CounterShardMap`).
        resilience: server-side resilience policy (backlog bound,
            default deadline, dedup capacity, line limit).
        rebalance: optional :class:`~repro.shard.RebalancePolicy` —
            the service splits hot shards and merges cold neighbors
            automatically between batches.
        fixture_dir: when set, the run is recorded and written there as
            a replayable bundle at stop.
    """

    def __init__(
        self,
        spec: str,
        n: int,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shards: int = 4,
        batch_max: int = 32,
        policy: str | None = None,
        seed: int = 0,
        time_scale: float = 0.0,
        trace_level: TraceLevel | str = TraceLevel.FULL,
        resilience: ResilienceConfig | None = None,
        rebalance: RebalancePolicy | None = None,
        fixture_dir: str | None = None,
    ) -> None:
        super().__init__(
            host,
            port,
            resilience if resilience is not None else ResilienceConfig(),
        )
        self.fixture_dir = fixture_dir
        recorder = FixtureRecorder() if fixture_dir is not None else None
        self.map = CounterShardMap(
            spec,
            n,
            shards=shards,
            seed=seed,
            runtime="asyncio",
            time_scale=time_scale,
            policy=policy,
            trace_level=trace_level,
            batch_max=batch_max,
            rebalance=rebalance,
            recorder=recorder,
        )
        self._queues: dict[int, deque[_PendingOp]] = {}
        self._wakeups: dict[int, asyncio.Event] = {}
        self._batchers: dict[int, asyncio.Task] = {}
        self._topology: asyncio.Lock | None = None
        self._dedup = DedupTable(self.config.dedup_capacity)
        self._served = 0
        self._inflight = 0
        self._shed = 0
        self._expired = 0
        self._deduped = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        """Canonical spec string every shard pool runs."""
        return self.map.spec

    @property
    def n(self) -> int:
        """Processors per shard pool."""
        return self.map.n

    @property
    def served(self) -> int:
        """Committed keyed increments so far."""
        return self._served

    @property
    def backlog(self) -> int:
        """Increments queued across all shards, not yet in a batch."""
        return sum(len(queue) for queue in self._queues.values())

    def stats(self) -> dict[str, Any]:
        """The bare ``STATS`` payload as a dict (also used by the CLI).

        Field order is part of the wire contract (tests pin it):
        ``spec n shards served inflight backlog shed expired deduped
        rid_committed keys batches splits merges messages``.
        """
        map_stats = self.map.stats()
        return {
            "spec": self.spec,
            "n": self.n,
            "shards": map_stats["shards"],
            "served": self._served,
            "inflight": self._inflight,
            "backlog": self.backlog,
            "shed": self._shed,
            "expired": self._expired,
            "deduped": self._deduped,
            "rid_committed": self._dedup.committed_total,
            "keys": map_stats["keys"],
            "batches": map_stats["batches"],
            "splits": map_stats["splits"],
            "merges": map_stats["merges"],
            "messages": sum(
                entry["messages"] for entry in map_stats["per_shard"]
            ),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the TCP server and start one batcher per shard."""
        self._topology = asyncio.Lock()
        for shard_id in self.map.router.shard_ids():
            self._ensure_shard_tasks(shard_id)
        await super().start()

    async def _drain_work(self, drain: bool) -> None:
        """Let queued work settle, stop the batchers, write the bundle."""
        loop = asyncio.get_running_loop()
        if drain:
            deadline = loop.time() + self.config.drain_timeout
            while loop.time() < deadline and (
                self.backlog > 0
                or self._inflight > 0
                or any(s.busy for s in self.map.shards())
            ):
                await asyncio.sleep(0.005)
        for task in self._batchers.values():
            task.cancel()
        if self._batchers:
            await asyncio.gather(
                *self._batchers.values(), return_exceptions=True
            )
        self._batchers.clear()
        stopped = ServiceStoppedError(
            "service stopped with the operation queued"
        )
        for queue in self._queues.values():
            while queue:
                op = queue.popleft()
                if not op.future.done():
                    op.future.set_exception(stopped)
                if op.rid is not None:
                    self._dedup.fail(op.rid, stopped)
        if self.fixture_dir is not None and self.map.recorder is not None:
            write_bundle(self.fixture_dir, self.map)

    # ------------------------------------------------------------------
    # The keyspace side
    # ------------------------------------------------------------------
    def _ensure_shard_tasks(self, shard_id: int) -> None:
        if shard_id not in self._queues:
            self._queues[shard_id] = deque()
            self._wakeups[shard_id] = asyncio.Event()
        if shard_id not in self._batchers:
            self._batchers[shard_id] = asyncio.create_task(
                self._batch_loop(shard_id)
            )

    def _reconcile_topology(self) -> None:
        """Align queues/batchers with the map's live shards.

        Called under the topology lock after any split or merge.  New
        shards get a queue and a batcher; a removed shard's queued ops
        are re-routed to their new owners and its batcher cancelled
        (self-cancellation is safe: the cancel lands at the batcher's
        next ``await``, after it finished settling).
        """
        live = set(self.map.router.shard_ids())
        for shard_id in live:
            self._ensure_shard_tasks(shard_id)
        for shard_id in [s for s in self._queues if s not in live]:
            orphans = self._queues.pop(shard_id)
            self._wakeups.pop(shard_id)
            task = self._batchers.pop(shard_id, None)
            if task is not None:
                task.cancel()
            for op in orphans:
                self._route(op)

    def _route(self, op: _PendingOp) -> None:
        """Queue *op* on its key's owning shard and wake the batcher."""
        shard_id = self.map.router.locate(op.key)
        self._queues[shard_id].append(op)
        self._wakeups[shard_id].set()

    async def _batch_loop(self, shard_id: int) -> None:
        """One shard's combiner: window -> one traversal -> answers."""
        assert self._topology is not None
        window: list[_PendingOp] = []
        try:
            while True:
                window = []
                queue = self._queues.get(shard_id)
                if queue is None:
                    return  # merged away
                if not queue:
                    wakeup = self._wakeups[shard_id]
                    wakeup.clear()
                    await wakeup.wait()
                    continue
                async with self._topology:
                    queue = self._queues.get(shard_id)
                    if queue is None:
                        return
                    while queue and len(window) < self.map.batch_max:
                        op = queue.popleft()
                        if self.map.router.locate(op.key) != shard_id:
                            self._route(op)  # key moved by a split
                            continue
                        window.append(op)
                    if not window:
                        continue
                    batch = self.map.begin_batch(
                        shard_id, [(op.key, op.rid) for op in window]
                    )
                    self._inflight += len(window)
                # the traversal itself runs outside the lock: other
                # shards' batchers drain concurrently, which is the
                # whole point of sharding
                try:
                    await self.map.shard(shard_id).session.runtime.drain()
                finally:
                    self._inflight -= len(window)
                async with self._topology:
                    self.map.settle_batch(batch)
                    for op, batch_op in zip(window, batch.ops):
                        self._served += 1
                        if op.rid is not None:
                            self._dedup.commit(op.rid, batch_op.value)
                        if not op.future.done():
                            op.future.set_result(batch_op.value)
                    if self.map.maybe_rebalance():
                        self._reconcile_topology()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # a protocol failure on this shard must not strand clients:
            # fail the in-flight window and everything queued behind it
            for op in window:
                if not op.future.done():
                    op.future.set_exception(exc)
                if op.rid is not None:
                    self._dedup.fail(op.rid, exc)
            self._poison_shard(shard_id, exc)
            raise

    def _poison_shard(self, shard_id: int, error: BaseException) -> None:
        queue = self._queues.get(shard_id)
        if queue is None:
            return
        while queue:
            op = queue.popleft()
            if not op.future.done():
                op.future.set_exception(error)
            if op.rid is not None:
                self._dedup.fail(op.rid, error)

    async def inc(
        self,
        key: str,
        *,
        rid: str | None = None,
        deadline: float | None = None,
    ) -> int:
        """Increment *key* once, subject to the resilience policy.

        Same contract as :meth:`CounterService.inc`, per key: repeated
        *rid* attaches to the original operation; *deadline* expiry
        raises while a queued operation still commits in the
        background (retry with the same rid for its value); a full
        backlog sheds with :class:`~repro.errors.OverloadedError`.
        """
        if self._draining:
            raise ServiceStoppedError("service is shutting down")
        validate_key(key)
        loop = asyncio.get_running_loop()
        if deadline is None:
            deadline = self.config.default_deadline
        expires = None if deadline is None else loop.time() + deadline
        if rid is not None:
            existing = self._dedup.get(rid)
            if existing is not None:
                self._deduped += 1
                return await self._await_value(existing.future, expires)
            self._dedup.create(rid, loop.create_future())
        if (
            self.config.max_backlog is not None
            and self.backlog >= self.config.max_backlog
        ):
            self._shed += 1
            error = OverloadedError(
                f"admission backlog full ({self.backlog} waiting, "
                f"cap {self.config.max_backlog})"
            )
            if rid is not None:
                self._dedup.fail(rid, error)
            raise error
        op = _PendingOp(key=key, rid=rid, future=loop.create_future())
        self._route(op)
        return await self._await_value(op.future, expires)

    async def _await_value(
        self, awaitable: Any, expires: float | None
    ) -> int:
        """Await a batch answer (or rid future) under the deadline."""
        if expires is None:
            return await asyncio.shield(awaitable)
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                asyncio.shield(awaitable), max(0.0, expires - loop.time())
            )
        except asyncio.TimeoutError:
            self._expired += 1
            raise DeadlineExceededError(
                "deadline expired with the operation queued; it will "
                "commit in the background — retry with the same request "
                "id for its value"
            ) from None

    # ------------------------------------------------------------------
    # Admin operations (also exposed on the wire)
    # ------------------------------------------------------------------
    async def split(self, shard_id: int) -> int:
        """Split *shard_id* under live traffic; return the new id."""
        return await self._admin(lambda: self.map.split(shard_id))

    async def merge(self, survivor: int, absorbed: int) -> None:
        """Merge adjacent *absorbed* into *survivor* under live traffic."""
        await self._admin(lambda: self.map.merge(survivor, absorbed))

    async def _admin(self, action: Any) -> Any:
        """Run a topology action as soon as no batch blocks it.

        Busy shards settle within one traversal, so this converges
        quickly; the retry sleep only yields while one is in flight.
        """
        assert self._topology is not None
        while True:
            async with self._topology:
                try:
                    result = action()
                except ConfigurationError as exc:
                    if "batch in flight" not in str(exc):
                        raise
                else:
                    self._reconcile_topology()
                    return result
            await asyncio.sleep(0.002)

    # ------------------------------------------------------------------
    # The TCP side
    # ------------------------------------------------------------------
    async def _dispatch(
        self, command: str, args: list[str], writer: asyncio.StreamWriter
    ) -> bool:
        if command == "INC":
            await self._handle_inc(writer, args)
            return True
        if command == "STATS" and args:
            self._handle_keyed_stats(writer, args)
            return True
        if command == "SPLIT":
            await self._handle_split(writer, args)
            return True
        if command == "MERGE":
            await self._handle_merge(writer, args)
            return True
        return False

    async def _handle_inc(
        self, writer: asyncio.StreamWriter, args: list[str]
    ) -> None:
        if not args or len(args) > 3:
            writer.write(
                b"ERR BAD_REQUEST usage: INC <key> [rid] [deadline_ms>0]\n"
            )
            return
        key = args[0]
        try:
            validate_key(key)
        except ConfigurationError as exc:
            writer.write(f"ERR BAD_KEY {exc}\n".encode("ascii", "replace"))
            return
        rid = args[1] if len(args) > 1 else None
        deadline: float | None = None
        if len(args) > 2:
            try:
                deadline = float(args[2]) / 1000.0
            except ValueError:
                deadline = -1.0
            if deadline <= 0:
                writer.write(
                    b"ERR BAD_REQUEST usage: INC <key> [rid] "
                    b"[deadline_ms>0]\n"
                )
                return
        try:
            value = await self.inc(key, rid=rid, deadline=deadline)
        except ServiceError as exc:
            writer.write(
                f"ERR {exc.code} {exc}\n".encode("ascii", "replace")
            )
        except Exception as exc:
            writer.write(
                f"ERR {type(exc).__name__}: {exc}\n"
                .encode("ascii", "replace")
            )
        else:
            writer.write(f"OK {value}\n".encode("ascii"))

    def _handle_keyed_stats(
        self, writer: asyncio.StreamWriter, args: list[str]
    ) -> None:
        if len(args) != 1:
            writer.write(b"ERR BAD_REQUEST usage: STATS [key]\n")
            return
        key = args[0]
        try:
            shard_id = self.map.locate(key)
        except ConfigurationError as exc:
            writer.write(f"ERR BAD_KEY {exc}\n".encode("ascii", "replace"))
            return
        value = self.map.shard(shard_id).key_counts.get(key, 0)
        writer.write(
            f"STATS key={key} value={value} shard={shard_id}\n"
            .encode("ascii")
        )

    async def _handle_split(
        self, writer: asyncio.StreamWriter, args: list[str]
    ) -> None:
        if len(args) != 1 or not args[0].lstrip("-").isdigit():
            writer.write(b"ERR BAD_REQUEST usage: SPLIT <shard_id>\n")
            return
        try:
            new_id = await self.split(int(args[0]))
        except ConfigurationError as exc:
            writer.write(
                f"ERR BAD_REQUEST {exc}\n".encode("ascii", "replace")
            )
        else:
            writer.write(f"OK {args[0]} {new_id}\n".encode("ascii"))

    async def _handle_merge(
        self, writer: asyncio.StreamWriter, args: list[str]
    ) -> None:
        if len(args) != 2 or not all(
            a.lstrip("-").isdigit() for a in args
        ):
            writer.write(
                b"ERR BAD_REQUEST usage: MERGE <survivor> <absorbed>\n"
            )
            return
        try:
            await self.merge(int(args[0]), int(args[1]))
        except ConfigurationError as exc:
            writer.write(
                f"ERR BAD_REQUEST {exc}\n".encode("ascii", "replace")
            )
        else:
            writer.write(f"OK {args[0]}\n".encode("ascii"))


async def serve_keyed_counter(
    spec: str,
    n: int,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    shards: int = 4,
    batch_max: int = 32,
    policy: str | None = None,
    seed: int = 0,
    time_scale: float = 0.0,
    resilience: ResilienceConfig | None = None,
    rebalance: RebalancePolicy | None = None,
    fixture_dir: str | None = None,
    announce: bool = False,
) -> None:
    """Convenience runner: build a :class:`KeyedCounterService`, serve.

    With *announce* the bound address is printed as
    ``SERVING <spec> n=<n> shards=<k> <host>:<port>`` once the socket
    is ready (machine-readable, used by ``scripts/shard_smoke.py``).
    """
    service = KeyedCounterService(
        spec,
        n,
        host,
        port,
        shards=shards,
        batch_max=batch_max,
        policy=policy,
        seed=seed,
        time_scale=time_scale,
        resilience=resilience,
        rebalance=rebalance,
        fixture_dir=fixture_dir,
    )
    await service.start()
    if announce:
        print(
            f"SERVING {service.spec} n={service.n} "
            f"shards={service.map.shard_count} {service.address}",
            flush=True,
        )
    await service.wait_closed()
