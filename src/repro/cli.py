"""Command-line interface: drive the reproduction without writing code.

Subcommands::

    python -m repro run        one workload on one counter
    python -m repro counters   list the counter registry (specs + caps)
    python -m repro sweep      bottleneck table over counters × sizes
    python -m repro explore    search schedules for invariant violations
    python -m repro adversary  play the §3 lower-bound game
    python -m repro bound      print the k·kᵏ = n curve
    python -m repro quorum     quorum systems: loads + counter bottleneck
    python -m repro tree       inspect a communication tree's geometry
    python -m repro bench      measure the simulator substrate (JSON report)
    python -m repro serve      run a counter (or keyed keyspace) over TCP
    python -m repro loadgen    open-loop load against a running service
    python -m repro chaos      fault-injecting TCP proxy
    python -m repro replay     verify a keyed-service fixture bundle

Counters are named by registry spec strings
(:mod:`repro.registry`): a canonical name optionally followed by
``?key=value`` tunables, e.g. ``--counter combining-tree?window=3.0``.
Every command prints the same ASCII tables the benchmark suite saves,
so the CLI doubles as a quick re-run of any experiment slice.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import LoadProfile, format_table
from repro.core import TreeGeometry
from repro.errors import ConfigurationError, ReproError
from repro.lowerbound import (
    GreedyAdversary,
    am_gm_holds,
    bound_series,
    evaluate_ledger,
    lower_bound_k,
    message_load_bound,
)
from repro.quorum import (
    CrumblingWall,
    MaekawaGrid,
    QuorumCounter,
    RotatingMajorityQuorum,
    SingletonQuorum,
    TreePathQuorum,
    WheelQuorum,
    optimal_load,
    uniform_load,
)
from repro.registry import (
    POLICY_NAMES,
    RunSession,
    parse_spec,
    registered_names,
    registered_specs,
)
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for Wattenhofer & Widmayer, 'An Inherent "
            "Bottleneck in Distributed Counting' (PODC 1997)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one workload on one counter")
    run.add_argument(
        "--counter", default="ww-tree", metavar="SPEC",
        help="counter spec string, e.g. ww-tree or "
             "combining-tree?window=3.0 (see: repro counters)",
    )
    run.add_argument("--n", type=int, default=81)
    run.add_argument(
        "--order", choices=["identity", "shuffled"], default="identity"
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--policy", choices=sorted(POLICY_NAMES), default="unit",
        help="message delivery policy",
    )
    run.add_argument(
        "--concurrent", action="store_true",
        help="inject all incs as one concurrent batch",
    )
    run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-spec string, e.g. drop=0.05,dup=0.01, crash=3@t50 or "
             "crash=3@t50,recover=3@t90 (seeded by --seed; lossy specs "
             "require --reliable or a loss-tolerant counter; permanent "
             "crashes require a crash-tolerant counter)",
    )
    run.add_argument(
        "--reliable", action="store_true",
        help="run the counter behind the ack/retransmit transport so it "
             "tolerates message loss",
    )
    run.add_argument(
        "--runtime", default="sim", choices=["sim", "sim-compat", "sync"],
        help="scheduler: sim (event-driven, default), sim-compat (heapq "
             "core), or sync (deterministic lockstep rounds — the model "
             "phase-king agreement assumes)",
    )
    run.add_argument("--top", type=int, default=5, help="hottest processors shown")

    counters = commands.add_parser(
        "counters", help="list registered counters with caps + tunables"
    )
    counters.add_argument(
        "--verbose", action="store_true",
        help="also list each counter's tunables with defaults",
    )

    sweep = commands.add_parser(
        "sweep", help="bottleneck table over counters x sizes"
    )
    sweep.add_argument(
        "--counters", default="central,ww-tree",
        help="comma-separated counter specs (or 'all')",
    )
    sweep.add_argument("--ns", default="64,256,1024", help="comma-separated sizes")
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep grid (default: serial)",
    )
    sweep.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-spec string applied to every grid point "
             "(lossy specs require --reliable)",
    )
    sweep.add_argument(
        "--reliable", action="store_true",
        help="run every grid point behind the ack/retransmit transport",
    )

    explore = commands.add_parser(
        "explore",
        help="search message schedules for invariant violations",
        description=(
            "Drive one counter through many controlled interleavings and "
            "judge every execution with the invariant-oracle suite "
            "(linearizability, Hot-Spot, no-lost-increment, retirement "
            "monotonicity).  Failures are delta-shrunk and saved as "
            "replayable repro files.  Exit code 1 means a failing "
            "schedule was found (or a --replay did not reproduce)."
        ),
    )
    explore.add_argument(
        "--counter", default="central", metavar="SPEC",
        help="counter spec string, or a mutant name such as "
             "mutant[stale-central] (see: repro counters)",
    )
    explore.add_argument("--n", type=int, default=8)
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument(
        "--strategy", default="random", metavar="PLAN",
        help="budget/strategy plan: comma-separated legs of "
             "NAME[:BUDGET][?key=value], names random|permute|guided|"
             "baseline — e.g. 'guided', 'random:50,guided:150', "
             "'guided:100?base=4' (legs without :BUDGET use --budget)",
    )
    explore.add_argument(
        "--budget", type=int, default=100,
        help="episodes for plan legs without an explicit budget",
    )
    explore.add_argument(
        "--workload", choices=["staggered", "sequential"],
        default="staggered",
        help="staggered overlaps ops (linearizability); sequential "
             "quiesces between ops (Hot-Spot footprints)",
    )
    explore.add_argument("--gap", type=float, default=3.0,
                         help="stagger gap between request injections")
    explore.add_argument("--rounds", type=int, default=1,
                         help="incs per client (round-robin when > 1)")
    explore.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-spec string explored under (same grammar as run)",
    )
    explore.add_argument(
        "--reliable", action="store_true",
        help="explore behind the ack/retransmit transport",
    )
    explore.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (episode windows fan out; results are "
             "identical for any worker count)",
    )
    explore.add_argument(
        "--no-shrink", action="store_true",
        help="keep failing schedules as found (skip delta-shrinking)",
    )
    explore.add_argument(
        "--save-repros", default=None, metavar="DIR",
        help="write each failure's repro file into DIR",
    )
    explore.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay a saved repro file instead of exploring; exit 0 "
             "iff the recorded failure reproduces",
    )
    explore.add_argument(
        "--json", action="store_true",
        help="print the exploration report as JSON",
    )

    adversary = commands.add_parser(
        "adversary", help="play the §3 greedy longest-list adversary"
    )
    adversary.add_argument(
        "--counter", default="central", metavar="SPEC",
        help="counter spec string (see: repro counters)",
    )
    adversary.add_argument("--n", type=int, default=16)
    adversary.add_argument(
        "--sample", type=int, default=None,
        help="candidates evaluated per step (default: all)",
    )
    adversary.add_argument("--seed", type=int, default=0)

    bound = commands.add_parser("bound", help="print the k·kᵏ = n curve")
    bound.add_argument("--ns", default="8,81,1024,15625,1000000")

    quorum = commands.add_parser("quorum", help="quorum-system loads + counter")
    quorum.add_argument("--n", type=int, default=64)

    tree = commands.add_parser("tree", help="inspect tree geometry")
    group = tree.add_mutually_exclusive_group(required=True)
    group.add_argument("--k", type=int, help="paper shape parameter")
    group.add_argument("--n", type=int, help="derive shape from processor count")

    validate = commands.add_parser(
        "validate", help="run a quick end-to-end self-check battery"
    )
    validate.add_argument(
        "--n", type=int, default=81, help="size of the self-check workload"
    )

    experiment = commands.add_parser(
        "experiment", help="run one experiment of the E-index (see DESIGN.md)"
    )
    experiment.add_argument(
        "id", nargs="?", default=None,
        help="experiment id, e.g. E4 (omit to list all)",
    )

    bench = commands.add_parser(
        "bench", help="measure the simulator substrate (BENCH_simulator.json)"
    )
    bench.add_argument(
        "--grid", action="append", metavar="NAME",
        help="run only the named grid(s); repeatable (default: all; "
             "see repro.bench.GRIDS)",
    )
    bench.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="also write the report to PATH (e.g. BENCH_simulator.json)",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="print the report as JSON (default when no --output is given)",
    )

    figures = commands.add_parser(
        "figures", help="regenerate the headline SVG figures"
    )
    figures.add_argument(
        "--out", default="benchmarks/figures", help="output directory"
    )
    figures.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for figure simulations (default: serial)",
    )

    serve = commands.add_parser(
        "serve", help="run a counter as a live TCP service (asyncio runtime)"
    )
    serve.add_argument(
        "spec", metavar="SPEC",
        help="counter spec string; sequential-only specs are rejected "
             "(see: repro counters)",
    )
    serve.add_argument(
        "--n", type=int, default=16,
        help="client processors = max in-flight operations",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = pick a free one; the bound address is "
             "printed as 'SERVING <spec> n=<n> <host>:<port>')",
    )
    serve.add_argument(
        "--policy", choices=sorted(POLICY_NAMES), default="unit",
        help="message delivery policy",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--time-scale", type=float, default=0.0,
        help="real seconds per unit of simulated time (0 = flat out)",
    )
    serve.add_argument(
        "--max-backlog", type=int, default=256, metavar="OPS",
        help="queued operations beyond the n in flight before arrivals "
             "are shed with ERR OVERLOADED (-1 = never shed)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="server-side default deadline for INC requests that do "
             "not carry one (default: none)",
    )
    serve.add_argument(
        "--line-limit", type=int, default=8192, metavar="BYTES",
        help="protocol line length bound; longer lines answer "
             "ERR LINE_TOO_LONG and drop the connection",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="how long SHUTDOWN waits for in-flight operations",
    )
    serve.add_argument(
        "--dedup-capacity", type=int, default=4096, metavar="RIDS",
        help="request-id ledger bound for exactly-once retries",
    )
    serve.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="serve a sharded counter keyspace instead of one counter: "
             "K independent shard pools behind 'INC <key>' / "
             "'STATS <key>' / SPLIT / MERGE (any registered spec works "
             "— batches serialize per shard)",
    )
    serve.add_argument(
        "--batch-max", type=int, default=32, metavar="OPS",
        help="keyed mode: largest window one combined shard traversal "
             "may carry",
    )
    serve.add_argument(
        "--fixture", default=None, metavar="DIR",
        help="keyed mode: record the run and write a replayable "
             "fixture bundle into DIR at shutdown (verify with "
             "'repro replay DIR')",
    )

    loadgen = commands.add_parser(
        "loadgen", help="open-loop load against a running 'repro serve'"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument(
        "--ops", type=int, default=200, help="increments per rate point"
    )
    loadgen.add_argument(
        "--rate", type=float, default=100.0,
        help="offered load in ops/second (single run; see --rates)",
    )
    loadgen.add_argument(
        "--rates", default=None, metavar="R1,R2,...",
        help="ascending rate sweep with saturation-knee detection "
             "(overrides --rate)",
    )
    loadgen.add_argument(
        "--process", choices=["poisson", "bursty"], default="poisson",
        help="arrival process",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--max-connections", type=int, default=64,
        help="client-side concurrency cap",
    )
    loadgen.add_argument(
        "--expect-final", type=int, default=None, metavar="VALUE",
        help="exit nonzero unless the highest value seen + 1 equals "
             "VALUE (smoke-test assertion)",
    )
    loadgen.add_argument(
        "--shutdown", action="store_true",
        help="send SHUTDOWN to the server after the run",
    )
    loadgen.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retries per request beyond the first attempt; > 0 "
             "attaches a unique request id to every INC so the "
             "server's dedup makes retries exactly-once",
    )
    loadgen.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="total retries shared across the run "
             "(default: ops * retries)",
    )
    loadgen.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline carried on each INC",
    )
    loadgen.add_argument(
        "--backoff-base-ms", type=float, default=10.0, metavar="MS",
        help="retry backoff scale (full jitter)",
    )
    loadgen.add_argument(
        "--backoff-max-ms", type=float, default=500.0, metavar="MS",
        help="retry backoff cap",
    )
    loadgen.add_argument(
        "--breaker-threshold", type=int, default=0, metavar="N",
        help="consecutive transport failures before the client circuit "
             "breaker opens (0 = no breaker)",
    )
    loadgen.add_argument(
        "--breaker-reset", type=float, default=1.0, metavar="SECONDS",
        help="seconds an open breaker waits before its half-open probe",
    )
    loadgen.add_argument(
        "--keys", type=int, default=None, metavar="K",
        help="keyed mode against 'repro serve --shards': draw each "
             "increment's key from a Zipf popularity distribution over "
             "K names and check per-key exactness after the run",
    )
    loadgen.add_argument(
        "--zipf", type=float, default=1.1, metavar="SKEW",
        help="keyed mode: Zipf skew of the key popularity (1.1 is a "
             "realistic hot-key regime; higher = hotter head)",
    )

    replay = commands.add_parser(
        "replay",
        help="re-execute and verify a keyed-service fixture bundle",
        description=(
            "Rebuild the recorded shard map on the simulated runtime, "
            "replay every batch and topology event at its recorded "
            "position, and verify every request's value, the final "
            "keyspace snapshot, the shard ranges and the per-shard "
            "trace fingerprints.  Exit 0 iff the bundle verifies."
        ),
    )
    replay.add_argument(
        "bundle", metavar="DIR",
        help="bundle directory written by 'repro serve --shards "
             "--fixture DIR'",
    )

    chaos = commands.add_parser(
        "chaos",
        help="deterministic fault-injecting TCP proxy in front of "
             "'repro serve'",
    )
    chaos.add_argument(
        "--upstream", required=True, metavar="HOST:PORT",
        help="address of the service to proxy",
    )
    chaos.add_argument("--host", default="127.0.0.1")
    chaos.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = pick a free one; the bound address is "
             "printed as 'CHAOS <plan> <host>:<port> -> <upstream>')",
    )
    chaos.add_argument(
        "--plan", default="reset@0.05", metavar="SPEC",
        help="fault plan, e.g. 'delay=0.002@0.2,stall=0.05@0.1,"
             "reset@0.1,blackhole@0.02,trunc=8@0.05'",
    )
    chaos.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        session = RunSession(
            args.counter,
            args.n,
            policy=args.policy,
            seed=args.seed,
            faults=args.faults,
            reliable=args.reliable,
            runtime=args.runtime,
        )
    except ConfigurationError as error:
        print(f"bad counter spec: {error}", file=sys.stderr)
        return 2
    from repro.workloads import shuffled

    if session.recovery is not None:
        return _run_with_recovery(args, session)
    order = (
        one_shot(args.n)
        if args.order == "identity"
        else shuffled(args.n, seed=args.seed)
    )
    try:
        if args.concurrent:
            result = session.run_concurrent([order])
        else:
            result = session.run_sequence(order)
    except ConfigurationError as error:  # e.g. CapabilityError
        print(str(error), file=sys.stderr)
        return 2
    profile = LoadProfile.from_trace(result.trace, population=args.n)
    print(f"counter:    {session.canonical}  (n={args.n}, "
          f"policy={args.policy}, "
          f"{'concurrent' if args.concurrent else 'sequential'})")
    if args.runtime == "sync":
        print(f"runtime:    sync — {session.runtime.rounds} lockstep rounds")
    if session.fault_plan is not None:
        counts = session.fault_plan.counts
        injected = ", ".join(
            f"{kind}:{count}" for kind, count in sorted(counts.items())
        ) or "none"
        print(f"faults:     {session.fault_plan.spec}  (injected: {injected})")
    if session.transport is not None:
        stats = session.transport_stats()
        print(f"transport:  reliable — {stats['data_sent']} data, "
              f"{stats['retransmissions']} retransmits, "
              f"{stats['duplicates_suppressed']} dupes suppressed, "
              f"overhead {session.transport.overhead_ratio():.3f}")
    print(f"operations: {result.operation_count}, all values correct")
    print(f"messages:   {result.total_messages} total, "
          f"{result.average_messages_per_op():.2f} per op")
    print(f"bottleneck: m_b = {profile.bottleneck_load} at processor "
          f"{profile.bottleneck_processor}  "
          f"(lower bound k(n) = {lower_bound_k(args.n):.2f})")
    print(f"loads:      mean {profile.mean_load:.2f}, p99 "
          f"{profile.percentile(0.99)}, gini {profile.gini():.3f}")
    print("hottest:    " + ", ".join(
        f"p{pid}:{load}" for pid, load in profile.top(args.top)
    ))
    return 0


def _run_with_recovery(args: argparse.Namespace, session: RunSession) -> int:
    """The ``run`` path for crash-recovery sessions.

    Crash-tolerant counters are driven with the staggered workload
    (overlapping ops, so the failover happens under load) and judged by
    linearizability instead of the dense-prefix value check — under
    at-most-once semantics crashed combines legitimately burn values.
    """
    from repro.analysis.linearizability import check_linearizable_counting

    ops = session.run_staggered()
    report = check_linearizable_counting(ops)
    manager = session.recovery
    trace = session.network.trace
    profile = LoadProfile.from_trace(trace, population=args.n).restrict(
        range(1, args.n + 1)
    )
    print(f"counter:    {session.canonical}  (n={args.n}, "
          f"policy={args.policy}, staggered — crash-recovery run)")
    plan = session.fault_plan
    counts = plan.counts
    injected = ", ".join(
        f"{kind}:{count}" for kind, count in sorted(counts.items())
    ) or "none"
    print(f"faults:     {plan.spec}  (injected: {injected})")
    print(f"operations: {len(ops)} completed of {args.n}, "
          f"linearizable: {'yes' if report.linearizable else 'NO'} "
          f"({len(report.inversions)} inversions, "
          f"{report.precedence_pairs} precedence pairs)")
    latency = manager.failover_latency()
    print(f"recovery:   {manager.suspicion_count()} suspicions, "
          f"{manager.failover_count()} failovers"
          + (f" (first after {latency:g} time units)" if latency is not None
             else "")
          + f", {manager.recovery_count()} checkpoint recoveries")
    print(f"bottleneck: m_b = {profile.bottleneck_load} at processor "
          f"{profile.bottleneck_processor}  (clients only; "
          f"lower bound k(n) = {lower_bound_k(args.n):.2f})")
    print("hottest:    " + ", ".join(
        f"p{pid}:{load}" for pid, load in profile.top(args.top)
    ))
    return 0 if report.linearizable else 1


def _cmd_counters(args: argparse.Namespace) -> int:
    rows = []
    for spec in registered_specs():
        flags = ", ".join(spec.capabilities.flags()) or "-"
        loss = (
            "yes"
            if spec.capabilities.tolerates_message_loss
            else "via --reliable"
        )
        crash = "yes" if spec.capabilities.tolerates_crash else "no"
        byzantine = "yes" if spec.capabilities.tolerates_byzantine else "no"
        tunables = (
            ", ".join(
                f"{t.name}={t.format(t.default)}" for t in spec.tunables
            )
            or "-"
        )
        rows.append(
            [spec.name, flags, loss, crash, byzantine, tunables, spec.summary]
        )
    print(
        format_table(
            ["counter", "capabilities", "msg loss", "crash", "byzantine",
             "tunables (defaults)", "summary"],
            rows,
            title=f"Counter registry ({len(rows)} specs)",
            align=["l", "l", "l", "l", "l", "l", "l"],
        )
    )
    print("\nmsg loss: no bare protocol tolerates dropped messages (the "
          "paper's model is failure-free);\npass --reliable to run any spec "
          "behind the ack/retransmit transport ('loss-tolerant' flag).\n"
          "crash: only protocols with built-in redundancy survive permanent "
          "processor crashes ('crash-tolerant'\nflag); --reliable does not "
          "help there — retransmission cannot resurrect a dead processor.\n"
          "byzantine: only replicated protocols that vote on every "
          "increment survive lying processors\n('byzantine-tolerant' flag, "
          "f < n/3); neither --reliable nor crash recovery helps against "
          "a liar.")
    if args.verbose:
        for spec in registered_specs():
            if not spec.tunables:
                continue
            print(f"\n{spec.name}:")
            for tunable in spec.tunables:
                bounds = []
                if tunable.minimum is not None:
                    bounds.append(f">= {tunable.minimum}")
                if tunable.maximum is not None:
                    bounds.append(f"<= {tunable.maximum}")
                if tunable.choices:
                    bounds.append("one of " + "|".join(tunable.choices))
                if tunable.power_of_two:
                    bounds.append("power of two")
                suffix = f"  ({', '.join(bounds)})" if bounds else ""
                print(f"  {tunable.name}: {tunable.kind.__name__} = "
                      f"{tunable.format(tunable.default)}{suffix} — "
                      f"{tunable.doc}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    names = (
        list(registered_names())
        if args.counters == "all"
        else args.counters.split(",")
    )
    ns = [int(value) for value in args.ns.split(",")]
    unknown = []
    for name in names:
        try:
            parse_spec(name)
        except ConfigurationError:
            unknown.append(name)
    if unknown:
        print(f"unknown counters: {', '.join(unknown)}", file=sys.stderr)
        return 2
    from repro.workloads import SweepPoint, SweepRunner

    runner = SweepRunner(workers=args.workers)
    transport = "reliable" if args.reliable else "bare"
    points = [
        SweepPoint(
            counter=name,
            n=n,
            faults=args.faults or "",
            transport=transport,
        )
        for name in names
        for n in ns
    ]
    try:
        loads = runner.bottlenecks(points)
    except ConfigurationError as error:  # e.g. lossy faults without --reliable
        print(str(error), file=sys.stderr)
        return 2
    rows = []
    for index, name in enumerate(names):
        start = index * len(ns)
        rows.append([name, *loads[start : start + len(ns)]])
    rows.append(["k(n) bound"] + [f"{lower_bound_k(n):.2f}" for n in ns])
    title = "Sequential one-shot bottleneck sweep"
    if args.faults:
        title += f" (faults: {args.faults}, transport: {transport})"
    print(
        format_table(
            ["counter"] + [f"m_b @ n={n}" for n in ns],
            rows,
            title=title,
        )
    )
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    import json as json_module
    import time

    from repro.explore import (
        ExploreRunner,
        ExploreTask,
        ReproFile,
        replay_repro,
    )

    if args.replay is not None:
        try:
            repro = ReproFile.load(args.replay)
        except (OSError, ConfigurationError, KeyError, ValueError) as error:
            print(f"cannot load repro file: {error}", file=sys.stderr)
            return 2
        outcome = replay_repro(repro)
        failure = outcome.failure
        reproduced = failure is not None and failure.oracle == repro.oracle
        print(f"repro:      {args.replay}")
        print(f"counter:    {repro.counter}  (n={repro.n}, seed={repro.seed}, "
              f"workload={repro.workload})")
        print(f"schedule:   {len(repro.decisions)} decisions "
              f"({sum(1 for d in repro.decisions if d)} non-default)")
        print(f"expected:   {repro.oracle} failure")
        if failure is None:
            print("observed:   all oracles passed — DOES NOT REPRODUCE")
        else:
            status = "reproduces" if reproduced else "DIFFERENT FAILURE"
            print(f"observed:   {failure.oracle}: {failure.message} "
                  f"[{status}]")
        return 0 if reproduced else 1

    task = ExploreTask(
        counter=args.counter,
        n=args.n,
        seed=args.seed,
        strategy=args.strategy,
        budget=args.budget,
        faults=args.faults or "",
        transport="reliable" if args.reliable else "bare",
        workload=args.workload,
        gap=args.gap,
        rounds=args.rounds,
        shrink=not args.no_shrink,
    )
    runner = ExploreRunner(workers=args.workers)
    started = time.perf_counter()
    try:
        report = runner.explore(task)
    except ConfigurationError as error:  # includes CapabilityError
        print(str(error), file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    rate = report.episodes / elapsed if elapsed > 0 else 0.0
    if args.json:
        payload = report.to_json()
        payload["elapsed_seconds"] = round(elapsed, 3)
        payload["schedules_per_second"] = round(rate, 1)
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"counter:    {task.counter}  (n={task.n}, seed={task.seed}, "
              f"workload={task.workload}"
              + (f", faults={task.faults}" if task.faults else "") + ")")
        print(f"plan:       {task.strategy}  (default budget {task.budget})")
        print(f"explored:   {report.episodes} schedules, "
              f"{report.decisions} decisions "
              f"({rate:.0f} schedules/s)")
        for oracle, counts in report.verdict_counts.items():
            print(f"  {oracle:<24} pass {counts['pass']:>5}  "
                  f"fail {counts['fail']:>3}  skip {counts['skip']:>5}")
        if report.ok:
            print("result:     no invariant violation found")
        else:
            print(f"result:     {len(report.failures)} failing schedule(s)")
            for index, repro in enumerate(report.failures):
                print(f"  [{index}] episode {repro.episode} "
                      f"({repro.strategy}): {repro.oracle} — "
                      f"{repro.message} "
                      f"[{len(repro.decisions)} decisions after shrink]")
    saved_paths = []
    if args.save_repros and report.failures:
        import pathlib

        directory = pathlib.Path(args.save_repros)
        for index, repro in enumerate(report.failures):
            safe = "".join(
                ch if ch.isalnum() else "-" for ch in repro.counter
            ).strip("-")
            path = directory / (
                f"{safe}-seed{repro.seed}-ep{repro.episode}-"
                f"{repro.oracle}.json"
            )
            saved_paths.append(repro.save(path))
        for path in saved_paths:
            print(f"wrote {path}")
    return 0 if report.ok else 1


def _cmd_adversary(args: argparse.Namespace) -> int:
    try:
        adversary = GreedyAdversary(
            args.counter, args.n, sample_size=args.sample, seed=args.seed
        )
    except ConfigurationError as error:
        print(f"bad counter spec: {error}", file=sys.stderr)
        return 2
    run = adversary.run()
    report = evaluate_ledger(run.ledger, base=run.bottleneck_load + 1)
    print(f"adversary vs {args.counter}, n={args.n}")
    print(f"chosen order: {run.order}")
    print(f"list lengths: {run.chosen_lengths}")
    print(f"bottleneck m_b = {run.bottleneck_load} "
          f">= floor(k) = {message_load_bound(args.n)}: "
          f"{run.bottleneck_load >= message_load_bound(args.n)}")
    print(f"weight growth {report.growth_steps}/{len(report.weights) - 1}, "
          f"AM-GM holds: {am_gm_holds(report)}")
    return 0


def _cmd_bound(args: argparse.Namespace) -> int:
    ns = [int(value) for value in args.ns.split(",")]
    print(
        format_table(
            ["n", "k(n)", "floor", "ln n/ln ln n"],
            bound_series(ns),
            title="Lower bound curve: k·kᵏ = n",
        )
    )
    return 0


def _cmd_quorum(args: argparse.Namespace) -> int:
    n = args.n
    systems = [
        SingletonQuorum(n),
        RotatingMajorityQuorum(n),
        TreePathQuorum(n),
        WheelQuorum(n),
        CrumblingWall(n),
    ]
    import math

    if math.isqrt(n) ** 2 == n:
        systems.insert(2, MaekawaGrid(n))
    rows = []
    for system in systems:
        network = Network()
        counter = QuorumCounter(network, n, system)
        result = run_sequence(counter, one_shot(n))
        rows.append(
            [
                type(system).__name__,
                system.max_quorum_size(),
                f"{uniform_load(system).system_load:.3f}",
                f"{optimal_load(system).system_load:.3f}",
                result.bottleneck_load(),
            ]
        )
    print(
        format_table(
            ["system", "max |Q|", "uniform load", "optimal load", "counter m_b"],
            rows,
            title=f"Quorum systems over n={n}",
        )
    )
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    geometry = (
        TreeGeometry.paper_shape(args.k)
        if args.k is not None
        else TreeGeometry.for_processors(args.n)
    )
    print(f"shape:           arity=depth={geometry.arity} "
          f"(paper k={geometry.arity})")
    print(f"leaves:          {geometry.leaf_count} = "
          f"{geometry.arity}^{geometry.depth + 1}")
    print(f"inner nodes:     {geometry.total_inner_nodes()}")
    print(f"ids required:    {geometry.processor_requirement()} "
          f"(max interval id {geometry.max_interval_id()}, "
          f"root walk budget {geometry.root_walk_budget()})")
    rows = []
    for level in geometry.inner_levels():
        if level == 0:
            interval = "1,2,3,... (walk)"
        else:
            from repro.core import NodeAddr

            example = geometry.id_interval(NodeAddr(level, 0))
            interval = f"width {len(example)} (e.g. {example.start}..{example.stop - 1})"
        rows.append([level, geometry.nodes_on_level(level), interval])
    print(
        format_table(
            ["level", "nodes", "replacement ids per node"],
            rows,
            title="Identifier scheme (§4)",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """A fast self-check: every counter counts, every lemma holds."""
    from repro.core.invariants import check_all
    from repro.lowerbound import check_hot_spot, message_load_bound

    n = args.n
    failures = 0

    def report(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        if not ok:
            failures += 1
        suffix = f" — {detail}" if detail else ""
        print(f"  [{'OK' if ok else 'FAIL'}] {label}{suffix}")

    print(f"self-check battery, n={n}")
    for spec in registered_specs():
        # Byzantine voting costs Θ(n²·f) messages per op, so the
        # "fast battery" promise caps its run size; the bound and
        # hot-spot checks are still exercised at the capped n.
        run_n = min(n, 7) if spec.capabilities.tolerates_byzantine else n
        restriction = spec.supports_n(run_n)
        if restriction is not None:
            print(f"  [SKIP] {spec.name}: {restriction}")
            continue
        network = Network()
        counter = spec.build(network, run_n)
        result = run_sequence(counter, one_shot(run_n))
        values_ok = result.values() == list(range(run_n))
        hotspot_ok = check_hot_spot(result).holds
        bound_ok = result.bottleneck_load() >= message_load_bound(run_n)
        label = f"{spec.name}: counts, hot-spot, bound"
        if run_n != n:
            label += f" (capped at n={run_n})"
        report(
            label,
            values_ok and hotspot_ok and bound_ok,
            f"m_b={result.bottleneck_load()}",
        )
        policy = getattr(counter, "policy", None)
        if (
            counter.capabilities.supports_retirement
            and policy is not None
            and policy.retires
        ):
            for lemma in check_all(counter, result):
                report(f"{spec.name}: {lemma.lemma}", lemma.holds, lemma.detail)
    print("result:", "ALL OK" if failures == 0 else f"{failures} FAILURES")
    return 0 if failures == 0 else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    """Run one E-index experiment (or list them)."""
    from repro.experiments import REGISTRY

    if args.id is None:
        print("available experiments:")
        for experiment_id in sorted(REGISTRY, key=lambda e: int(e[1:])):
            runner = REGISTRY[experiment_id]
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            doc = doc.removeprefix(f"{experiment_id}: ")
            print(f"  {experiment_id:>4}: {doc}")
        return 0
    experiment_id = args.id.upper()
    if experiment_id not in REGISTRY:
        print(f"unknown experiment {args.id!r}; run without an id to list",
              file=sys.stderr)
        return 2
    result = REGISTRY[experiment_id]()
    print(f"{result.experiment_id}: {result.claim}\n")
    print(result.to_text())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark harness, printing and/or writing the report."""
    import json as json_module

    from repro.bench import GRIDS, build_report, write_report

    grids = tuple(args.grid) if args.grid else GRIDS
    try:
        if args.output:
            write_report(args.output, grids, echo=args.json)
            if not args.json:
                print(f"wrote {args.output}")
        else:
            print(json_module.dumps(build_report(grids), indent=2))
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate the SVG figures (F1-F3)."""
    from repro.experiments.figures import save_all_figures
    from repro.workloads import SweepRunner

    written = save_all_figures(args.out, runner=SweepRunner(workers=args.workers))
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ResilienceConfig, serve_counter, serve_keyed_counter

    try:
        resilience = ResilienceConfig(
            max_backlog=None if args.max_backlog < 0 else args.max_backlog,
            default_deadline=(
                None if args.deadline_ms is None else args.deadline_ms / 1000.0
            ),
            dedup_capacity=args.dedup_capacity,
            line_limit=args.line_limit,
            drain_timeout=args.drain_timeout,
        )
        if args.shards is not None:
            asyncio.run(
                serve_keyed_counter(
                    args.spec,
                    args.n,
                    args.host,
                    args.port,
                    shards=args.shards,
                    batch_max=args.batch_max,
                    policy=args.policy,
                    seed=args.seed,
                    time_scale=args.time_scale,
                    resilience=resilience,
                    fixture_dir=args.fixture,
                    announce=True,
                )
            )
        else:
            asyncio.run(
                serve_counter(
                    args.spec,
                    args.n,
                    args.host,
                    args.port,
                    policy=args.policy,
                    seed=args.seed,
                    time_scale=args.time_scale,
                    resilience=resilience,
                    announce=True,
                )
            )
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import (
        CircuitBreaker,
        RetryBudget,
        RetryPolicy,
        run_keyed_load,
        run_load,
        run_rate_sweep,
    )

    retry = None
    if args.retries > 0:
        retry = RetryPolicy(
            attempts=args.retries + 1,
            base_delay=args.backoff_base_ms / 1000.0,
            max_delay=max(args.backoff_base_ms, args.backoff_max_ms) / 1000.0,
        )
    retry_budget = (
        RetryBudget(args.retry_budget) if args.retry_budget is not None else None
    )
    breaker = (
        CircuitBreaker(args.breaker_threshold, args.breaker_reset)
        if args.breaker_threshold > 0
        else None
    )
    deadline = None if args.deadline_ms is None else args.deadline_ms / 1000.0

    async def go() -> int:
        final_value = -1
        if args.keys is not None:
            if args.rates is not None:
                print(
                    "error: --keys runs a single keyed load; "
                    "drop --rates",
                    file=sys.stderr,
                )
                return 2
            run = await run_keyed_load(
                args.host, args.port, args.ops, args.rate,
                keys=args.keys, zipf=args.zipf,
                process=args.process, seed=args.seed,
                max_connections=args.max_connections,
                retry=retry, retry_budget=retry_budget,
                deadline=deadline, breaker=breaker,
            )
            print(run.summary())
            violations = run.exactness_violations()
            print(
                f"keys: {run.key_population} touched, "
                + ("all exact"
                   if not violations
                   else f"EXACTNESS VIOLATED on {violations}")
            )
            if args.shutdown:
                reader, writer = await asyncio.open_connection(
                    args.host, args.port
                )
                writer.write(b"SHUTDOWN\n")
                await writer.drain()
                await reader.readline()
                writer.close()
            return 1 if (run.errors or violations) else 0
        if args.rates is not None:
            rates = [float(rate) for rate in args.rates.split(",")]
            sweep = await run_rate_sweep(
                args.host, args.port, args.ops, rates,
                process=args.process, seed=args.seed,
                max_connections=args.max_connections,
                retry=retry, retry_budget=retry_budget,
                deadline=deadline, breaker=breaker,
            )
            for run in sweep.runs:
                print(run.summary())
                final_value = max(final_value, run.final_value - 1)
            if sweep.knee_rate is not None:
                print(f"knee at ~{sweep.knee_rate:g} ops/s")
            else:
                print("no saturation knee within the swept rates")
            failed = any(run.errors for run in sweep.runs)
            final_value += 1
        else:
            run = await run_load(
                args.host, args.port, args.ops, args.rate,
                process=args.process, seed=args.seed,
                max_connections=args.max_connections,
                retry=retry, retry_budget=retry_budget,
                deadline=deadline, breaker=breaker,
            )
            print(run.summary())
            failed = run.errors > 0
            final_value = run.final_value
        if args.shutdown:
            reader, writer = await asyncio.open_connection(
                args.host, args.port
            )
            writer.write(b"SHUTDOWN\n")
            await writer.drain()
            await reader.readline()
            writer.close()
        if args.expect_final is not None and final_value != args.expect_final:
            print(
                f"error: expected final counter value {args.expect_final}, "
                f"observed {final_value}",
                file=sys.stderr,
            )
            return 1
        return 1 if failed else 0

    try:
        return asyncio.run(go())
    except (ConnectionRefusedError, OSError) as error:
        print(
            f"error: cannot reach {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.errors import ReplayMismatchError
    from repro.shard import replay_bundle

    try:
        report = replay_bundle(args.bundle)
    except ReplayMismatchError as error:
        print(f"REPLAY FAILED: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ChaosProxy, parse_chaos_spec

    host, _, port_text = args.upstream.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --upstream must be HOST:PORT, got {args.upstream!r}",
            file=sys.stderr,
        )
        return 2
    try:
        plan = parse_chaos_spec(args.plan, seed=args.seed)
    except ReproError as error:
        print(f"bad chaos plan: {error}", file=sys.stderr)
        return 2
    proxy = ChaosProxy(
        host, int(port_text), plan=plan, host=args.host, port=args.port
    )

    async def go() -> None:
        await proxy.start()
        print(
            f"CHAOS {plan.canonical()} {proxy.address} "
            f"-> {proxy.upstream_host}:{proxy.upstream_port}",
            flush=True,
        )
        await proxy.serve_forever()

    try:
        asyncio.run(go())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "counters": _cmd_counters,
    "sweep": _cmd_sweep,
    "explore": _cmd_explore,
    "adversary": _cmd_adversary,
    "bound": _cmd_bound,
    "quorum": _cmd_quorum,
    "tree": _cmd_tree,
    "validate": _cmd_validate,
    "experiment": _cmd_experiment,
    "bench": _cmd_bench,
    "figures": _cmd_figures,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "chaos": _cmd_chaos,
    "replay": _cmd_replay,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
