"""The abstract data type *distributed counter* (§2 of the paper).

A distributed counter encapsulates an integer ``val`` and supports one
operation, ``inc``: it returns the current value to the requesting
processor and increments the counter by one.  The paper proves its lower
bound already for this minimal test-and-increment interface.

Implementations in this library are *protocol wirings*: constructing a
counter registers processor programs with a :class:`~repro.sim.Network`,
and :meth:`DistributedCounter.begin_inc` injects an operation request at
the initiating processor.  All communication goes through the network, so
message loads are measured, never self-reported.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar

from repro.errors import ConfigurationError, ProtocolError
from repro.sim.messages import OpIndex, ProcessorId
from repro.sim.network import Network


@dataclass(frozen=True, slots=True)
class Capabilities:
    """What a counter implementation can (and cannot) do.

    Declared as a class attribute on every
    :class:`DistributedCounter` subclass and surfaced through the
    counter registry (:mod:`repro.registry`), so drivers, sweeps and the
    CLI can reject impossible pairings *before* running anything.

    Attributes:
        sequential_only: the protocol is only correct when one ``inc``
            finishes before the next starts (the paper's §2 timing
            assumption); the concurrent driver refuses such counters.
        supports_retirement: the implementation moves hot roles between
            processors (the paper's §4 retirement mechanism).
        needs_power_of_two_n: the wiring requires ``n`` to be a power of
            two.
        needs_square_n: the wiring requires ``n`` to be a perfect square
            (e.g. the Maekawa-grid quorum counter).
        tolerates_message_loss: operations still complete correctly when
            the network may drop messages.  Most bare protocols in this
            repo do not (the paper's model is failure-free); the flag
            becomes true when a counter runs behind
            :class:`~repro.sim.transport.ReliableTransport` or builds
            end-to-end retries into its own protocol, and the registry
            refuses lossy fault plans on counters without it.
        tolerates_crash: operations still complete correctly when a
            processor crashes (its links go permanently or transiently
            dead mid-run).  Requires protocol-level redundancy — a
            replica or a bypass route — plus failure detection; the
            recoverable variants in :mod:`repro.counters.recoverable`
            declare it, and the registry refuses permanent-crash fault
            plans on counters without it (a reliable transport alone
            cannot resurrect state parked on a dead processor).
        tolerates_byzantine: operations still complete correctly for
            honest processors when up to ``f`` processors are
            *Byzantine* — they corrupt, equivocate on, or withhold
            their own messages (``byz=f@strategy`` fault plans).
            Requires protocol-level agreement machinery (quorum echo
            rounds, value filtering); the ``byz-counter`` family in
            :mod:`repro.counters.byzantine` declares it, and the
            registry refuses Byzantine fault plans on counters without
            it — a lying processor defeats both retransmission and
            checkpoint recovery.
        explorable: the protocol remains correct under *any* legal
            reordering of equal-time events and any per-message delay —
            i.e. it bakes no hidden timing assumption beyond what
            :class:`Capabilities` already declares — so the schedule
            explorer (:mod:`repro.explore`) may drive it through
            adversarial interleavings and treat every oracle failure as
            a genuine protocol bug rather than an out-of-contract run.
            Defaults to ``True``; a counter that is only correct for
            specific delay regimes must opt out.
        restriction: one human-readable sentence naming the reason for
            the strongest restriction; used verbatim in
            :class:`~repro.errors.CapabilityError` messages.
    """

    sequential_only: bool = False
    supports_retirement: bool = False
    needs_power_of_two_n: bool = False
    needs_square_n: bool = False
    tolerates_message_loss: bool = False
    tolerates_crash: bool = False
    tolerates_byzantine: bool = False
    explorable: bool = True
    restriction: str = ""

    @property
    def supports_concurrent(self) -> bool:
        """Whether overlapping operations are allowed (dual of
        :attr:`sequential_only`)."""
        return not self.sequential_only

    def flags(self) -> tuple[str, ...]:
        """Short labels of every non-default capability (CLI listings)."""
        labels = []
        if self.sequential_only:
            labels.append("sequential-only")
        if self.supports_retirement:
            labels.append("retirement")
        if self.needs_power_of_two_n:
            labels.append("n=2^i")
        if self.needs_square_n:
            labels.append("n=i^2")
        if self.tolerates_message_loss:
            labels.append("loss-tolerant")
        if self.tolerates_crash:
            labels.append("crash-tolerant")
        if self.tolerates_byzantine:
            labels.append("byzantine-tolerant")
        if not self.explorable:
            labels.append("not-explorable")
        return tuple(labels)


class DistributedCounter(ABC):
    """Base class for distributed counter implementations.

    Subclasses register all their processors in ``__init__`` and implement
    :meth:`begin_inc`.  Returned values are delivered asynchronously; the
    driver reads them via :meth:`results_for` after quiescence.

    Attributes:
        name: short human-readable implementation name; for registered
            implementations this equals the canonical registry key, so
            report tables, sweep cache keys and BENCH JSON agree.
        capabilities: the :class:`Capabilities` record drivers and the
            registry check before running anything.
    """

    name: str = "counter"
    capabilities: ClassVar[Capabilities] = Capabilities()

    def __init__(self, network: Network, n: int) -> None:
        if n <= 0:
            raise ConfigurationError(f"need at least one processor, got n={n}")
        self._network = network
        self._n = n
        self._results: dict[ProcessorId, list[int]] = {}
        self._result_times: dict[ProcessorId, list[float]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The network this counter is wired into."""
        return self._network

    @property
    def n(self) -> int:
        """Number of client processors that may request ``inc``."""
        return self._n

    def client_ids(self) -> range:
        """Processor ids allowed to initiate ``inc`` (the paper's 1..n)."""
        return range(1, self._n + 1)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @abstractmethod
    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        """Inject an ``inc`` request at processor *pid*.

        The request is the paper's operation initiation: a local event, not
        a message.  All messages it causes are attributed to *op_index*.
        """

    def deliver_result(self, pid: ProcessorId, value: int) -> None:
        """Record that *pid* learned counter value *value*.

        Called by protocol code at the moment the initiating processor
        receives its answer.  The simulated response time is recorded
        alongside, which is what the linearizability checker consumes.
        """
        self._results.setdefault(pid, []).append(value)
        self._result_times.setdefault(pid, []).append(self._network.now)

    def results_for(self, pid: ProcessorId) -> list[int]:
        """All values returned to *pid* so far, in arrival order."""
        return list(self._results.get(pid, []))

    def result_times_for(self, pid: ProcessorId) -> list[float]:
        """Simulated times at which *pid* received its values."""
        return list(self._result_times.get(pid, []))

    def last_result_for(self, pid: ProcessorId) -> int:
        """The most recent value returned to *pid*; raises if none."""
        results = self._results.get(pid)
        if not results:
            raise ProtocolError(f"no inc result was delivered to processor {pid}")
        return results[-1]

    def all_results(self) -> list[int]:
        """Every value handed out, across all processors (unordered)."""
        values: list[int] = []
        for result_list in self._results.values():
            values.extend(result_list)
        return values


CounterFactory = Callable[[Network, int], DistributedCounter]
"""Builds a counter for ``n`` clients on a network — the sweep interface.

Factories let harnesses (benchmarks, the adversary, property tests) treat
all implementations uniformly: construct a fresh network, call the factory,
drive the workload, analyze the trace.
"""
